//! Offline vendored ChaCha8 deterministic RNG, implementing the vendored
//! `rand` traits. The keystream is the standard ChaCha construction with 8
//! rounds (RFC 8439 state layout, 64-bit block counter), so runs are a pure
//! function of the 32-byte seed.

use rand::{Error, RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

/// A deterministic ChaCha8-based RNG.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key words (seed), little-endian.
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Buffered keystream block.
    buf: [u32; BLOCK_WORDS],
    /// Next unread word in `buf`; `BLOCK_WORDS` means exhausted.
    idx: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; BLOCK_WORDS] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, init) in state.iter_mut().zip(initial.iter()) {
            *out = out.wrapping_add(*init);
        }
        self.buf = state;
        self.idx = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> ChaCha8Rng {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; BLOCK_WORDS],
            idx: BLOCK_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= BLOCK_WORDS {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let bytes = self.next_u32().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let va: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn keystream_matches_chacha_reference_shape() {
        // Counter advances once per 16-word block.
        let mut r = ChaCha8Rng::from_seed([0u8; 32]);
        let first_block: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        let second_block: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        assert_ne!(first_block, second_block);
    }

    #[test]
    fn fill_bytes_covers_uneven_lengths() {
        let mut r = ChaCha8Rng::seed_from_u64(1);
        let mut buf = [0u8; 7];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
