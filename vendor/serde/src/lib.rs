//! Offline vendored serde-compatible serialization core.
//!
//! This is an API-compatible subset of [`serde`](https://serde.rs) for the
//! shapes this workspace serializes: the generic `Serialize` / `Deserialize`
//! / `Serializer` / `Deserializer` traits and the `serde_derive` macros are
//! all here, but the data model is a concrete JSON-like [`Value`] instead of
//! serde's fully streaming visitor architecture. `serde_json` renders and
//! parses that [`Value`]. Swapping back to real serde is a
//! `[workspace.dependencies]` edit; the derive attribute surface used in
//! this repo (`#[serde(transparent)]`, `#[serde(with = "...")]`) matches.

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The concrete data model: a JSON-shaped value tree.
///
/// Maps preserve insertion order (they are association lists), which keeps
/// record/replay stores byte-stable across round trips.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integer (covers every integer width this workspace serializes).
    Int(i64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, order-preserving.
    Map(Vec<(String, Value)>),
}

/// Serialization-side error trait (mirrors `serde::ser::Error`).
pub mod ser {
    /// Constructible from any display-able message.
    pub trait Error: Sized + std::fmt::Display {
        /// Build an error carrying `msg`.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }
}

/// Deserialization-side error trait (mirrors `serde::de::Error`).
pub mod de {
    /// Constructible from any display-able message.
    pub trait Error: Sized + std::fmt::Display {
        /// Build an error carrying `msg`.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }
}

/// A type that can serialize itself through any [`Serializer`].
pub trait Serialize {
    /// Serialize `self`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A sink for serialized data.
///
/// Unlike real serde there is one required method: accept a complete
/// [`Value`]. The typed convenience methods feed it.
pub trait Serializer: Sized {
    /// Output of successful serialization.
    type Ok;
    /// Error type.
    type Error: ser::Error;

    /// Accept a complete value tree.
    fn serialize_value(self, v: Value) -> Result<Self::Ok, Self::Error>;

    /// Serialize a string slice.
    fn serialize_str(self, s: &str) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Str(s.to_string()))
    }

    /// Serialize a bool.
    fn serialize_bool(self, b: bool) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Bool(b))
    }

    /// Serialize a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Int(v))
    }

    /// Serialize an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error> {
        i64::try_from(v)
            .map_err(|_| ser::Error::custom("u64 out of range for data model"))
            .and_then(|i| self.serialize_value(Value::Int(i)))
    }

    /// Serialize a float.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Float(v))
    }

    /// Serialize a unit value.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Null)
    }
}

/// A source of deserialized data.
///
/// One required method: yield the complete [`Value`] tree.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: de::Error;

    /// Yield the full value tree.
    fn into_value(self) -> Result<Value, Self::Error>;
}

/// A type constructible from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserialize an instance.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Error produced by [`ValueSerializer`] / [`to_value`].
#[derive(Debug)]
pub struct SerError(pub String);

impl fmt::Display for SerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SerError {}

impl ser::Error for SerError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        SerError(msg.to_string())
    }
}

/// Error produced by [`ValueDeserializer`] / [`from_value`].
#[derive(Debug)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

impl de::Error for DeError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        DeError(msg.to_string())
    }
}

/// The canonical serializer: produces a [`Value`].
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = SerError;

    fn serialize_value(self, v: Value) -> Result<Value, SerError> {
        Ok(v)
    }
}

/// The canonical deserializer: wraps a [`Value`].
pub struct ValueDeserializer(pub Value);

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = DeError;

    fn into_value(self) -> Result<Value, DeError> {
        Ok(self.0)
    }
}

/// Serialize `t` into a [`Value`].
pub fn to_value<T: Serialize + ?Sized>(t: &T) -> Result<Value, SerError> {
    t.serialize(ValueSerializer)
}

/// Deserialize a `T` out of a [`Value`].
pub fn from_value<T: for<'de> Deserialize<'de>>(v: Value) -> Result<T, DeError> {
    T::deserialize(ValueDeserializer(v))
}

// ---- helpers used by the derive-generated code -------------------------

/// Serialize a field into a [`Value`], mapping errors into `S::Error`.
pub fn ser_to_value_or_err<S: Serializer, T: Serialize + ?Sized>(t: &T) -> Result<Value, S::Error> {
    to_value(t).map_err(<S::Error as ser::Error>::custom)
}

/// Deserialize a field from a [`Value`], mapping errors into `D::Error`.
pub fn de_from_value_or_err<'de, D: Deserializer<'de>, T: for<'a> Deserialize<'a>>(
    v: Value,
) -> Result<T, D::Error> {
    from_value(v).map_err(<D::Error as de::Error>::custom)
}

/// Remove field `k` from an object's entry list, erroring if absent.
pub fn take_field<'de, D: Deserializer<'de>>(
    m: &mut Vec<(String, Value)>,
    k: &str,
) -> Result<Value, D::Error> {
    match m.iter().position(|(name, _)| name == k) {
        Some(i) => Ok(m.remove(i).1),
        None => Err(<D::Error as de::Error>::custom(format!(
            "missing field `{k}`"
        ))),
    }
}

/// [`take_field`] + [`de_from_value_or_err`] in one step.
pub fn de_field<'de, D: Deserializer<'de>, T: for<'a> Deserialize<'a>>(
    m: &mut Vec<(String, Value)>,
    k: &str,
) -> Result<T, D::Error> {
    de_from_value_or_err::<D, T>(take_field::<D>(m, k)?)
}

// ---- impls for primitives and std containers ---------------------------

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.clone())
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.into_value()
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.into_value()? {
            Value::Str(s) => Ok(s),
            other => Err(<D::Error as de::Error>::custom(format!(
                "expected string, got {other:?}"
            ))),
        }
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.into_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(<D::Error as de::Error>::custom(format!(
                "expected bool, got {other:?}"
            ))),
        }
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                match i64::try_from(*self) {
                    Ok(v) => serializer.serialize_i64(v),
                    Err(_) => Err(<S::Error as ser::Error>::custom(
                        "integer out of range for data model",
                    )),
                }
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let v = deserializer.into_value()?;
                let n = match v {
                    Value::Int(i) => i,
                    Value::Float(f) if f.fract() == 0.0 => f as i64,
                    other => {
                        return Err(<D::Error as de::Error>::custom(format!(
                            "expected integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    <D::Error as de::Error>::custom("integer out of range for target type")
                })
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.into_value()? {
            Value::Float(f) => Ok(f),
            Value::Int(i) => Ok(i as f64),
            other => Err(<D::Error as de::Error>::custom(format!(
                "expected number, got {other:?}"
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut out = Vec::with_capacity(self.len());
        for item in self {
            out.push(ser_to_value_or_err::<S, T>(item)?);
        }
        serializer.serialize_value(Value::Seq(out))
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.into_value()? {
            Value::Seq(items) => items
                .into_iter()
                .map(|v| de_from_value_or_err::<D, T>(v))
                .collect(),
            other => Err(<D::Error as de::Error>::custom(format!(
                "expected array, got {other:?}"
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            None => serializer.serialize_value(Value::Null),
            Some(t) => {
                let v = ser_to_value_or_err::<S, T>(t)?;
                serializer.serialize_value(v)
            }
        }
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.into_value()? {
            Value::Null => Ok(None),
            v => Ok(Some(de_from_value_or_err::<D, T>(v)?)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(from_value::<u16>(to_value(&7u16).unwrap()).unwrap(), 7);
        assert_eq!(
            from_value::<String>(to_value("hi").unwrap()).unwrap(),
            "hi".to_string()
        );
        assert_eq!(
            from_value::<Vec<u8>>(to_value(&vec![1u8, 2]).unwrap()).unwrap(),
            vec![1, 2]
        );
        assert_eq!(
            from_value::<Option<u32>>(to_value(&None::<u32>).unwrap()).unwrap(),
            None
        );
    }

    #[test]
    fn integer_range_checks() {
        assert!(from_value::<u8>(Value::Int(300)).is_err());
        assert!(to_value(&u64::MAX).is_err());
    }
}
