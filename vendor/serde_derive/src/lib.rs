//! Offline vendored `#[derive(Serialize, Deserialize)]` for the vendored
//! serde core. Implemented with hand-rolled token parsing (no `syn`/`quote`
//! available offline) and supports the item shapes this workspace uses:
//!
//! * named-field structs, with optional `#[serde(with = "path")]` per field
//! * single-field tuple structs (serialized transparently, which also
//!   covers `#[serde(transparent)]`)
//! * enums of unit and one-field tuple variants (externally tagged, like
//!   real serde: `"Variant"` or `{"Variant": value}`)
//!
//! Anything outside that subset fails the build with a clear message rather
//! than generating wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Ser,
    De,
}

struct Field {
    name: String,
    with: Option<String>,
}

struct Variant {
    name: String,
    newtype: bool,
}

enum Shape {
    Named(Vec<Field>),
    Newtype,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate(&item, Mode::Ser)
        .parse()
        .expect("serde_derive: generated code parses")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate(&item, Mode::De)
        .parse()
        .expect("serde_derive: generated code parses")
}

// ---- parsing -----------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic types are not supported");
    }

    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) => break g.clone(),
            Some(_) => i += 1,
            None => panic!("serde_derive: missing item body for `{name}`"),
        }
    };

    let shape = match (keyword.as_str(), body.delimiter()) {
        ("struct", Delimiter::Brace) => Shape::Named(parse_named_fields(body.stream())),
        ("struct", Delimiter::Parenthesis) => {
            let arity = count_top_level_fields(body.stream());
            if arity != 1 {
                panic!(
                    "serde_derive (vendored): tuple struct `{name}` has {arity} fields; \
                     only single-field tuple structs are supported"
                );
            }
            Shape::Newtype
        }
        ("enum", Delimiter::Brace) => Shape::Enum(parse_variants(body.stream(), &name)),
        _ => panic!("serde_derive: unsupported item shape for `{name}`"),
    };

    Item { name, shape }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                match tokens.get(*i) {
                    Some(TokenTree::Group(_)) => *i += 1,
                    other => panic!("serde_derive: malformed attribute, got {other:?}"),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return,
        }
    }
}

/// Scan one attribute group's contents for `serde(with = "path")`.
fn serde_with_from_attr(attr: &TokenStream) -> Option<String> {
    let toks: Vec<TokenTree> = attr.clone().into_iter().collect();
    match toks.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let inner = match toks.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return None,
    };
    let inner: Vec<TokenTree> = inner.into_iter().collect();
    match (inner.first(), inner.get(1), inner.get(2)) {
        (
            Some(TokenTree::Ident(key)),
            Some(TokenTree::Punct(eq)),
            Some(TokenTree::Literal(lit)),
        ) if key.to_string() == "with" && eq.as_char() == '=' => {
            let raw = lit.to_string();
            Some(raw.trim_matches('"').to_string())
        }
        _ => {
            // Other serde attrs this subset understands implicitly
            // (`transparent`) or ignores (`default` on containers).
            None
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        // Field attributes: capture serde(with), skip the rest (docs etc.).
        let mut with = None;
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    i += 1;
                    match tokens.get(i) {
                        Some(TokenTree::Group(g)) => {
                            if let Some(w) = serde_with_from_attr(&g.stream()) {
                                with = Some(w);
                            }
                            i += 1;
                        }
                        other => panic!("serde_derive: malformed field attribute {other:?}"),
                    }
                }
                _ => break,
            }
        }
        if i >= tokens.len() {
            break;
        }
        // Visibility.
        if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field `{name}`, got {other:?}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        fields.push(Field { name, with });
    }
    fields
}

fn count_top_level_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0i32;
    for (idx, tok) in tokens.iter().enumerate() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            // A trailing comma does not introduce a new field.
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 && idx + 1 < tokens.len() => {
                count += 1;
            }
            _ => {}
        }
    }
    count
}

fn parse_variants(stream: TokenStream, enum_name: &str) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected variant name in `{enum_name}`, got {other:?}"),
        };
        i += 1;
        let mut newtype = false;
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_fields(g.stream());
                if arity != 1 {
                    panic!(
                        "serde_derive (vendored): variant `{enum_name}::{name}` has {arity} \
                         fields; only unit and single-field variants are supported"
                    );
                }
                newtype = true;
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                panic!(
                    "serde_derive (vendored): struct variant `{enum_name}::{name}` \
                     is not supported"
                );
            }
            _ => {}
        }
        // Skip to the comma (covers discriminants, which we do not support
        // serializing differently anyway).
        while let Some(tok) = tokens.get(i) {
            if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, newtype });
    }
    variants
}

// ---- code generation ---------------------------------------------------

fn generate(item: &Item, mode: Mode) -> String {
    match (&item.shape, mode) {
        (Shape::Named(fields), Mode::Ser) => gen_named_ser(&item.name, fields),
        (Shape::Named(fields), Mode::De) => gen_named_de(&item.name, fields),
        (Shape::Newtype, Mode::Ser) => gen_newtype_ser(&item.name),
        (Shape::Newtype, Mode::De) => gen_newtype_de(&item.name),
        (Shape::Enum(variants), Mode::Ser) => gen_enum_ser(&item.name, variants),
        (Shape::Enum(variants), Mode::De) => gen_enum_de(&item.name, variants),
    }
}

const IMPL_ATTRS: &str =
    "#[automatically_derived]\n#[allow(unused_variables, unused_mut, clippy::all)]\n";

fn gen_named_ser(name: &str, fields: &[Field]) -> String {
    let mut pushes = String::new();
    for f in fields {
        let fname = &f.name;
        match &f.with {
            None => pushes.push_str(&format!(
                "__m.push((::std::string::String::from(\"{fname}\"), \
                 ::serde::ser_to_value_or_err::<__S, _>(&self.{fname})?));\n"
            )),
            Some(path) => pushes.push_str(&format!(
                "__m.push((::std::string::String::from(\"{fname}\"), \
                 {path}::serialize(&self.{fname}, ::serde::ValueSerializer)\
                 .map_err(|__e| <__S::Error as ::serde::ser::Error>::custom(__e))?));\n"
            )),
        }
    }
    format!(
        "{IMPL_ATTRS}impl ::serde::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S) \
         -> ::std::result::Result<__S::Ok, __S::Error> {{\n\
         let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
         ::std::vec::Vec::new();\n\
         {pushes}\
         __serializer.serialize_value(::serde::Value::Map(__m))\n\
         }}\n}}\n"
    )
}

fn gen_named_de(name: &str, fields: &[Field]) -> String {
    let mut inits = String::new();
    for f in fields {
        let fname = &f.name;
        match &f.with {
            None => inits.push_str(&format!(
                "{fname}: ::serde::de_field::<__D, _>(&mut __m, \"{fname}\")?,\n"
            )),
            Some(path) => inits.push_str(&format!(
                "{fname}: {path}::deserialize(::serde::ValueDeserializer(\
                 ::serde::take_field::<__D>(&mut __m, \"{fname}\")?))\
                 .map_err(|__e| <__D::Error as ::serde::de::Error>::custom(__e))?,\n"
            )),
        }
    }
    format!(
        "{IMPL_ATTRS}impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: ::serde::Deserializer<'de>>(__deserializer: __D) \
         -> ::std::result::Result<Self, __D::Error> {{\n\
         let mut __m = match __deserializer.into_value()? {{\n\
         ::serde::Value::Map(__m) => __m,\n\
         __other => return ::std::result::Result::Err(\
         <__D::Error as ::serde::de::Error>::custom(\
         \"expected map for struct {name}\")),\n\
         }};\n\
         ::std::result::Result::Ok({name} {{\n{inits}}})\n\
         }}\n}}\n"
    )
}

fn gen_newtype_ser(name: &str) -> String {
    format!(
        "{IMPL_ATTRS}impl ::serde::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S) \
         -> ::std::result::Result<__S::Ok, __S::Error> {{\n\
         let __v = ::serde::ser_to_value_or_err::<__S, _>(&self.0)?;\n\
         __serializer.serialize_value(__v)\n\
         }}\n}}\n"
    )
}

fn gen_newtype_de(name: &str) -> String {
    format!(
        "{IMPL_ATTRS}impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: ::serde::Deserializer<'de>>(__deserializer: __D) \
         -> ::std::result::Result<Self, __D::Error> {{\n\
         ::std::result::Result::Ok({name}(::serde::de_from_value_or_err::<__D, _>(\
         __deserializer.into_value()?)?))\n\
         }}\n}}\n"
    )
}

fn gen_enum_ser(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vname = &v.name;
        if v.newtype {
            arms.push_str(&format!(
                "{name}::{vname}(__x) => {{\n\
                 let __inner = ::serde::ser_to_value_or_err::<__S, _>(__x)?;\n\
                 __serializer.serialize_value(::serde::Value::Map(vec![(\
                 ::std::string::String::from(\"{vname}\"), __inner)]))\n\
                 }}\n"
            ));
        } else {
            arms.push_str(&format!(
                "{name}::{vname} => __serializer.serialize_value(\
                 ::serde::Value::Str(::std::string::String::from(\"{vname}\"))),\n"
            ));
        }
    }
    format!(
        "{IMPL_ATTRS}impl ::serde::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S) \
         -> ::std::result::Result<__S::Ok, __S::Error> {{\n\
         match self {{\n{arms}}}\n\
         }}\n}}\n"
    )
}

fn gen_enum_de(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut newtype_arms = String::new();
    for v in variants {
        let vname = &v.name;
        if v.newtype {
            newtype_arms.push_str(&format!(
                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                 ::serde::de_from_value_or_err::<__D, _>(__val)?)),\n"
            ));
        } else {
            unit_arms.push_str(&format!(
                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
            ));
        }
    }
    format!(
        "{IMPL_ATTRS}impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: ::serde::Deserializer<'de>>(__deserializer: __D) \
         -> ::std::result::Result<Self, __D::Error> {{\n\
         match __deserializer.into_value()? {{\n\
         ::serde::Value::Str(__s) => match __s.as_str() {{\n\
         {unit_arms}\
         __other => ::std::result::Result::Err(\
         <__D::Error as ::serde::de::Error>::custom(\
         format!(\"unknown variant `{{__other}}` for enum {name}\"))),\n\
         }},\n\
         ::serde::Value::Map(mut __m) if __m.len() == 1 => {{\n\
         let (__k, __val) = __m.remove(0);\n\
         match __k.as_str() {{\n\
         {newtype_arms}\
         __other => ::std::result::Result::Err(\
         <__D::Error as ::serde::de::Error>::custom(\
         format!(\"unknown variant `{{__other}}` for enum {name}\"))),\n\
         }}\n\
         }},\n\
         __other => ::std::result::Result::Err(\
         <__D::Error as ::serde::de::Error>::custom(\
         \"expected string or single-entry map for enum {name}\")),\n\
         }}\n\
         }}\n}}\n"
    )
}
