//! Offline vendored subset of [`criterion`](https://crates.io/crates/criterion):
//! the `Criterion` / `BenchmarkGroup` / `Bencher` API with wall-clock
//! measurement and a plain-text report (median over samples, plus
//! throughput when declared). No statistical analysis, plotting, or
//! baseline storage — this exists so `cargo bench -p bench` runs and
//! prints useful numbers offline.

use std::time::{Duration, Instant};

/// Re-export of the standard black box.
pub use std::hint::black_box;

/// How batched inputs are grouped (accepted for API parity; the vendored
/// runner re-runs setup per batch regardless).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Declared throughput, used to report rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The benchmark context.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Criterion {
        let sample_size = self.sample_size;
        run_benchmark(id, sample_size, None, f);
        self
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Set the number of timed samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Declare per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Finish the group (report separator).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        if b.iters > 0 {
            samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
        }
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN timings"));
    let median = samples.get(samples.len() / 2).copied().unwrap_or(0.0);
    let mut line = format!("{id:<40} median {}", fmt_time(median));
    if median > 0.0 {
        match throughput {
            Some(Throughput::Bytes(n)) => {
                let rate = n as f64 / median / (1024.0 * 1024.0);
                line.push_str(&format!("  ({rate:.1} MiB/s)"));
            }
            Some(Throughput::Elements(n)) => {
                let rate = n as f64 / median;
                line.push_str(&format!("  ({rate:.0} elem/s)"));
            }
            None => {}
        }
    }
    println!("{line}");
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time repeated runs of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up, then a timed burst sized to the routine's cost.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed();
        let reps = reps_for(once);
        let start = Instant::now();
        for _ in 0..reps {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += reps;
    }

    /// Time `routine` over inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let once = start.elapsed();
        let reps = reps_for(once);
        let inputs: Vec<I> = (0..reps).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            black_box(routine(input));
        }
        self.elapsed += start.elapsed();
        self.iters += reps;
    }
}

/// Aim each sample at roughly 10 ms of work, within [1, 10_000] reps.
fn reps_for(once: Duration) -> u64 {
    let target = Duration::from_millis(10);
    if once.is_zero() {
        return 10_000;
    }
    let reps = target.as_nanos() / once.as_nanos().max(1);
    reps.clamp(1, 10_000) as u64
}

/// Define a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; ignore them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_machinery_runs() {
        let mut c = Criterion::default().sample_size(3);
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Bytes(8));
        g.bench_function("add", |b| b.iter(|| black_box(2u64) + black_box(3)));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
