//! Offline vendored subset of the [`bytes`](https://crates.io/crates/bytes)
//! crate: just the `Bytes` / `BytesMut` / `BufMut` surface this workspace
//! uses, with the same semantics (cheap clones of immutable buffers,
//! `freeze`, `split_to`/`split`). Swap back to the real crate by editing the
//! `[workspace.dependencies]` entry at the repo root.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A cheaply cloneable, immutable byte buffer.
///
/// Backed by an `Arc<[u8]>` plus a sub-range, so `clone` is O(1) and
/// `split_to`-produced views share storage.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (does not allocate a unique backing store).
    pub fn new() -> Bytes {
        Bytes::from_vec(Vec::new())
    }

    /// Wrap a static slice. (The vendored version copies; the range-sharing
    /// machinery keeps the copy single.)
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::from_vec(bytes.to_vec())
    }

    /// Copy an arbitrary slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from_vec(data.to_vec())
    }

    fn from_vec(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view sharing the same backing storage.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes::from_vec(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from_vec(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from_vec(s.as_bytes().to_vec())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from_vec(iter.into_iter().collect())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A growable byte buffer, frozen into [`Bytes`] when construction is done.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { inner: Vec::new() }
    }

    /// An empty buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Reserve additional capacity.
    pub fn reserve(&mut self, additional: usize) {
        self.inner.reserve(additional);
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.inner.extend_from_slice(data);
    }

    /// Remove and return the first `at` bytes, leaving the rest in place.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.inner.len(), "split_to out of bounds");
        let rest = self.inner.split_off(at);
        let head = std::mem::replace(&mut self.inner, rest);
        BytesMut { inner: head }
    }

    /// Remove and return the entire contents, leaving this buffer empty.
    pub fn split(&mut self) -> BytesMut {
        BytesMut {
            inner: std::mem::take(&mut self.inner),
        }
    }

    /// Clear the buffer.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.inner)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        Bytes::copy_from_slice(&self.inner).fmt(f)
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Bytes {
        b.freeze()
    }
}

/// Write-side buffer trait (vendored subset: only what the serializers use).
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, b: u8) {
        self.put_slice(&[b]);
    }

    /// Append a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_round_trip_and_share() {
        let b = Bytes::from(vec![1u8, 2, 3, 4]);
        assert_eq!(b.len(), 4);
        let s = b.slice(1..3);
        assert_eq!(&s[..], &[2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
    }

    #[test]
    fn bytes_mut_split_and_freeze() {
        let mut m = BytesMut::with_capacity(8);
        m.put_slice(b"hello");
        m.put_u8(b'!');
        let head = m.split_to(2);
        assert_eq!(&head[..], b"he");
        assert_eq!(&m[..], b"llo!");
        let rest = m.split();
        assert!(m.is_empty());
        assert_eq!(&rest.freeze()[..], b"llo!");
    }
}
