//! Random string generation from the regex subset proptest-style string
//! strategies use: literals, escaped literals, character classes with
//! ranges, groups, and the `?`/`*`/`+`/`{m}`/`{m,n}` quantifiers.
//! Alternation (`|`) and anchors are not supported.

use crate::test_runner::TestRng;

#[derive(Debug)]
enum Node {
    Lit(char),
    /// Inclusive character ranges; single chars are `(c, c)`.
    Class(Vec<(char, char)>),
    Group(Vec<(Node, Quant)>),
}

#[derive(Debug, Clone, Copy)]
struct Quant {
    min: u32,
    max: u32,
}

const UNBOUNDED_CAP: u32 = 8;

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pos = 0;
    let seq = parse_seq(&chars, &mut pos, false, pattern);
    assert!(
        pos == chars.len(),
        "string strategy: trailing characters in pattern `{pattern}`"
    );
    let mut out = String::new();
    gen_seq(&seq, rng, &mut out);
    out
}

fn parse_seq(chars: &[char], pos: &mut usize, in_group: bool, pattern: &str) -> Vec<(Node, Quant)> {
    let mut seq = Vec::new();
    while *pos < chars.len() {
        let c = chars[*pos];
        match c {
            ')' if in_group => {
                *pos += 1;
                return seq;
            }
            '(' => {
                *pos += 1;
                let inner = parse_seq(chars, pos, true, pattern);
                let q = parse_quant(chars, pos, pattern);
                seq.push((Node::Group(inner), q));
            }
            '[' => {
                *pos += 1;
                let class = parse_class(chars, pos, pattern);
                let q = parse_quant(chars, pos, pattern);
                seq.push((Node::Class(class), q));
            }
            '\\' => {
                *pos += 1;
                assert!(
                    *pos < chars.len(),
                    "string strategy: dangling `\\` in `{pattern}`"
                );
                let lit = chars[*pos];
                *pos += 1;
                let q = parse_quant(chars, pos, pattern);
                seq.push((Node::Lit(lit), q));
            }
            '.' => {
                *pos += 1;
                let q = parse_quant(chars, pos, pattern);
                // Printable ASCII.
                seq.push((Node::Class(vec![(' ', '~')]), q));
            }
            '|' => panic!("string strategy: alternation unsupported in `{pattern}`"),
            _ => {
                *pos += 1;
                let q = parse_quant(chars, pos, pattern);
                seq.push((Node::Lit(c), q));
            }
        }
    }
    assert!(
        !in_group,
        "string strategy: unterminated group in `{pattern}`"
    );
    seq
}

fn parse_class(chars: &[char], pos: &mut usize, pattern: &str) -> Vec<(char, char)> {
    let mut items = Vec::new();
    loop {
        assert!(
            *pos < chars.len(),
            "string strategy: unterminated class in `{pattern}`"
        );
        let c = chars[*pos];
        if c == ']' {
            *pos += 1;
            assert!(
                !items.is_empty(),
                "string strategy: empty class in `{pattern}`"
            );
            return items;
        }
        let lo = if c == '\\' {
            *pos += 1;
            assert!(
                *pos < chars.len(),
                "string strategy: dangling `\\` in `{pattern}`"
            );
            chars[*pos]
        } else {
            c
        };
        *pos += 1;
        // `a-z` range, unless the `-` is the final char before `]`.
        if chars.get(*pos) == Some(&'-') && chars.get(*pos + 1).is_some_and(|&n| n != ']') {
            *pos += 1;
            let hi = chars[*pos];
            *pos += 1;
            assert!(lo <= hi, "string strategy: inverted range in `{pattern}`");
            items.push((lo, hi));
        } else {
            items.push((lo, lo));
        }
    }
}

fn parse_quant(chars: &[char], pos: &mut usize, pattern: &str) -> Quant {
    match chars.get(*pos) {
        Some('?') => {
            *pos += 1;
            Quant { min: 0, max: 1 }
        }
        Some('*') => {
            *pos += 1;
            Quant {
                min: 0,
                max: UNBOUNDED_CAP,
            }
        }
        Some('+') => {
            *pos += 1;
            Quant {
                min: 1,
                max: UNBOUNDED_CAP,
            }
        }
        Some('{') => {
            *pos += 1;
            let mut min_text = String::new();
            while chars.get(*pos).is_some_and(|c| c.is_ascii_digit()) {
                min_text.push(chars[*pos]);
                *pos += 1;
            }
            let min: u32 = min_text
                .parse()
                .unwrap_or_else(|_| panic!("string strategy: bad repetition in `{pattern}`"));
            let max = match chars.get(*pos) {
                Some(',') => {
                    *pos += 1;
                    let mut max_text = String::new();
                    while chars.get(*pos).is_some_and(|c| c.is_ascii_digit()) {
                        max_text.push(chars[*pos]);
                        *pos += 1;
                    }
                    if max_text.is_empty() {
                        min.saturating_add(UNBOUNDED_CAP)
                    } else {
                        max_text.parse().unwrap_or_else(|_| {
                            panic!("string strategy: bad repetition in `{pattern}`")
                        })
                    }
                }
                _ => min,
            };
            assert!(
                chars.get(*pos) == Some(&'}'),
                "string strategy: unterminated repetition in `{pattern}`"
            );
            *pos += 1;
            assert!(
                min <= max,
                "string strategy: inverted repetition in `{pattern}`"
            );
            Quant { min, max }
        }
        _ => Quant { min: 1, max: 1 },
    }
}

fn gen_seq(seq: &[(Node, Quant)], rng: &mut TestRng, out: &mut String) {
    for (node, q) in seq {
        let n = rng.u64_inclusive(q.min as u64, q.max as u64) as u32;
        for _ in 0..n {
            gen_node(node, rng, out);
        }
    }
}

fn gen_node(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Lit(c) => out.push(*c),
        Node::Class(items) => {
            let total: u64 = items
                .iter()
                .map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1)
                .sum();
            let mut k = rng.u64_inclusive(0, total - 1);
            for (lo, hi) in items {
                let span = (*hi as u64) - (*lo as u64) + 1;
                if k < span {
                    out.push(char::from_u32(*lo as u32 + k as u32).unwrap());
                    return;
                }
                k -= span;
            }
            unreachable!();
        }
        Node::Group(inner) => gen_seq(inner, rng, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("string_gen")
    }

    #[test]
    fn classes_and_reps() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate("[a-zA-Z][a-zA-Z0-9-]{0,15}", &mut r);
            assert!(!s.is_empty() && s.len() <= 16);
            assert!(s.chars().next().unwrap().is_ascii_alphabetic());
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == '-'));
        }
    }

    #[test]
    fn optional_groups_and_escapes() {
        let mut r = rng();
        let mut saw_query = false;
        for _ in 0..200 {
            let s = generate("/[a-z0-9/_.-]{0,30}(\\?[a-z0-9=&-]{0,20})?", &mut r);
            assert!(s.starts_with('/'));
            if s.contains('?') {
                saw_query = true;
            }
        }
        assert!(saw_query, "optional group never taken in 200 draws");
    }

    #[test]
    fn exact_reps_and_literals() {
        let mut r = rng();
        let s = generate("abc[0-9]{3}", &mut r);
        assert_eq!(s.len(), 6);
        assert!(s.starts_with("abc"));
        assert!(s[3..].chars().all(|c| c.is_ascii_digit()));
    }
}
