//! Offline vendored subset of [`proptest`](https://proptest-rs.github.io/):
//! the `proptest!` macro, `Strategy` combinators (`prop_map`,
//! `prop_filter_map`, `prop_oneof!`, `Just`, ranges, tuples,
//! `prop::collection::vec`, regex-literal string strategies) and the
//! `prop_assert*` family.
//!
//! Differences from real proptest, by design:
//! * no shrinking — a failing case panics with the generated inputs' debug
//!   representation via the standard assert message instead;
//! * deterministic seeding per test function (FNV of the test path), so CI
//!   failures reproduce locally without a persistence file. Set
//!   `PROPTEST_CASES` to override the per-test case count.

pub mod strategy;
pub mod string_gen;
pub mod test_runner;

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generate vectors whose elements come from `element` and whose length
    /// is uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "collection::vec: empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.usize_in(self.size.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `proptest::prelude` equivalent.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace mirror so `prop::collection::vec(...)` resolves.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Run `cases` executions of a closure taking a fresh RNG — the engine
/// behind the `proptest!` macro.
pub fn run_cases(
    config: &test_runner::Config,
    test_path: &str,
    mut body: impl FnMut(&mut test_runner::TestRng),
) {
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(config.cases);
    let mut rng = test_runner::TestRng::deterministic(test_path);
    for _ in 0..cases {
        body(&mut rng);
    }
}

/// Property-test entry point. Mirrors proptest's macro syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_property(x in 0u64..100, label in "[a-z]{1,10}") { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::test_runner::Config::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($p:pat in $s:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::Config = $cfg;
                $crate::run_cases(
                    &__cfg,
                    concat!(module_path!(), "::", stringify!($name)),
                    |__rng| {
                        $(let $p = $crate::strategy::Strategy::generate(&($s), __rng);)+
                        $body
                    },
                );
            }
        )*
    };
}

/// Assert inside a property test (panics; no shrinking in the vendored
/// subset).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skip the current generated case when `cond` does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $( $crate::strategy::Strategy::boxed($s) ),+
        ])
    };
}
