//! Test-run configuration and the deterministic RNG handed to strategies.

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::ops::Range;

/// Per-`proptest!` block configuration (mirrors `ProptestConfig`).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl Config {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 256 }
    }
}

/// FNV-1a, for stable test-path seeding.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The RNG strategies draw from. Deterministic per test path so failures
/// reproduce without a persistence file.
pub struct TestRng {
    rng: ChaCha8Rng,
}

impl TestRng {
    /// Seeded from a stable hash of `path` (typically
    /// `module_path!()::test_name`).
    pub fn deterministic(path: &str) -> TestRng {
        TestRng {
            rng: ChaCha8Rng::seed_from_u64(fnv1a(path.as_bytes())),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let zone = u64::MAX - (u64::MAX - n + 1) % n;
        loop {
            let v = self.rng.next_u64();
            if v <= zone {
                return v % n;
            }
        }
    }

    /// Uniform in `[lo, hi]` (inclusive).
    pub fn u64_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(span + 1)
    }

    /// Uniform in `[lo, hi]` for signed bounds.
    pub fn i64_inclusive(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi as i128 - lo as i128) as u128;
        if span == u64::MAX as u128 {
            return self.next_u64() as i64;
        }
        (lo as i128 + self.below(span as u64 + 1) as i128) as i64
    }

    /// Uniform float in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi);
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }

    /// Uniform usize drawn from a half-open range.
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        debug_assert!(range.start < range.end);
        self.u64_inclusive(range.start as u64, range.end as u64 - 1) as usize
    }
}
