//! The `Strategy` trait and combinators.

use crate::string_gen;
use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// The vendored subset has no shrinking: `generate` produces one value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `f` (regenerates on rejection).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason,
            f,
        }
    }

    /// Transform-and-filter in one step (regenerates on `None`).
    fn prop_filter_map<T, F: Fn(Self::Value) -> Option<T>>(
        self,
        reason: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            inner: self,
            reason,
            f,
        }
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

const MAX_REJECTS: u32 = 10_000;

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_REJECTS {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter: too many rejects ({})", self.reason);
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> Option<T>> Strategy for FilterMap<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        for _ in 0..MAX_REJECTS {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map: too many rejects ({})", self.reason);
    }
}

/// Always produce a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Choose uniformly among `options`.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> OneOf<T> {
        assert!(!options.is_empty(), "prop_oneof: no options");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.usize_in(0..self.options.len());
        self.options[i].generate(rng)
    }
}

// ---- primitive strategies ----------------------------------------------

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T` ("any value").
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "range strategy: empty range");
                rng.u64_inclusive(self.start as u64, self.end as u64 - 1) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "range strategy: empty range");
                rng.u64_inclusive(*self.start() as u64, *self.end() as u64) as $t
            }
        }
    )*};
}
impl_range_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "range strategy: empty range");
                rng.i64_inclusive(self.start as i64, self.end as i64 - 1) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "range strategy: empty range");
                rng.i64_inclusive(*self.start() as i64, *self.end() as i64) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "range strategy: empty range");
        rng.f64_in(self.start, self.end)
    }
}

/// String literals are regex-shaped string strategies, as in real proptest.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        string_gen::generate(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        string_gen::generate(self, rng)
    }
}

// ---- tuple strategies --------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::deterministic("combinators_compose");
        let s = (0u64..10)
            .prop_map(|v| v * 2)
            .prop_filter("even", |v| *v < 15);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && v < 15);
        }
        let o = crate::prop_oneof![Just(1u8), Just(2u8)];
        for _ in 0..20 {
            assert!(matches!(o.generate(&mut rng), 1 | 2));
        }
        let t = (0u8..4, 10u8..14).generate(&mut rng);
        assert!(t.0 < 4 && (10..14).contains(&t.1));
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::deterministic("vec_strategy");
        let s = crate::collection::vec(0u32..5, 2..6);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }
}
