//! Offline vendored subset of the [`rand`](https://crates.io/crates/rand)
//! 0.8 API: the `RngCore` / `SeedableRng` / `Rng` traits and the uniform
//! sampling helpers this workspace uses. Deterministic and dependency-free;
//! swap back to the real crate via `[workspace.dependencies]`.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type for fallible RNG operations (never produced by the vendored
/// generators; exists for `RngCore::try_fill_bytes` signature parity).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// Core random-number generation trait.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);

    /// Fallible fill; the vendored generators never fail.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator seedable from a fixed-size seed or a bare `u64`.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanded with SplitMix64 (matches rand 0.8).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable from the "standard" distribution (`Rng::gen`).
pub trait StandardSample: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (matches rand 0.8's
    /// `Standard` for `f64` up to rounding convention).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Uniform draw in `[0, n)` by rejection sampling (unbiased).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

/// Ranges usable with `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_uint_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64(rng, span + 1) as $t
            }
        }
    )*};
}

impl_uint_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let f = f64::sample(rng);
        self.start + f * (self.end - self.start)
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of type `T` from its standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draw uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u64() as u8;
            }
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = Counter(1);
        for _ in 0..1000 {
            let v: u64 = r.gen_range(3u64..=9);
            assert!((3..=9).contains(&v));
            let f: f64 = r.gen_range(-2.0..5.0);
            assert!((-2.0..5.0).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
