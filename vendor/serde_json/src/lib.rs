//! Offline vendored subset of [`serde_json`](https://crates.io/crates/serde_json):
//! `to_string` / `from_str` over the vendored serde core's [`serde::Value`]
//! data model, with a standards-compliant JSON printer and parser (string
//! escapes including `\uXXXX` and surrogate pairs, exponent-form numbers).

use serde::Value;
use std::fmt;

/// JSON serialization/deserialization error.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Serialize `t` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(t: &T) -> Result<String, Error> {
    let v = serde::to_value(t).map_err(|e| Error(e.to_string()))?;
    let mut out = String::new();
    write_value(&mut out, &v);
    Ok(out)
}

/// Deserialize a `T` from a JSON string.
pub fn from_str<'a, T: serde::Deserialize<'a>>(s: &'a str) -> Result<T, Error> {
    let mut p = Parser {
        s: s.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(Error(format!("trailing characters at byte {}", p.i)));
    }
    T::deserialize(serde::ValueDeserializer(v)).map_err(|e| Error(e.to_string()))
}

// ---- printer -----------------------------------------------------------

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Match serde_json: integral floats print with `.0`.
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&f.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ------------------------------------------------------------

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.s.get(self.i) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.i
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.s[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_lit("null") => Ok(Value::Null),
            Some(b't') if self.eat_lit("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_lit("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.i += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.i += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error(format!("bad array at byte {}", self.i))),
                    }
                }
            }
            Some(b'{') => {
                self.i += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.i += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error(format!("bad object at byte {}", self.i))),
                    }
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.i
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.i += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_lit("\\u") {
                                    return Err(Error("lone high surrogate".into()));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error("bad low surrogate".into()));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad surrogate pair".into()))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| Error("bad \\u escape".into()))?
                            };
                            out.push(c);
                            continue; // hex4 advanced `i` already
                        }
                        other => {
                            return Err(Error(format!("bad escape {:?}", other.map(|b| b as char))))
                        }
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = std::str::from_utf8(&self.s[self.i..])
                        .map_err(|_| Error("invalid utf-8 in string".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.i + 4 > self.s.len() {
            return Err(Error("truncated \\u escape".into()));
        }
        let hex = std::str::from_utf8(&self.s[self.i..self.i + 4])
            .map_err(|_| Error("bad \\u escape".into()))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| Error("bad \\u escape".into()))?;
        self.i += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.i += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.i += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.i += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.i += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.i += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.s[start..self.i]).map_err(|_| Error("bad number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("bad number `{text}`")))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|_| Error(format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42i64).unwrap(), "42");
        assert_eq!(from_str::<i64>("42").unwrap(), 42);
        assert_eq!(from_str::<String>("\"a\\u00e9b\"").unwrap(), "aéb");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<f64>("1.5e3").unwrap(), 1500.0);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&s).unwrap(), v);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "quote\" back\\ nl\n tab\t ctrl\u{01} é €";
        let json = to_string(&String::from(s)).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn surrogate_pairs_parse() {
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<i64>("4x").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<String>("\"abc").is_err());
    }
}
