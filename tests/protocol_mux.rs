//! The protocol-comparison workload end to end: HTTP/1.1 vs the mm-mux
//! multiplexed transport through the full harness, checking the paper's
//! qualitative SPDY claim — multiplexing wins where round trips
//! dominate — plus determinism and the sharded-experiment equivalence.

use mahimahi::harness::{run_page_load, LinkSpec, LoadSpec, NetSpec};
use mahimahi::{corpus, trace};
use mm_browser::{MuxConfig, ProtocolMode};
use mm_sim::{RngStream, SimDuration};

/// A high-RTT, many-small-objects site on few origins: the workload
/// where HTTP/1.1's one-request-per-connection rounds dominate PLT.
fn many_small_objects_site() -> mahimahi::record::StoredSite {
    let params = corpus::SiteParams {
        servers: Some(4),
        median_objects: 60.0,
        ..corpus::SiteParams::default()
    };
    let plan = corpus::plan_site(77, &params, &mut RngStream::from_seed(77));
    corpus::materialize(&plan)
}

fn high_rtt_net() -> NetSpec {
    NetSpec {
        delay: Some(SimDuration::from_millis(200)), // 400 ms RTT
        link: Some(LinkSpec::symmetric(trace::constant_rate(14.0, 2_000))),
        ..NetSpec::default()
    }
}

#[test]
fn mux_beats_http1_on_high_rtt_many_small_objects() {
    let site = many_small_objects_site();
    let mut h1 = LoadSpec::new(&site);
    h1.net = high_rtt_net();
    h1.seed = 7;
    let http1 = run_page_load(&h1);

    let mut mx = LoadSpec::new(&site);
    mx.net = high_rtt_net();
    mx.browser.protocol = ProtocolMode::Mux(MuxConfig::default());
    mx.seed = 7;
    let mux = run_page_load(&mx);

    assert_eq!(http1.failures, 0);
    assert_eq!(mux.failures, 0);
    assert_eq!(
        http1.resource_count(),
        mux.resource_count(),
        "both protocols must fetch the same dependency closure"
    );
    assert_eq!(http1.total_body_bytes, mux.total_body_bytes);
    assert!(
        mux.plt < http1.plt,
        "mux {} must beat HTTP/1.1 {} when request rounds dominate",
        mux.plt,
        http1.plt
    );
}

#[test]
fn mux_load_is_deterministic() {
    let site = many_small_objects_site();
    let run = || {
        let mut spec = LoadSpec::new(&site);
        spec.net = high_rtt_net();
        spec.browser.protocol = ProtocolMode::Mux(MuxConfig::default());
        spec.seed = 11;
        run_page_load(&spec).plt
    };
    assert_eq!(run(), run());
}

#[test]
fn mux_stock_tcp_ablation_still_completes() {
    // With the SPDY-era server IW raise disabled, the comparison runs on
    // stock TCP both sides and still completes cleanly.
    let site = many_small_objects_site();
    let mut spec = LoadSpec::new(&site);
    spec.net = high_rtt_net();
    spec.browser.protocol = ProtocolMode::Mux(MuxConfig {
        server_initial_cwnd_segments: None,
        ..MuxConfig::default()
    });
    spec.seed = 7;
    let r = run_page_load(&spec);
    assert_eq!(r.failures, 0);
}

/// The sharded fig2 must produce exactly the samples a serial loop
/// produces: same per-site seeds, same order (ROADMAP "shard multi-site
/// corpus runs" with serial-identical results).
#[test]
fn sharded_fig2_matches_serial_run() {
    let n_sites = 4;
    let seed = 2014;
    let mut sharded = bench::fig2(n_sites, seed);

    // The serial reference: the same per-site computation, in a plain
    // loop on this thread.
    let plans = bench::corpus_subset(n_sites, seed);
    let trace_1000 = trace::constant_rate(1000.0, 1000);
    let mut replay = Vec::new();
    let mut delay0 = Vec::new();
    let mut link1000 = Vec::new();
    for (i, plan) in plans.iter().enumerate() {
        let site = corpus::materialize(plan);
        let mut spec = LoadSpec::new(&site);
        spec.seed = seed.wrapping_add(i as u64);
        replay.push(run_page_load(&spec).plt.as_millis_f64());
        spec.net = NetSpec::delay_ms(0);
        delay0.push(run_page_load(&spec).plt.as_millis_f64());
        spec.net = NetSpec {
            link: Some(LinkSpec::symmetric(trace_1000.clone())),
            ..NetSpec::default()
        };
        link1000.push(run_page_load(&spec).plt.as_millis_f64());
    }
    assert_eq!(sharded.replay.samples(), &replay[..]);
    assert_eq!(sharded.delay0.samples(), &delay0[..]);
    assert_eq!(sharded.link1000.samples(), &link1000[..]);
    // And byte-identical summary statistics follow.
    assert_eq!(
        sharded.replay.median(),
        mm_sim::Summary::from_samples(replay).median()
    );
}
