//! End-to-end guarantees of the conformance auditor through the full
//! harness stack (shells, qdiscs, sockets, mux, replay servers,
//! browser):
//!
//! - the auditor only observes: PLT and the fetch ledger are identical
//!   with auditing on and off, and unchanged when the auditor shares
//!   its hooks with a live capture and span trace (the fanout path);
//! - a real page load over loss — both protocols — satisfies every
//!   online invariant: conservation ledgers, qdisc cross-checks, TCP
//!   sender checks, HTTP byte accounting, span tiling;
//! - the equivalence digests are a fingerprint of simulated behavior:
//!   identical runs agree scope-for-scope, a perturbed run does not.

use mahimahi::harness::{run_page_load, LinkSpec, LoadSpec, NetSpec};
use mahimahi::{corpus, trace};
use mm_audit::{AuditReport, Auditor};
use mm_browser::{MuxConfig, ProtocolMode};
use mm_sim::{RngStream, SimDuration};

fn small_site(seed: u64) -> mahimahi::record::StoredSite {
    let params = corpus::SiteParams {
        servers: Some(3),
        median_objects: 12.0,
        ..corpus::SiteParams::default()
    };
    let plan = corpus::plan_site(seed as usize, &params, &mut RngStream::from_seed(seed));
    corpus::materialize(&plan)
}

fn lossy_net(loss: f64) -> NetSpec {
    NetSpec {
        delay: Some(SimDuration::from_millis(40)),
        link: Some(LinkSpec::symmetric(trace::constant_rate(12.0, 1_500))),
        loss: if loss > 0.0 { Some((loss, loss)) } else { None },
        ..NetSpec::default()
    }
}

/// Run one audited load and return (result, finished report).
fn audited_load(
    site: &mahimahi::record::StoredSite,
    net: NetSpec,
    mux: bool,
    seed: u64,
) -> (mm_browser::PageLoadResult, AuditReport) {
    let auditor = Auditor::for_load(seed);
    let mut spec = LoadSpec::new(site);
    spec.net = net;
    spec.seed = seed;
    spec.audit = Some(auditor.clone());
    if mux {
        spec.browser.protocol = ProtocolMode::Mux(MuxConfig::default());
    }
    let r = run_page_load(&spec);
    (r, auditor.finish())
}

/// The auditor must only observe, and a correct stack must audit
/// clean: same PLT with auditing on and off, zero violations, and
/// digests covering both link directions and at least one connection.
#[test]
fn audited_load_is_byte_identical_and_clean() {
    let site = small_site(41);
    for mux in [false, true] {
        let mut plain = LoadSpec::new(&site);
        plain.net = lossy_net(0.02);
        plain.seed = 9;
        if mux {
            plain.browser.protocol = ProtocolMode::Mux(MuxConfig::default());
        }
        let off = run_page_load(&plain);
        let (on, report) = audited_load(&site, lossy_net(0.02), mux, 9);
        assert_eq!(off.plt, on.plt, "auditor perturbed the load (mux={mux})");
        assert_eq!(off.resource_count(), on.resource_count());
        assert_eq!(off.total_body_bytes, on.total_body_bytes);
        assert!(
            report.is_clean(),
            "violations (mux={mux}): {:?}",
            report.violations
        );
        assert!(report.packets > 0, "auditor saw no packet events");
        assert!(report.samples > 0, "auditor saw no TCP samples");
        assert!(report.spans > 0, "auditor saw no spans");
        assert!(report.digests.keys().any(|k| k.ends_with("-up")));
        assert!(report.digests.keys().any(|k| k.ends_with("-down")));
        assert!(report.digests.keys().any(|k| k.starts_with("conn:")));
    }
}

/// Digests are an order-insensitive fingerprint of simulated behavior:
/// two identical runs agree on every scope; changing the seed changes
/// them.
#[test]
fn equivalence_digests_match_identical_runs_and_split_different_ones() {
    let site = small_site(17);
    let (_, a) = audited_load(&site, lossy_net(0.03), true, 5);
    let (_, b) = audited_load(&site, lossy_net(0.03), true, 5);
    assert!(a.is_clean() && b.is_clean());
    assert!(!a.digests.is_empty());
    assert_eq!(a.digests, b.digests, "identical runs must agree");
    let (_, c) = audited_load(&site, lossy_net(0.03), true, 6);
    assert_ne!(a.digests, c.digests, "a different seed must not collide");
}

/// The fanout path: the auditor rides the same hooks as a live capture
/// and span trace without displacing either — all three observers see
/// their streams, and the load is still byte-identical.
#[test]
fn auditor_composes_with_capture_and_trace() {
    let site = small_site(23);
    let mut plain = LoadSpec::new(&site);
    plain.net = lossy_net(0.02);
    plain.seed = 3;
    let off = run_page_load(&plain);

    let auditor = Auditor::for_load(3);
    let cap = mm_capture::Capture::new();
    let buf = mm_trace::TraceBuffer::for_load(1);
    let mut spec = LoadSpec::new(&site);
    spec.net = lossy_net(0.02);
    spec.seed = 3;
    spec.capture = Some(cap.handle());
    spec.span = Some(buf.handle());
    spec.audit = Some(auditor.clone());
    let on = run_page_load(&spec);

    assert_eq!(off.plt, on.plt, "observer stack perturbed the load");
    let report = auditor.finish();
    assert!(report.is_clean(), "violations: {:?}", report.violations);
    let data = cap.data();
    assert!(!data.packets.is_empty(), "capture lost its packet stream");
    assert!(!buf.spans().is_empty(), "trace buffer lost its spans");
    // Both observers counted the same packet stream.
    assert_eq!(report.packets, data.packets.len() as u64);
}
