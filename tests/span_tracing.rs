//! End-to-end guarantees of the causal span layer through the full
//! harness stack (shells, sockets, mux, replay servers, browser):
//!
//! - the sink only observes: PLT is identical with a live `TraceBuffer`
//!   attached and with tracing off entirely;
//! - the recorded span tree is well-formed (no orphan parents, phases
//!   tile each resource exactly, HTTP/1.1 transfers never overlap on
//!   one connection) and its critical path sums *exactly* to the
//!   measured PLT — under arbitrary loss, both protocols (proptest);
//! - mux loads over a lossy link record transport `hol_wait` spans
//!   (receive-side reassembly stalls — the HoL cost the paper's SPDY
//!   comparison is about), while a clean in-order link records none.

use mahimahi::harness::{run_page_load, LinkSpec, LoadSpec, NetSpec};
use mahimahi::{corpus, trace};
use mm_browser::{MuxConfig, ProtocolMode};
use mm_path::{build_pages, critical_path, validate};
use mm_sim::{RngStream, SimDuration};
use mm_trace::{SpanKind, TraceBuffer};
use proptest::prelude::*;

fn small_site(seed: u64) -> mahimahi::record::StoredSite {
    let params = corpus::SiteParams {
        servers: Some(3),
        median_objects: 12.0,
        ..corpus::SiteParams::default()
    };
    let plan = corpus::plan_site(seed as usize, &params, &mut RngStream::from_seed(seed));
    corpus::materialize(&plan)
}

fn lossy_net(loss: f64) -> NetSpec {
    NetSpec {
        delay: Some(SimDuration::from_millis(40)),
        link: Some(LinkSpec::symmetric(trace::constant_rate(12.0, 1_500))),
        loss: if loss > 0.0 { Some((loss, loss)) } else { None },
        ..NetSpec::default()
    }
}

/// Run one traced load and return (result, recorded spans).
fn traced_load(
    site: &mahimahi::record::StoredSite,
    net: NetSpec,
    mux: bool,
    seed: u64,
) -> (mm_browser::PageLoadResult, Vec<mm_trace::Span>) {
    let buf = TraceBuffer::for_load(1);
    let mut spec = LoadSpec::new(site);
    spec.net = net;
    spec.seed = seed;
    spec.span = Some(buf.handle());
    if mux {
        spec.browser.protocol = ProtocolMode::Mux(MuxConfig::default());
    }
    let r = run_page_load(&spec);
    assert_eq!(buf.dropped(), 0, "trace buffer overflowed");
    (r, buf.spans())
}

/// The tentpole invariant, checked for one traced load: well-formed
/// tree, and critical-path durations summing exactly (nanosecond-exact,
/// no epsilon) to the PLT the harness measured.
fn assert_path_sums_to_plt(result: &mm_browser::PageLoadResult, spans: &[mm_trace::Span]) {
    let pages = build_pages(spans);
    assert_eq!(pages.len(), 1, "one load must yield one page tree");
    let tree = &pages[0];
    let errs = validate(tree);
    assert!(errs.is_empty(), "malformed span tree: {errs:?}");
    assert_eq!(
        tree.plt_ns(),
        result.plt.as_nanos(),
        "page span duration must equal measured PLT"
    );
    let path = critical_path(tree);
    assert!(!path.is_empty());
    let sum: u64 = path.iter().map(|s| s.dur_ns()).sum();
    assert_eq!(
        sum,
        result.plt.as_nanos(),
        "critical path must sum exactly to PLT"
    );
}

/// The sink must only observe: attaching a live buffer cannot move a
/// single simulated event, so PLT and the fetch ledger are identical
/// with tracing on and off.
#[test]
fn traced_load_is_byte_identical_to_untraced() {
    let site = small_site(41);
    for mux in [false, true] {
        let mut plain = LoadSpec::new(&site);
        plain.net = lossy_net(0.02);
        plain.seed = 9;
        if mux {
            plain.browser.protocol = ProtocolMode::Mux(MuxConfig::default());
        }
        let off = run_page_load(&plain);
        let (on, spans) = traced_load(&site, lossy_net(0.02), mux, 9);
        assert_eq!(off.plt, on.plt, "span sink perturbed the load (mux={mux})");
        assert_eq!(off.resource_count(), on.resource_count());
        assert_eq!(off.total_body_bytes, on.total_body_bytes);
        assert!(!spans.is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Under arbitrary i.i.d. loss, with either protocol, the span
    /// tree stays well-formed and the critical path reproduces PLT
    /// exactly from spans alone.
    #[test]
    fn critical_path_sums_to_plt_under_loss(
        loss in prop_oneof![Just(0.0), 0.001f64..0.06],
        mux in any::<bool>(),
        seed in 0u64..1_000,
    ) {
        let site = small_site(17);
        let (result, spans) = traced_load(&site, lossy_net(loss), mux, seed);
        prop_assert_eq!(result.failures, 0);
        assert_path_sums_to_plt(&result, &spans);
    }
}

/// HTTP/1.1 well-formedness, explicitly: on any one connection the
/// transfer phases of distinct resources never overlap (the protocol
/// serializes request/response exchanges), which is exactly the
/// property mux trades away for fewer connections.
#[test]
fn http1_transfers_never_overlap_per_connection() {
    let site = small_site(23);
    let (result, spans) = traced_load(&site, lossy_net(0.03), false, 5);
    assert_path_sums_to_plt(&result, &spans);
    let mut per_conn: std::collections::HashMap<u64, Vec<(u64, u64)>> =
        std::collections::HashMap::new();
    for s in &spans {
        if s.kind == SpanKind::Transfer && s.conn != 0 {
            per_conn.entry(s.conn).or_default().push((s.t0_ns, s.t1_ns));
        }
    }
    assert!(!per_conn.is_empty());
    for (conn, mut windows) in per_conn {
        windows.sort_unstable();
        for pair in windows.windows(2) {
            assert!(
                pair[1].0 >= pair[0].1,
                "conn {conn}: transfers {:?} and {:?} overlap",
                pair[0],
                pair[1]
            );
        }
    }
}

/// The mux head-of-line signal: over a lossy link the receive side
/// stalls on reassembly gaps and the socket records `hol_wait` spans;
/// over a clean in-order link the same load records none.
#[test]
fn mux_records_hol_wait_under_loss_but_not_clean() {
    let site = small_site(31);

    let (clean_result, clean_spans) = traced_load(&site, lossy_net(0.0), true, 3);
    assert_eq!(clean_result.failures, 0);
    let clean_hol = clean_spans
        .iter()
        .filter(|s| s.kind == SpanKind::HolWait)
        .count();
    assert_eq!(clean_hol, 0, "clean in-order link must have no HoL waits");

    let (lossy_result, lossy_spans) = traced_load(&site, lossy_net(0.05), true, 3);
    assert_eq!(lossy_result.failures, 0);
    let lossy_hol = lossy_spans
        .iter()
        .filter(|s| s.kind == SpanKind::HolWait)
        .count();
    assert!(
        lossy_hol > 0,
        "5% loss on a mux load must stall reassembly at least once"
    );
    // And those stalls are real time on the shared connection.
    assert!(lossy_spans
        .iter()
        .filter(|s| s.kind == SpanKind::HolWait)
        .all(|s| s.t1_ns > s.t0_ns && s.conn != 0));
}
