//! Reproducibility guarantees at workspace level: identical seeds yield
//! identical measurements end-to-end; seeds vary measurements only
//! through modelled noise.

use mahimahi::corpus;
use mahimahi::harness::{run_loads, run_page_load, LoadSpec, NetSpec};
use mm_sim::RngStream;
use mm_web::HostProfile;

fn site() -> mm_record::StoredSite {
    let plan = corpus::plan_site(
        77,
        &corpus::SiteParams {
            servers: Some(10),
            median_objects: 30.0,
            ..Default::default()
        },
        &mut RngStream::from_seed(5),
    );
    corpus::materialize(&plan)
}

#[test]
fn same_spec_same_everything() {
    let s = site();
    let mut a = LoadSpec::new(&s);
    a.net = NetSpec::delay_ms(40);
    a.host_profile = Some(HostProfile::machine_1());
    a.seed = 123;
    let r1 = run_page_load(&a);
    let mut b = LoadSpec::new(&s);
    b.net = NetSpec::delay_ms(40);
    b.host_profile = Some(HostProfile::machine_1());
    b.seed = 123;
    let r2 = run_page_load(&b);
    assert_eq!(r1.plt, r2.plt);
    assert_eq!(r1.total_body_bytes, r2.total_body_bytes);
    let t1: Vec<_> = r1.resources.iter().map(|t| t.finished_at).collect();
    let t2: Vec<_> = r2.resources.iter().map(|t| t.finished_at).collect();
    assert_eq!(t1, t2, "per-resource timings bit-identical");
}

#[test]
fn different_machines_statistically_equal() {
    let s = site();
    let mut m1 = LoadSpec::new(&s);
    m1.net = NetSpec::delay_ms(30);
    m1.host_profile = Some(HostProfile::machine_1());
    m1.seed = 1;
    let mut m2 = LoadSpec::new(&s);
    m2.net = NetSpec::delay_ms(30);
    m2.host_profile = Some(HostProfile::machine_2());
    m2.seed = 2;
    let p1 = run_loads(&m1, 25);
    let p2 = run_loads(&m2, 25);
    let mean1: f64 = p1.iter().sum::<f64>() / p1.len() as f64;
    let mean2: f64 = p2.iter().sum::<f64>() / p2.len() as f64;
    // Table 1's invariant at test scale: means within 1%.
    assert!(
        (mean1 - mean2).abs() / mean1.min(mean2) < 0.01,
        "means {mean1} vs {mean2}"
    );
    assert_ne!(p1, p2, "realizations must differ");
}

#[test]
fn corpus_regeneration_stable() {
    let a = corpus::generate_plans(&corpus::CorpusConfig {
        n_sites: 40,
        ..Default::default()
    });
    let b = corpus::generate_plans(&corpus::CorpusConfig {
        n_sites: 40,
        ..Default::default()
    });
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.total_bytes(), y.total_bytes());
        assert_eq!(x.objects.len(), y.objects.len());
    }
}
