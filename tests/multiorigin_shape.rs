//! Smoke test of the paper's central quantitative claims, at reduced
//! scale so it runs in CI time: Table 2's bandwidth trend and Figure 3's
//! ordering.

use bench::{fig3, table2};

#[test]
fn table2_bandwidth_trend() {
    let r = table2(6, 2014);
    let cell = |mbps: f64, d: u64| {
        r.cells
            .iter()
            .find(|c| c.mbps == mbps && c.delay_ms == d)
            .unwrap()
    };
    // "Although the page load times are comparable over a 1 Mbit/s link,
    // not capturing the multi-origin nature yields significantly worse
    // performance at higher link speeds."
    let low_bw = cell(1.0, 30).median_diff_pct;
    let high_bw = cell(25.0, 30).median_diff_pct;
    assert!(
        low_bw.abs() < 10.0,
        "1 Mbit/s diff should be small: {low_bw}"
    );
    assert!(high_bw > 8.0, "25 Mbit/s diff should be large: {high_bw}");
    // The difference shrinks as RTT grows (the paper's row trend).
    let at_300 = cell(25.0, 300).median_diff_pct;
    assert!(
        high_bw > at_300,
        "diff at 30ms ({high_bw}) should exceed diff at 300ms ({at_300})"
    );
}

#[test]
fn fig3_ordering() {
    let mut r = fig3(8, 2014);
    let web = r.web.median();
    let multi = r.multi.median();
    let single = r.single.median();
    // Multi-origin replay tracks the web; single-server is far off.
    assert!(multi < single, "multi {multi} must beat single {single}");
    let multi_gap = (multi - web).abs() / web;
    let single_gap = (single - web).abs() / web;
    assert!(
        multi_gap < single_gap,
        "multi gap {multi_gap} must be smaller than single gap {single_gap}"
    );
}
