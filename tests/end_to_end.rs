//! Workspace integration: the full record → replay circle.
//!
//! A corpus site is served by one ReplayShell ("the Internet"); a browser
//! inside a RecordShell loads it, producing a recording; the recording is
//! then replayed in a second, fresh world and must reproduce the same
//! resources, bytes and (bit-identical settings ⇒ near-identical) PLT.

use std::cell::RefCell;
use std::rc::Rc;

use mahimahi::browser::{Browser, BrowserConfig, PageLoadResult, Resolver};
use mahimahi::corpus;
use mahimahi::harness::{run_page_load, LoadSpec};
use mm_net::{Host, IpAddr, Namespace, PacketIdGen, SocketAddr};
use mm_record::RecordShell;
use mm_replay::{ReplayConfig, ReplayShell};
use mm_sim::{RngStream, Simulator};

fn load_through_recordshell() -> (mm_record::StoredSite, PageLoadResult, mm_record::StoredSite) {
    // "The Internet": a replayed corpus site in the root namespace.
    let plan = corpus::plan_site(
        42,
        &corpus::SiteParams {
            servers: Some(7),
            median_objects: 22.0,
            ..Default::default()
        },
        &mut RngStream::from_seed(11),
    );
    let original = corpus::materialize(&plan);

    let mut sim = Simulator::new();
    let internet = Namespace::root("internet");
    let ids = PacketIdGen::new();
    let origin_servers = Rc::new(ReplayShell::new(
        &internet,
        &original,
        ReplayConfig::default(),
        &ids,
    ));

    // RecordShell between the browser and the internet.
    let shell = RecordShell::new(
        &internet,
        "recordshell",
        IpAddr::new(192, 168, 0, 9),
        ids.clone(),
        &original.name,
        &original.root_url,
    );
    let browser_host = Host::new_in(IpAddr::new(100, 64, 0, 2), ids, &shell.inner_ns);
    let resolver: Resolver = {
        let s = origin_servers.clone();
        Rc::new(move |url: &mm_http::Url| {
            s.resolve(SocketAddr::new(url.host.parse().unwrap(), url.port))
        })
    };
    let browser = Browser::new(browser_host, resolver, BrowserConfig::default());
    let result = Rc::new(RefCell::new(None));
    let slot = result.clone();
    browser.navigate(&mut sim, &original.root_url, move |_s, r| {
        *slot.borrow_mut() = Some(r)
    });
    sim.run();
    let live_result = result.borrow_mut().take().expect("load completed");
    let recording = shell.recorded();
    (original, live_result, recording)
}

#[test]
fn recording_captures_the_whole_page() {
    let (original, live, recording) = load_through_recordshell();
    assert_eq!(live.failures, 0);
    assert_eq!(
        recording.pairs.len(),
        live.resource_count(),
        "one recorded pair per fetched resource"
    );
    // Every recorded body matches the original site's content.
    for pair in &recording.pairs {
        let matching = original
            .pairs
            .iter()
            .find(|p| p.request.target == pair.request.target && p.origin == pair.origin);
        let m = matching.expect("recorded pair corresponds to an original");
        assert_eq!(m.response.body, pair.response.body);
    }
    assert_eq!(recording.origins().len(), original.origins().len());
}

#[test]
fn replaying_the_recording_reproduces_the_page() {
    let (_original, live, recording) = load_through_recordshell();
    // Replay the recording in a fresh world and load it again.
    let spec = LoadSpec::new(&recording);
    let replayed = run_page_load(&spec);
    assert_eq!(replayed.failures, 0);
    assert_eq!(replayed.resource_count(), live.resource_count());
    assert_eq!(replayed.total_body_bytes, live.total_body_bytes);
}
