//! Workspace smoke test: the documented quickstart path, end to end.
//!
//! This is the CI gate that proves the whole stack is wired together —
//! corpus synthesis (`plan_site` → `materialize`), ReplayShell serving the
//! recorded site, the browser model loading it through a DelayShell, and
//! PLT measurement — not just that every crate compiles. It intentionally
//! mirrors the crate-root example in `crates/core/src/lib.rs`.

use mahimahi::corpus;
use mahimahi::harness::{run_page_load, LoadSpec, NetSpec};
use mm_sim::RngStream;

#[test]
fn quickstart_page_load_takes_at_least_one_rtt() {
    // Build a small synthetic recorded site...
    let plan = corpus::plan_site(
        990,
        &corpus::SiteParams {
            servers: Some(4),
            median_objects: 10.0,
            ..Default::default()
        },
        &mut RngStream::from_seed(1),
    );
    let site = corpus::materialize(&plan);
    assert!(
        !site.pairs.is_empty(),
        "materialized site should contain recorded pairs"
    );

    // ...and load it through a 30 ms one-way DelayShell.
    let mut spec = LoadSpec::new(&site);
    spec.net = NetSpec::delay_ms(30);
    let result = run_page_load(&spec);

    // The page cannot finish faster than one round trip (2 × 30 ms), and
    // a handful of objects over a delay-only path must finish well under
    // simulated minutes.
    assert!(
        result.plt.as_millis() > 60,
        "PLT {:?} is below one RTT",
        result.plt
    );
    assert!(
        result.plt.as_millis() < 60_000,
        "PLT {:?} absurdly slow for a delay-only path",
        result.plt
    );
    assert!(
        !result.resources.is_empty(),
        "page load should fetch at least the root document"
    );
}

#[test]
fn quickstart_is_deterministic() {
    let build = || {
        let plan = corpus::plan_site(
            990,
            &corpus::SiteParams {
                servers: Some(4),
                median_objects: 10.0,
                ..Default::default()
            },
            &mut RngStream::from_seed(1),
        );
        let site = corpus::materialize(&plan);
        let mut spec = LoadSpec::new(&site);
        spec.net = NetSpec::delay_ms(30);
        run_page_load(&spec).plt
    };
    assert_eq!(build(), build(), "same seed must give bit-identical PLT");
}
