//! Isolation: "each namespace created by Mahimahi is separate from the
//! host machine's default namespace and every other namespace", so many
//! emulation stacks can run concurrently without perturbing each other.
//!
//! This example runs the same measurement (a) alone and (b) while 7 other
//! shell stacks hammer their own replay servers in sibling namespaces of
//! the same world, and shows the measured PLT is bit-identical. It then
//! prints the namespace counters proving zero cross-traffic.
//!
//! Run with: `cargo run --release --example concurrent_isolation`

use std::cell::RefCell;
use std::rc::Rc;

use mahimahi::browser::{Browser, BrowserConfig, PageLoadResult};
use mahimahi::corpus;
use mm_net::{Host, IpAddr, Namespace, PacketIdGen, SocketAddr};
use mm_replay::{ReplayConfig, ReplayShell};
use mm_shells::ShellStack;
use mm_sim::{RngStream, SimDuration, Simulator};

/// Build one measurement stack (replay servers + delay shell + browser)
/// inside `world`, as a child namespace subtree. Returns the PLT slot.
fn build_stack(
    sim_seed: u64,
    site_idx: usize,
    world: &Namespace,
    sim: &mut Simulator,
) -> (Rc<RefCell<Option<PageLoadResult>>>, Namespace) {
    let plan = corpus::plan_site(
        site_idx,
        &corpus::SiteParams {
            servers: Some(8),
            median_objects: 25.0,
            ..Default::default()
        },
        &mut RngStream::from_seed(sim_seed),
    );
    let site = corpus::materialize(&plan);

    // Each stack gets its own subtree: a "machine" namespace under the
    // world, containing replay servers and a delay shell with the browser
    // inside — fully private addresses and traffic.
    let machine = Namespace::root(&format!("machine-{site_idx}"));
    world.attach_child(&machine, world.router(), machine.router());
    let ids = PacketIdGen::new();
    let shell = Rc::new(ReplayShell::new(
        &machine,
        &site,
        ReplayConfig::default(),
        &ids,
    ));
    let stack = ShellStack::new(&machine).delay(SimDuration::from_millis(20));
    let inner = stack.innermost();
    let host = Host::new_in(IpAddr::new(100, 64, 0, 2), ids, &inner);
    let resolver: mahimahi::browser::Resolver = {
        let shell = shell.clone();
        Rc::new(move |url: &mm_http::Url| {
            shell.resolve(SocketAddr::new(url.host.parse().unwrap(), url.port))
        })
    };
    let browser = Browser::new(host, resolver, BrowserConfig::default());
    let slot = Rc::new(RefCell::new(None));
    let s2 = slot.clone();
    let root_url = site.root_url.clone();
    browser.navigate(sim, &root_url, move |_s, r| *s2.borrow_mut() = Some(r));
    (slot, inner)
}

fn main() {
    // Run 1: the measurement alone.
    let mut sim = Simulator::new();
    let world = Namespace::root("host-machine");
    let (alone, _) = build_stack(1, 10, &world, &mut sim);
    sim.run();
    let alone_plt = alone.borrow().as_ref().unwrap().plt;
    println!("measurement alone:        PLT {alone_plt}");

    // Run 2: the same measurement with 7 concurrent stacks.
    let mut sim = Simulator::new();
    let world = Namespace::root("host-machine");
    let (measured, inner) = build_stack(1, 10, &world, &mut sim);
    let mut others = Vec::new();
    for k in 0..7 {
        others.push(build_stack(100 + k, 20 + k as usize, &world, &mut sim));
    }
    sim.run();
    let busy_plt = measured.borrow().as_ref().unwrap().plt;
    println!("with 7 concurrent stacks: PLT {busy_plt}");
    assert_eq!(alone_plt, busy_plt, "isolation violated!");
    println!("=> bit-identical: namespaces fully isolate concurrent tests\n");

    // Counters: the measured stack's namespace never saw foreign packets.
    let c = inner.counters();
    println!(
        "measured stack's inner namespace counters: local={} up={} down={} unroutable={}",
        c.delivered_local, c.forwarded_up, c.forwarded_down, c.unroutable
    );
    for (k, (slot, ns)) in others.iter().enumerate() {
        let done = slot.borrow().is_some();
        let c = ns.counters();
        println!(
            "background stack {k}: completed={done} (its own traffic: {} pkts)",
            c.total()
        );
    }
}
