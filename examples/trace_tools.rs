//! Working with Mahimahi packet-delivery traces: generate, serialize,
//! parse, validate, and inspect rate structure — everything `mm-link`
//! traces need, without leaving Rust.
//!
//! Run with: `cargo run --release --example trace_tools`

use mahimahi::trace::{cellular, constant_rate, on_off, CellularParams, Trace};
use mm_sim::RngStream;

fn main() {
    // Generate a constant 12 Mbit/s trace (one opportunity per ms).
    let cbr = constant_rate(12.0, 1000);
    println!(
        "CBR trace: {} opportunities / {} ms, mean rate {:.2} Mbit/s",
        cbr.len(),
        cbr.period_ms(),
        cbr.mean_rate_mbps()
    );

    // Serialize to the mm-link file format and parse it back.
    let text = cbr.to_file_format();
    println!("first lines of file format: {:?} ...", &text[..20]);
    let parsed = Trace::parse(&text).expect("round-trips");
    assert_eq!(parsed, cbr);

    // A bursty LTE-like trace and its rate structure over time.
    let lte = cellular(
        &CellularParams {
            mean_mbps: 10.0,
            volatility: 0.7,
            state_ms: 250,
            outage_prob: 0.04,
            period_ms: 20_000,
        },
        &mut RngStream::from_seed(1),
    );
    println!(
        "\nLTE-like trace: mean {:.1} Mbit/s over {} s",
        lte.mean_rate_mbps(),
        lte.period_ms() / 1000
    );
    println!("per-second rate (Mbit/s):");
    for (t, mbps) in lte.rate_timeseries(1000) {
        let bar = "#".repeat((mbps / 2.0) as usize);
        println!("  {:>5} ms {:>6.1} {}", t, mbps, bar);
    }

    // On-off link: 8 Mbit/s duty-cycled.
    let oo = on_off(16.0, 400, 400, 4000);
    println!(
        "\non-off trace: mean {:.1} Mbit/s (16 Mbit/s at 50% duty)",
        oo.mean_rate_mbps()
    );

    // Malformed traces are rejected with precise errors.
    for bad in ["", "5\n3\n", "abc\n"] {
        println!("parse({bad:?}) -> {}", Trace::parse(bad).unwrap_err());
    }

    // Walking delivery opportunities (what LinkShell does internally),
    // including the wrap past the end of the trace.
    let t = Trace::from_timestamps(vec![2, 4, 10]).unwrap();
    let walk: Vec<u64> = (0..8).map(|i| t.opportunity_ms(i)).collect();
    println!("\nopportunity walk of [2,4,10]: {walk:?} (period 10 ms)");
}
