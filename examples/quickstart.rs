//! Quickstart: replay a recorded site under emulated network conditions
//! and measure page load time — the toolkit's core loop in ~80 lines.
//!
//! Run with: `cargo run --release --example quickstart`

use mahimahi::harness::{run_page_load, LinkSpec, LoadSpec, NetSpec};
use mahimahi::{corpus, trace};
use mm_sim::{RngStream, SimDuration};

fn main() {
    // 1. A recorded site. (In a full record-replay round trip you would
    //    drive a client through `mm_record::RecordShell`; here we take a
    //    synthetic recording from the corpus generator — same format.)
    let plan = corpus::plan_site(
        0,
        &corpus::SiteParams {
            servers: Some(12),
            median_objects: 40.0,
            ..Default::default()
        },
        &mut RngStream::from_seed(7),
    );
    let site = corpus::materialize(&plan);
    println!(
        "recorded site: {} — {} origins, {} objects, {} KB",
        site.name,
        site.origins().len(),
        site.pairs.len(),
        site.total_body_bytes() / 1024
    );

    // 2. Replay it bare (no network emulation).
    let bare = run_page_load(&LoadSpec::new(&site));
    println!(
        "bare ReplayShell:              PLT {:>10}  ({} resources)",
        bare.plt.to_string(),
        bare.resource_count()
    );

    // 3. Replay behind `mm-delay 50` (100 ms RTT).
    let mut delayed = LoadSpec::new(&site);
    delayed.net = NetSpec::delay_ms(50);
    let r = run_page_load(&delayed);
    println!(
        "+ DelayShell 50 ms:            PLT {:>10}",
        r.plt.to_string()
    );

    // 4. Replay behind `mm-delay 50 mm-link cellular.trace` — a bursty
    //    LTE-like 10 Mbit/s trace.
    let cell = trace::cellular(
        &trace::CellularParams {
            mean_mbps: 10.0,
            period_ms: 30_000,
            ..Default::default()
        },
        &mut RngStream::from_seed(42),
    );
    let mut cellular = LoadSpec::new(&site);
    cellular.net = NetSpec {
        delay: Some(SimDuration::from_millis(50)),
        link: Some(LinkSpec::symmetric(cell)),
        ..NetSpec::default()
    };
    let r = run_page_load(&cellular);
    println!(
        "+ LinkShell (LTE-like 10Mbps): PLT {:>10}",
        r.plt.to_string()
    );

    // 5. Same, with 1% loss each way (`mm-loss`).
    let mut lossy = LoadSpec::new(&site);
    lossy.net = NetSpec {
        delay: Some(SimDuration::from_millis(50)),
        loss: Some((0.01, 0.01)),
        ..NetSpec::default()
    };
    let r = run_page_load(&lossy);
    println!(
        "+ LossShell 1%:                PLT {:>10}",
        r.plt.to_string()
    );
}
