//! "Beyond browsers": Mahimahi evaluates *any* application that uses
//! HTTP, and network-protocol designers use it to A/B transport changes
//! under identical emulated conditions.
//!
//! This example compares TCP Reno vs CUBIC, connection-pool sizes
//! (2/6/12 connections per origin), and HTTP/1.1 against the mm-mux
//! multiplexed transport (the paper's SPDY-style study), loading the
//! same recorded site over the same 14 Mbit/s / 80 ms RTT emulated
//! path — the kind of study the paper's introduction motivates.
//!
//! Run with: `cargo run --release --example protocol_ab_test`

use mahimahi::harness::{run_page_load, LinkSpec, LoadSpec, NetSpec};
use mahimahi::{corpus, trace};
use mm_browser::{MuxConfig, ProtocolMode};
use mm_net::CcAlgorithm;
use mm_sim::{RngStream, SimDuration};

fn main() {
    let plan = corpus::plan_site(
        3,
        &corpus::SiteParams {
            servers: Some(16),
            median_objects: 80.0,
            ..Default::default()
        },
        &mut RngStream::from_seed(3),
    );
    let site = corpus::materialize(&plan);
    let net = NetSpec {
        delay: Some(SimDuration::from_millis(40)),
        link: Some(LinkSpec::symmetric(trace::constant_rate(14.0, 5_000))),
        ..NetSpec::default()
    };
    println!(
        "site: {} origins / {} objects; path: 14 Mbit/s, 80 ms RTT\n",
        site.origins().len(),
        site.pairs.len()
    );

    // A/B: congestion control, applied to every host in the world.
    println!("congestion control:");
    for (name, cc) in [("Reno", CcAlgorithm::Reno), ("CUBIC", CcAlgorithm::Cubic)] {
        let mut spec = LoadSpec::new(&site);
        spec.net = net.clone();
        spec.tcp = Some(mm_net::TcpConfig::builder().cc(cc).build());
        let r = run_page_load(&spec);
        println!("  {name:<6} PLT {}", r.plt);
    }

    // A/B: browser connection-pool size.
    println!("\nconnections per origin:");
    for conns in [2usize, 6, 12] {
        let mut spec = LoadSpec::new(&site);
        spec.net = net.clone();
        spec.browser.protocol = ProtocolMode::Http1 { pool_size: conns };
        let r = run_page_load(&spec);
        println!("  {conns:<6} PLT {}", r.plt);
    }

    // A/B: wire protocol — HTTP/1.1 pools vs one multiplexed connection
    // per origin (the paper's SPDY case study, §5).
    println!("\nwire protocol:");
    for (name, protocol) in [
        ("HTTP/1.1 (6 conns/origin)", ProtocolMode::default()),
        (
            "mux (1 conn, 32 streams)",
            ProtocolMode::Mux(MuxConfig::default()),
        ),
    ] {
        let mut spec = LoadSpec::new(&site);
        spec.net = net.clone();
        spec.browser.protocol = protocol;
        let r = run_page_load(&spec);
        println!("  {name:<26} PLT {}", r.plt);
    }

    // A/B: server think time (CDN speed).
    println!("\nserver think time:");
    for ms in [0u64, 5, 25, 80] {
        let mut spec = LoadSpec::new(&site);
        spec.net = net.clone();
        spec.replay.think_time = SimDuration::from_millis(ms);
        let r = run_page_load(&spec);
        println!("  {ms:>3}ms  PLT {}", r.plt);
    }
}
