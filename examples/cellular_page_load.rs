//! Page loads over time-varying cellular links — the workload class
//! LinkShell exists for ("flexible enough to emulate both time-varying
//! links such as cellular links and links with a fixed link speed").
//!
//! Sweeps an nytimes-like page over CBR vs LTE-like vs on-off traces at
//! the same mean rate, plus a queue-discipline ablation, showing how link
//! burstiness and AQM shape page load time.
//!
//! Run with: `cargo run --release --example cellular_page_load`

use mahimahi::harness::{run_page_load, LinkSpec, LoadSpec, NetSpec, QdiscKind};
use mahimahi::{corpus, trace};
use mm_sim::{RngStream, SimDuration, Summary};

fn plt_under(site: &mm_record::StoredSite, link: LinkSpec, loads: usize) -> Summary {
    let mut s = Summary::new();
    for i in 0..loads {
        let mut spec = LoadSpec::new(site);
        spec.net = NetSpec {
            delay: Some(SimDuration::from_millis(30)),
            link: Some(link.clone()),
            ..NetSpec::default()
        };
        spec.host_profile = Some(mm_web::HostProfile::machine_1());
        spec.seed = 1000 + i as u64;
        s.add(run_page_load(&spec).plt.as_millis_f64());
    }
    s
}

fn main() {
    let plan = corpus::nytimes_like(1);
    let site = corpus::materialize(&plan);
    println!(
        "site: {} origins, {} objects, {:.1} MB\n",
        plan.server_count(),
        site.pairs.len(),
        site.total_body_bytes() as f64 / 1e6
    );
    let loads = 10;

    // Same mean rate (10 Mbit/s), three very different delivery patterns.
    let cbr = trace::constant_rate(10.0, 10_000);
    let lte = trace::cellular(
        &trace::CellularParams {
            mean_mbps: 10.0,
            period_ms: 60_000,
            ..Default::default()
        },
        &mut RngStream::from_seed(9),
    );
    let onoff = trace::on_off(20.0, 500, 500, 10_000); // 10 Mbit/s average

    println!(
        "{:<26} {:>10} {:>10}",
        "link (10 Mbit/s mean)", "median", "p95"
    );
    for (name, t) in [
        ("constant bit rate", cbr),
        ("LTE-like bursty", lte),
        ("on-off 500ms/500ms", onoff),
    ] {
        let mut s = plt_under(&site, LinkSpec::symmetric(t), loads);
        println!(
            "{:<26} {:>8.0}ms {:>8.0}ms",
            name,
            s.percentile(50.0),
            s.percentile(95.0)
        );
    }

    // Queue-discipline ablation on the bursty link: infinite droptail
    // (bufferbloat) vs bounded droptail vs CoDel vs PIE.
    println!("\nqueue discipline ablation (LTE-like link):");
    println!("{:<26} {:>10} {:>10}", "qdisc", "median", "p95");
    let lte = trace::cellular(
        &trace::CellularParams {
            mean_mbps: 10.0,
            period_ms: 60_000,
            ..Default::default()
        },
        &mut RngStream::from_seed(9),
    );
    for (name, q) in [
        ("infinite droptail", QdiscKind::Infinite),
        ("droptail 600 pkts", QdiscKind::DropTailPackets(600)),
        ("drophead 600 pkts", QdiscKind::DropHeadPackets(600)),
        ("CoDel", QdiscKind::Codel),
        ("PIE", QdiscKind::Pie(10.0)),
    ] {
        let link = LinkSpec {
            uplink: lte.clone(),
            downlink: lte.clone(),
            qdisc: q,
        };
        let mut s = plt_under(&site, link, loads);
        println!(
            "{:<26} {:>8.0}ms {:>8.0}ms",
            name,
            s.percentile(50.0),
            s.percentile(95.0)
        );
    }
}
