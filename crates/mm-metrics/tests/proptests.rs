//! Property tests on the metrics layer: histogram conservation laws,
//! encoder validity, tracer bounds.

use mm_metrics::{validate_text, FlowSample, FlowTracer, Registry};
use proptest::prelude::*;

proptest! {
    #[test]
    fn histogram_bucket_counts_sum_to_sample_count(
        samples in prop::collection::vec(-10.0f64..1e4, 0..300),
        bounds in prop::collection::vec(0.001f64..1e4, 1..12),
    ) {
        let mut bounds = bounds;
        bounds.sort_by(|a, b| a.partial_cmp(b).unwrap());
        bounds.dedup();
        let registry = Registry::new();
        let h = registry.histogram("x_values", "", &bounds);
        for &s in &samples {
            h.observe(s);
        }
        let counts = h.bucket_counts();
        prop_assert_eq!(counts.len(), bounds.len() + 1);
        prop_assert_eq!(counts.iter().sum::<u64>(), samples.len() as u64);
        prop_assert_eq!(h.count(), samples.len() as u64);
        let sum: f64 = samples.iter().sum();
        prop_assert!((h.sum() - sum).abs() <= 1e-6 * sum.abs().max(1.0));
    }

    #[test]
    fn every_encoding_validates(
        counter_vals in prop::collection::vec(0u64..u64::MAX / 2, 0..5),
        gauge_vals in prop::collection::vec(-1e9f64..1e9, 0..5),
        hist_samples in prop::collection::vec(0.0f64..100.0, 0..50),
    ) {
        let registry = Registry::new();
        for (i, &v) in counter_vals.iter().enumerate() {
            registry
                .counter_with("events_total", "Things that happened.", &[("kind", &format!("k{i}"))])
                .add(v);
        }
        for (i, &v) in gauge_vals.iter().enumerate() {
            registry
                .gauge_with("level", "", &[("kind", &format!("k{i}"))])
                .set(v);
        }
        let h = registry.histogram("dur_seconds", "", &[0.1, 1.0, 10.0]);
        for &s in &hist_samples {
            h.observe(s);
        }
        let text = registry.encode();
        prop_assert!(validate_text(&text).is_ok(), "invalid encoding:\n{}", text);
    }

    #[test]
    fn tracer_never_exceeds_per_flow_cap(
        cap in 1usize..50,
        n in 0usize..200,
    ) {
        let tracer = FlowTracer::with_limits(0.0, cap);
        let flow = tracer.open_flow("a-b");
        for i in 0..n {
            tracer.record(flow, FlowSample {
                t_s: i as f64 * 0.001,
                retx_count: i as u64, // always "interesting"
                ..FlowSample::default()
            });
        }
        prop_assert!(tracer.sample_count() <= cap);
        prop_assert_eq!(tracer.sample_count() + tracer.dropped() as usize, n);
    }
}
