//! The [`MetricsSink`] hook trait and its standard registry-backed
//! implementation.
//!
//! Instrumented code (the TCP socket, qdiscs, the harness) never
//! talks to a [`crate::Registry`] directly — it calls the sink with a
//! metric *name* and lets the sink decide where the value goes. Every
//! trait method has a no-op default, and callers hold
//! `Option<MetricsHandle>` defaulting to `None`, so the disabled path
//! is a single branch. Sinks must only observe: a sink that schedules
//! timers or sends packets would perturb the simulation's event order
//! and break the byte-identical-when-off guarantee's enabled-mode
//! cousin (enabled runs produce the same simulation, plus metrics).

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use crate::registry::{Counter, Gauge, Histogram, Registry};
use crate::trace::{FlowSample, FlowTracer};
use crate::{BACKLOG_BUCKETS_PKTS, LATENCY_BUCKETS_S};

/// Observer hook for instrumented code. All methods default to no-ops
/// so implementations opt into exactly the signals they want.
pub trait MetricsSink {
    /// Add `delta` to the counter `name`.
    fn counter_add(&self, name: &'static str, delta: u64) {
        let _ = (name, delta);
    }

    /// Set the gauge `name` to `value`.
    fn gauge_set(&self, name: &'static str, value: f64) {
        let _ = (name, value);
    }

    /// Record `value` into the histogram `name`.
    fn observe(&self, name: &'static str, value: f64) {
        let _ = (name, value);
    }

    /// Register a flow for time-series tracing. Returning `None`
    /// (the default) tells the caller to skip `flow_sample` entirely.
    fn flow_open(&self, desc: &str) -> Option<u64> {
        let _ = desc;
        None
    }

    /// Record a time-series sample for a flow from `flow_open`.
    fn flow_sample(&self, flow: u64, sample: &FlowSample) {
        let _ = (flow, sample);
    }
}

/// A cheaply clonable, `Debug`-opaque handle to a shared sink — the
/// type instrumented configs carry as `Option<MetricsHandle>`.
#[derive(Clone)]
pub struct MetricsHandle(Rc<dyn MetricsSink>);

impl MetricsHandle {
    /// Wrap a sink implementation.
    pub fn new(sink: impl MetricsSink + 'static) -> MetricsHandle {
        MetricsHandle(Rc::new(sink))
    }
}

impl std::ops::Deref for MetricsHandle {
    type Target = dyn MetricsSink;

    fn deref(&self) -> &(dyn MetricsSink + 'static) {
        &*self.0
    }
}

impl fmt::Debug for MetricsHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("MetricsHandle")
    }
}

/// The standard sink: binds metric names to [`Registry`] instruments
/// (created lazily on first touch) and forwards flow samples to an
/// optional [`FlowTracer`].
///
/// Histogram buckets are chosen by name convention: `*_seconds` gets
/// the latency ladder, `*_packets` the backlog ladder, everything
/// else a generic powers-of-ten ladder.
pub struct RegistrySink {
    registry: Registry,
    tracer: Option<FlowTracer>,
    counters: Lazy<Counter>,
    gauges: Lazy<Gauge>,
    histograms: Lazy<Histogram>,
}

/// Name → instrument cache for the sink's hot path. Sinks see a
/// handful of distinct `&'static str` names, each usually the same
/// string literal on every call, so a linear scan with a
/// pointer-equality fast path beats hashing the name per event
/// (`transfer_1mb_metrics_enabled` is the regression gate).
struct Lazy<T> {
    entries: RefCell<Vec<(&'static str, T)>>,
}

impl<T> Lazy<T> {
    fn new() -> Lazy<T> {
        Lazy {
            entries: RefCell::new(Vec::new()),
        }
    }

    fn with<R>(&self, name: &'static str, make: impl FnOnce() -> T, f: impl FnOnce(&T) -> R) -> R {
        let mut entries = self.entries.borrow_mut();
        for (n, v) in entries.iter() {
            if std::ptr::eq(*n, name) || *n == name {
                return f(v);
            }
        }
        let v = make();
        let r = f(&v);
        entries.push((name, v));
        r
    }
}

/// Generic bucket ladder for histograms with no unit suffix.
const GENERIC_BUCKETS: [f64; 10] = [1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9];

impl RegistrySink {
    /// A sink writing into `registry`, with flow tracing disabled.
    pub fn new(registry: Registry) -> RegistrySink {
        RegistrySink {
            registry,
            tracer: None,
            counters: Lazy::new(),
            gauges: Lazy::new(),
            histograms: Lazy::new(),
        }
    }

    /// A sink writing into `registry` that also records per-flow
    /// time series into `tracer`.
    pub fn with_tracer(registry: Registry, tracer: FlowTracer) -> RegistrySink {
        RegistrySink {
            tracer: Some(tracer),
            ..RegistrySink::new(registry)
        }
    }

    /// The registry this sink writes into.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }
}

impl MetricsSink for RegistrySink {
    fn counter_add(&self, name: &'static str, delta: u64) {
        self.counters
            .with(name, || self.registry.counter(name, ""), |c| c.add(delta));
    }

    fn gauge_set(&self, name: &'static str, value: f64) {
        self.gauges
            .with(name, || self.registry.gauge(name, ""), |g| g.set(value));
    }

    fn observe(&self, name: &'static str, value: f64) {
        self.histograms.with(
            name,
            || {
                let bounds: &[f64] = if name.ends_with("_seconds") {
                    &LATENCY_BUCKETS_S
                } else if name.ends_with("_packets") {
                    &BACKLOG_BUCKETS_PKTS
                } else {
                    &GENERIC_BUCKETS
                };
                self.registry.histogram(name, "", bounds)
            },
            |h| h.observe(value),
        );
    }

    fn flow_open(&self, desc: &str) -> Option<u64> {
        self.tracer.as_ref().map(|t| t.open_flow(desc))
    }

    fn flow_sample(&self, flow: u64, sample: &FlowSample) {
        if let Some(tracer) = &self.tracer {
            tracer.record(flow, sample.clone());
        }
    }
}

/// Forwards every sink call to each of several sinks, so one
/// instrumented socket can feed e.g. a [`RegistrySink`] and an auditor
/// at once. `flow_open` returns a fanout-local id and remembers each
/// child's own id for it, so children keep their private numbering.
pub struct FanoutSink {
    sinks: Vec<MetricsHandle>,
    /// flow id handed to the caller → each child's id (if it opted in).
    flows: RefCell<Vec<Vec<Option<u64>>>>,
}

impl FanoutSink {
    /// A fanout over `sinks`, in call order.
    pub fn new(sinks: Vec<MetricsHandle>) -> FanoutSink {
        FanoutSink {
            sinks,
            flows: RefCell::new(Vec::new()),
        }
    }
}

impl MetricsSink for FanoutSink {
    fn counter_add(&self, name: &'static str, delta: u64) {
        for s in &self.sinks {
            s.counter_add(name, delta);
        }
    }

    fn gauge_set(&self, name: &'static str, value: f64) {
        for s in &self.sinks {
            s.gauge_set(name, value);
        }
    }

    fn observe(&self, name: &'static str, value: f64) {
        for s in &self.sinks {
            s.observe(name, value);
        }
    }

    fn flow_open(&self, desc: &str) -> Option<u64> {
        let per_child: Vec<Option<u64>> = self.sinks.iter().map(|s| s.flow_open(desc)).collect();
        if per_child.iter().all(Option::is_none) {
            return None;
        }
        let mut flows = self.flows.borrow_mut();
        flows.push(per_child);
        Some((flows.len() - 1) as u64)
    }

    fn flow_sample(&self, flow: u64, sample: &FlowSample) {
        let flows = self.flows.borrow();
        let Some(per_child) = flows.get(flow as usize) else {
            return;
        };
        for (s, id) in self.sinks.iter().zip(per_child.iter()) {
            if let Some(id) = id {
                s.flow_sample(*id, sample);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_sink_creates_instruments_lazily() {
        let registry = Registry::new();
        let sink = RegistrySink::new(registry.clone());
        sink.counter_add("tcp_retransmits_total", 3);
        sink.counter_add("tcp_retransmits_total", 1);
        sink.gauge_set("tcp_cwnd_bytes", 29200.0);
        sink.observe("plt_seconds", 0.4);
        let text = registry.encode();
        assert!(text.contains("tcp_retransmits_total 4"));
        assert!(text.contains("tcp_cwnd_bytes 29200"));
        assert!(text.contains("plt_seconds_bucket{le=\"0.5\"} 1"));
    }

    #[test]
    fn noop_default_sink_ignores_everything() {
        struct Quiet;
        impl MetricsSink for Quiet {}
        let handle = MetricsHandle::new(Quiet);
        handle.counter_add("x_total", 1);
        assert!(handle.flow_open("a-b").is_none());
    }

    #[test]
    fn flow_samples_reach_the_tracer() {
        let tracer = FlowTracer::new();
        let sink = RegistrySink::with_tracer(Registry::new(), tracer.clone());
        let flow = sink.flow_open("a-b").unwrap();
        sink.flow_sample(flow, &FlowSample::default());
        assert_eq!(tracer.sample_count(), 1);
    }

    #[test]
    fn fanout_forwards_and_maps_flow_ids() {
        let registry = Registry::new();
        let tracer = FlowTracer::new();
        // Child 0 declines flows; child 1 traces them. The tracer child
        // is seeded with a flow of its own so its ids diverge from the
        // fanout's.
        let traced = RegistrySink::with_tracer(Registry::new(), tracer.clone());
        tracer.open_flow("pre-existing");
        let fanout = FanoutSink::new(vec![
            MetricsHandle::new(RegistrySink::new(registry.clone())),
            MetricsHandle::new(traced),
        ]);
        fanout.counter_add("x_total", 2);
        assert!(registry.encode().contains("x_total 2"));
        let flow = fanout.flow_open("a-b").unwrap();
        assert_eq!(flow, 0); // fanout-local numbering
        fanout.flow_sample(flow, &FlowSample::default());
        assert_eq!(tracer.sample_count(), 1);
        assert_eq!(tracer.flow_count(), 2);
    }
}
