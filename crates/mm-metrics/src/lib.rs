//! Zero-dependency observability layer for the mahimahi-rs workspace.
//!
//! Three pieces, deliberately decoupled from the simulator so any crate
//! can depend on this one without cycles:
//!
//! - [`Registry`]: a single-threaded registry of counters, gauges and
//!   fixed-bucket histograms with a Prometheus text-format encoder
//!   ([`Registry::encode`]). Instruments are cheap `Rc` handles; the
//!   registry owns the family table so the encoded output is ordered
//!   by registration (deterministic across runs).
//! - [`MetricsSink`]: the hook trait instrumented code calls into. All
//!   methods default to no-ops, and call sites hold an
//!   `Option<Rc<dyn MetricsSink>>` that defaults to `None`, so the
//!   disabled path costs one branch and the simulation's event order
//!   is never perturbed (sinks observe, they never schedule).
//!   [`RegistrySink`] is the standard implementation binding metric
//!   names to registry instruments and flow samples to a tracer.
//! - [`FlowTracer`]: per-flow time-series capture ([`FlowSample`]:
//!   t, cwnd, ssthresh, srtt, pacing rate, bytes in flight, delivered,
//!   retransmit count, state) with interval-based downsampling and a
//!   compact JSONL dump for offline anomaly debugging.
//!
//! Everything here uses plain `std` — no vendored stubs required.

mod registry;
mod sink;
mod trace;

pub use registry::{validate_text, Counter, Gauge, Histogram, Registry};
pub use sink::{FanoutSink, MetricsHandle, MetricsSink, RegistrySink};
pub use trace::{FlowSample, FlowTracer};

/// Default histogram buckets for latency-shaped metrics, in seconds.
/// Mirrors the classic Prometheus duration ladder, extended to cover
/// multi-second page loads.
pub const LATENCY_BUCKETS_S: [f64; 12] = [
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
];

/// Default histogram buckets for queue-backlog-shaped metrics, in
/// packets (powers of two up to a deep 1024-packet buffer).
pub const BACKLOG_BUCKETS_PKTS: [f64; 11] = [
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
];
