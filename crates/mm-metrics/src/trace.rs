//! Per-flow time-series capture with a compact JSONL dump.
//!
//! A [`FlowTracer`] is handed (via the sink hook) to instrumented
//! sockets; each socket opens a flow once and records [`FlowSample`]s
//! at congestion-relevant events. The tracer downsamples on a minimum
//! inter-sample interval — except when the sample is "interesting"
//! (state change or new retransmission), which is always kept — and
//! caps per-flow storage so a pathological flow cannot consume
//! unbounded memory during a soak.

use std::cell::RefCell;
use std::rc::Rc;

/// One point in a flow's time series. Times are in seconds of
/// simulated time; byte quantities are raw bytes; rates are bytes/sec.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FlowSample {
    /// Simulated time of the sample, seconds.
    pub t_s: f64,
    /// Congestion window, bytes.
    pub cwnd: u64,
    /// Slow-start threshold, bytes (`u64::MAX` until first reduction).
    pub ssthresh: u64,
    /// Smoothed RTT, seconds (0 until the first measurement).
    pub srtt_s: f64,
    /// Pacing rate, bytes/sec (0 when pacing is off).
    pub pacing_rate: f64,
    /// Bytes currently in flight.
    pub bytes_in_flight: u64,
    /// Cumulative bytes delivered (rate-estimator view).
    pub delivered: u64,
    /// Cumulative retransmitted segments.
    pub retx_count: u64,
    /// Coarse connection state, e.g. `"open"`, `"recovery"`, `"loss"`.
    pub state: &'static str,
    /// Which socket event produced this sample (`"tx"` for new-data
    /// transmits, `"sack"` for SACK-carrying acks, `""` otherwise).
    /// Audit-only: not serialized to JSONL.
    pub event: &'static str,
    /// Highest sequence sent (audit-only).
    pub snd_nxt: u64,
    /// Lowest unacknowledged sequence (audit-only).
    pub snd_una: u64,
    /// Next sequence expected by the receiver side (audit-only).
    pub rcv_nxt: u64,
    /// Peer-advertised receive window, bytes (audit-only).
    pub rwnd: u64,
    /// Sender MSS, bytes (audit-only).
    pub mss: u64,
    /// Incrementally maintained SACK pipe estimate (audit-only).
    pub pipe: u64,
    /// Definitional pipe recomputed by walking the retransmission
    /// queue (audit-only; equals `pipe` on a correct implementation).
    pub pipe_walk: u64,
    /// RACK clock: latest delivered (sent-time, end-seq), audit-only.
    pub rack_clock_ns: u64,
    /// End sequence paired with `rack_clock_ns` (audit-only).
    pub rack_clock_end: u64,
    /// High-water (sent-time, end-seq) over all RACK loss marks so
    /// far; `(0, 0)` when nothing has been marked (audit-only).
    pub rack_mark_ns: u64,
    /// End sequence paired with `rack_mark_ns` (audit-only).
    pub rack_mark_end: u64,
    /// Maximum bytes ever released ahead of the pacer's token clock
    /// (audit-only; 0 on a conforming sender).
    pub pacing_excess: u64,
    /// SACK blocks carried on this ack, `(start, end)` pairs in the
    /// receiver's most-recent-first order (audit-only).
    pub sack_blocks: Vec<(u64, u64)>,
}

struct FlowRecord {
    desc: String,
    samples: Vec<FlowSample>,
    /// Most recent sample rejected by downsampling or the cap. Emitted
    /// after the kept samples at serialization time so a flow's final
    /// cwnd/srtt are never lost, however dense its tail was.
    pending: Option<FlowSample>,
}

struct TracerInner {
    flows: Vec<FlowRecord>,
    min_interval_s: f64,
    max_samples_per_flow: usize,
    dropped: u64,
}

/// Records per-flow [`FlowSample`] time series. Cloning shares the
/// underlying store.
#[derive(Clone)]
pub struct FlowTracer {
    inner: Rc<RefCell<TracerInner>>,
}

impl Default for FlowTracer {
    fn default() -> Self {
        FlowTracer::new()
    }
}

impl FlowTracer {
    /// A tracer with the default limits: at most one routine sample
    /// per flow per simulated millisecond, 4096 samples per flow.
    pub fn new() -> FlowTracer {
        FlowTracer::with_limits(0.001, 4096)
    }

    /// A tracer with explicit downsampling limits.
    pub fn with_limits(min_interval_s: f64, max_samples_per_flow: usize) -> FlowTracer {
        FlowTracer {
            inner: Rc::new(RefCell::new(TracerInner {
                flows: Vec::new(),
                min_interval_s,
                max_samples_per_flow,
                dropped: 0,
            })),
        }
    }

    /// Register a flow (e.g. `"100.64.0.2:3300-10.0.0.1:80"`) and get
    /// its id for subsequent [`FlowTracer::record`] calls.
    pub fn open_flow(&self, desc: &str) -> u64 {
        let mut inner = self.inner.borrow_mut();
        inner.flows.push(FlowRecord {
            desc: desc.to_string(),
            samples: Vec::new(),
            pending: None,
        });
        (inner.flows.len() - 1) as u64
    }

    /// Record a sample for `flow`. Routine samples closer than the
    /// minimum interval to the previous kept sample are dropped;
    /// samples that change `state` or `retx_count` are always kept
    /// (subject to the per-flow cap).
    pub fn record(&self, flow: u64, sample: FlowSample) {
        let mut inner = self.inner.borrow_mut();
        let min_interval = inner.min_interval_s;
        let cap = inner.max_samples_per_flow;
        let Some(record) = inner.flows.get_mut(flow as usize) else {
            return;
        };
        if record.samples.len() >= cap {
            record.pending = Some(sample);
            inner.dropped += 1;
            return;
        }
        if let Some(last) = record.samples.last() {
            let interesting = sample.state != last.state || sample.retx_count != last.retx_count;
            if !interesting && sample.t_s - last.t_s < min_interval {
                record.pending = Some(sample);
                inner.dropped += 1;
                return;
            }
        }
        record.pending = None;
        record.samples.push(sample);
    }

    /// Number of flows opened.
    pub fn flow_count(&self) -> usize {
        self.inner.borrow().flows.len()
    }

    /// Total samples kept across all flows.
    pub fn sample_count(&self) -> usize {
        self.inner
            .borrow()
            .flows
            .iter()
            .map(|f| f.samples.len())
            .sum()
    }

    /// Samples dropped by downsampling or the per-flow cap.
    pub fn dropped(&self) -> u64 {
        self.inner.borrow().dropped
    }

    /// Encode every kept sample as one JSON object per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (id, record) in self.inner.borrow().flows.iter().enumerate() {
            for s in record.samples.iter().chain(record.pending.iter()) {
                out.push_str(&format!(
                    concat!(
                        "{{\"flow\":{},\"desc\":\"{}\",\"t\":{},\"cwnd\":{},",
                        "\"ssthresh\":{},\"srtt\":{},\"pacing_rate\":{},",
                        "\"in_flight\":{},\"delivered\":{},\"retx\":{},\"state\":\"{}\"}}\n"
                    ),
                    id,
                    escape_json(&record.desc),
                    s.t_s,
                    s.cwnd,
                    s.ssthresh,
                    s.srtt_s,
                    s.pacing_rate,
                    s.bytes_in_flight,
                    s.delivered,
                    s.retx_count,
                    escape_json(s.state),
                ));
            }
        }
        out
    }

    /// Drain all flows out of this tracer (used to merge per-world
    /// tracers into a process-wide trace file), returning JSONL.
    pub fn take_jsonl(&self) -> String {
        let out = self.to_jsonl();
        self.inner.borrow_mut().flows.clear();
        out
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t_s: f64, retx: u64, state: &'static str) -> FlowSample {
        FlowSample {
            t_s,
            cwnd: 14600,
            ssthresh: u64::MAX,
            srtt_s: 0.1,
            pacing_rate: 0.0,
            bytes_in_flight: 4380,
            delivered: 0,
            retx_count: retx,
            state,
            ..FlowSample::default()
        }
    }

    #[test]
    fn downsamples_routine_but_keeps_interesting() {
        let tracer = FlowTracer::with_limits(0.01, 100);
        let flow = tracer.open_flow("a-b");
        tracer.record(flow, sample(0.000, 0, "open"));
        tracer.record(flow, sample(0.001, 0, "open")); // too close: dropped
        tracer.record(flow, sample(0.002, 1, "open")); // retx changed: kept
        tracer.record(flow, sample(0.003, 1, "recovery")); // state changed: kept
        tracer.record(flow, sample(0.020, 1, "recovery")); // interval passed: kept
        assert_eq!(tracer.sample_count(), 4);
        assert_eq!(tracer.dropped(), 1);
    }

    #[test]
    fn per_flow_cap_bounds_memory() {
        let tracer = FlowTracer::with_limits(0.0, 3);
        let flow = tracer.open_flow("a-b");
        for i in 0..10 {
            tracer.record(flow, sample(i as f64, 0, "open"));
        }
        assert_eq!(tracer.sample_count(), 3);
        assert_eq!(tracer.dropped(), 7);
    }

    #[test]
    fn final_sample_survives_downsampling() {
        let tracer = FlowTracer::with_limits(0.01, 100);
        let flow = tracer.open_flow("a-b");
        tracer.record(flow, sample(0.000, 0, "open"));
        let mut last = sample(0.001, 0, "open");
        last.cwnd = 99_999; // routine, too close: evicted from `samples`
        tracer.record(flow, last);
        assert_eq!(tracer.sample_count(), 1);
        assert_eq!(tracer.dropped(), 1);
        // ...but the terminal sample still reaches the JSONL dump.
        let jsonl = tracer.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.contains("\"cwnd\":99999"));
        // A kept sample supersedes any pending one: no duplicates.
        let tracer = FlowTracer::with_limits(0.01, 100);
        let flow = tracer.open_flow("a-b");
        tracer.record(flow, sample(0.000, 0, "open"));
        tracer.record(flow, sample(0.001, 0, "open"));
        tracer.record(flow, sample(0.020, 0, "open"));
        assert_eq!(tracer.to_jsonl().lines().count(), 2);
    }

    #[test]
    fn final_sample_survives_per_flow_cap() {
        let tracer = FlowTracer::with_limits(0.0, 3);
        let flow = tracer.open_flow("a-b");
        for i in 0..10 {
            tracer.record(flow, sample(i as f64, 0, "open"));
        }
        assert_eq!(tracer.sample_count(), 3);
        let jsonl = tracer.to_jsonl();
        assert_eq!(jsonl.lines().count(), 4);
        assert!(jsonl.lines().last().unwrap().contains("\"t\":9"));
    }

    #[test]
    fn jsonl_lines_parse_shape() {
        let tracer = FlowTracer::new();
        let flow = tracer.open_flow("100.64.0.2:3300-10.0.0.1:80");
        tracer.record(flow, sample(0.5, 2, "recovery"));
        let jsonl = tracer.to_jsonl();
        let line = jsonl.lines().next().unwrap();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"desc\":\"100.64.0.2:3300-10.0.0.1:80\""));
        assert!(line.contains("\"retx\":2"));
        assert!(line.contains("\"state\":\"recovery\""));
        // Drain empties the store.
        assert!(!tracer.take_jsonl().is_empty());
        assert_eq!(tracer.flow_count(), 0);
    }
}
