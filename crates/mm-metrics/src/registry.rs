//! The instrument registry and Prometheus text-format encoder.
//!
//! Single-threaded by design (the simulator is single-threaded per
//! world): instruments are `Rc` handles into cells owned jointly with
//! the registry. Families are stored in registration order so
//! [`Registry::encode`] output is deterministic — the same run always
//! produces the same scrape text.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// A monotonically increasing counter.
#[derive(Clone, Default)]
pub struct Counter(Rc<Cell<u64>>);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `delta`.
    pub fn add(&self, delta: u64) {
        self.0.set(self.0.get().saturating_add(delta));
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.get()
    }
}

/// A gauge: a value that can go up and down.
#[derive(Clone, Default)]
pub struct Gauge(Rc<Cell<f64>>);

impl Gauge {
    /// Set the gauge to `value`.
    pub fn set(&self, value: f64) {
        self.0.set(value);
    }

    /// Set the gauge to `value` if it exceeds the current value
    /// (high-water-mark semantics).
    pub fn set_max(&self, value: f64) {
        if value > self.0.get() {
            self.0.set(value);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        self.0.get()
    }
}

struct HistogramInner {
    /// Finite bucket upper bounds, strictly ascending. An implicit
    /// `+Inf` bucket always follows.
    bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) observation counts; `counts.len()
    /// == bounds.len() + 1`, the last entry being the `+Inf` bucket.
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

/// A fixed-bucket histogram. Bucket bounds are set at registration and
/// never change; `observe` is a binary search plus two adds.
#[derive(Clone)]
pub struct Histogram(Rc<RefCell<HistogramInner>>);

impl Histogram {
    fn new(bounds: &[f64]) -> Histogram {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram(Rc::new(RefCell::new(HistogramInner {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        })))
    }

    /// Record one observation.
    pub fn observe(&self, value: f64) {
        let mut inner = self.0.borrow_mut();
        let idx = inner.bounds.partition_point(|&b| b < value);
        inner.counts[idx] += 1;
        inner.sum += value;
        inner.count += 1;
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.0.borrow().count
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        self.0.borrow().sum
    }

    /// Per-bucket (non-cumulative) counts, `+Inf` bucket last.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0.borrow().counts.clone()
    }

    /// Finite bucket upper bounds.
    pub fn bounds(&self) -> Vec<f64> {
        self.0.borrow().bounds.clone()
    }
}

enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Series {
    /// Label pairs, in registration order (encoded verbatim).
    labels: Vec<(String, String)>,
    instrument: Instrument,
}

struct Family {
    name: String,
    help: String,
    series: Vec<Series>,
}

impl Family {
    fn kind(&self) -> &'static str {
        match self.series.first().map(|s| &s.instrument) {
            Some(Instrument::Counter(_)) | None => "counter",
            Some(Instrument::Gauge(_)) => "gauge",
            Some(Instrument::Histogram(_)) => "histogram",
        }
    }
}

/// A registry of metric families. Cloning is cheap (shared handle);
/// instruments registered through any clone appear in every clone's
/// `encode` output.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Rc<RefCell<Vec<Family>>>,
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn get_or_insert<F>(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: F,
    ) -> Instrument
    where
        F: FnOnce() -> Instrument,
    {
        debug_assert!(valid_name(name), "invalid metric name {name:?}");
        let mut families = self.inner.borrow_mut();
        let family = match families.iter_mut().position(|f| f.name == name) {
            Some(i) => &mut families[i],
            None => {
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    series: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        if let Some(series) = family.series.iter().find(|s| {
            s.labels.len() == labels.len()
                && s.labels
                    .iter()
                    .zip(labels)
                    .all(|(have, want)| have.0 == want.0 && have.1 == want.1)
        }) {
            return clone_instrument(&series.instrument);
        }
        let instrument = make();
        family.series.push(Series {
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            instrument: clone_instrument(&instrument),
        });
        instrument
    }

    /// Get or create an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Get or create a counter with label pairs. Re-registering the
    /// same `(name, labels)` returns a handle to the same series.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.get_or_insert(name, help, labels, || {
            Instrument::Counter(Counter::default())
        }) {
            Instrument::Counter(c) => c,
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Get or create an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Get or create a gauge with label pairs.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.get_or_insert(name, help, labels, || Instrument::Gauge(Gauge::default())) {
            Instrument::Gauge(g) => g,
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Get or create an unlabeled histogram with the given finite
    /// bucket upper bounds (an implicit `+Inf` bucket is appended).
    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Histogram {
        self.histogram_with(name, help, bounds, &[])
    }

    /// Get or create a histogram with label pairs.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        bounds: &[f64],
        labels: &[(&str, &str)],
    ) -> Histogram {
        match self.get_or_insert(name, help, labels, || {
            Instrument::Histogram(Histogram::new(bounds))
        }) {
            Instrument::Histogram(h) => h,
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Encode every registered family in Prometheus text exposition
    /// format, in registration order.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        for family in self.inner.borrow().iter() {
            if !family.help.is_empty() {
                out.push_str(&format!("# HELP {} {}\n", family.name, family.help));
            }
            out.push_str(&format!("# TYPE {} {}\n", family.name, family.kind()));
            for series in &family.series {
                match &series.instrument {
                    Instrument::Counter(c) => {
                        out.push_str(&family.name);
                        push_labels(&mut out, &series.labels, None);
                        out.push_str(&format!(" {}\n", c.get()));
                    }
                    Instrument::Gauge(g) => {
                        out.push_str(&family.name);
                        push_labels(&mut out, &series.labels, None);
                        out.push_str(&format!(" {}\n", fmt_f64(g.get())));
                    }
                    Instrument::Histogram(h) => {
                        let bounds = h.bounds();
                        let counts = h.bucket_counts();
                        let mut cumulative = 0u64;
                        for (i, count) in counts.iter().enumerate() {
                            cumulative += count;
                            let le = match bounds.get(i) {
                                Some(b) => fmt_f64(*b),
                                None => "+Inf".to_string(),
                            };
                            out.push_str(&format!("{}_bucket", family.name));
                            push_labels(&mut out, &series.labels, Some(&le));
                            out.push_str(&format!(" {cumulative}\n"));
                        }
                        out.push_str(&format!("{}_sum", family.name));
                        push_labels(&mut out, &series.labels, None);
                        out.push_str(&format!(" {}\n", fmt_f64(h.sum())));
                        out.push_str(&format!("{}_count", family.name));
                        push_labels(&mut out, &series.labels, None);
                        out.push_str(&format!(" {}\n", h.count()));
                    }
                }
            }
        }
        out
    }
}

fn clone_instrument(i: &Instrument) -> Instrument {
    match i {
        Instrument::Counter(c) => Instrument::Counter(c.clone()),
        Instrument::Gauge(g) => Instrument::Gauge(g.clone()),
        Instrument::Histogram(h) => Instrument::Histogram(h.clone()),
    }
}

fn push_labels(out: &mut String, labels: &[(String, String)], le: Option<&str>) {
    if labels.is_empty() && le.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("{k}=\"{}\"", escape_label(v)));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str(&format!("le=\"{le}\""));
    }
    out.push('}');
}

fn escape_label(v: &str) -> String {
    let mut s = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => s.push_str("\\\\"),
            '"' => s.push_str("\\\""),
            '\n' => s.push_str("\\n"),
            c => s.push(c),
        }
    }
    s
}

/// Format an `f64` the way Prometheus expects: integral values without
/// a fractional part, everything else via Rust's shortest round-trip.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() && v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Validate a Prometheus text-format exposition: every line must be a
/// comment, blank, or `name[{labels}] value`. Returns the first
/// offending line on failure. This is the check the figsoak smoke arm
/// runs over its own scrape before archiving it.
pub fn validate_text(text: &str) -> Result<(), String> {
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value: {line:?}", lineno + 1))?;
        let name_end = series.find('{').unwrap_or(series.len());
        let name = &series[..name_end];
        if !valid_name(name) {
            return Err(format!("line {}: bad metric name {name:?}", lineno + 1));
        }
        if name_end < series.len() && !series.ends_with('}') {
            return Err(format!(
                "line {}: unterminated labels: {line:?}",
                lineno + 1
            ));
        }
        if value != "+Inf" && value != "-Inf" && value != "NaN" && value.parse::<f64>().is_err() {
            return Err(format!("line {}: bad value {value:?}", lineno + 1));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let registry = Registry::new();
        let c = registry.counter("requests_total", "Requests served.");
        c.inc();
        c.add(2);
        assert_eq!(c.get(), 3);
        let g = registry.gauge("cwnd_bytes", "Current cwnd.");
        g.set(14600.0);
        g.set_max(10.0);
        assert_eq!(g.get(), 14600.0);
        let text = registry.encode();
        assert!(text.contains("# TYPE requests_total counter"));
        assert!(text.contains("requests_total 3"));
        assert!(text.contains("cwnd_bytes 14600"));
        validate_text(&text).unwrap();
    }

    #[test]
    fn labeled_series_are_distinct_and_idempotent() {
        let registry = Registry::new();
        let up = registry.counter_with("drops_total", "", &[("dir", "up")]);
        let down = registry.counter_with("drops_total", "", &[("dir", "down")]);
        up.inc();
        down.add(5);
        // Re-registering returns the same series handle.
        let up2 = registry.counter_with("drops_total", "", &[("dir", "up")]);
        up2.inc();
        assert_eq!(up.get(), 2);
        let text = registry.encode();
        assert!(text.contains("drops_total{dir=\"up\"} 2"));
        assert!(text.contains("drops_total{dir=\"down\"} 5"));
        validate_text(&text).unwrap();
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_encoding() {
        let registry = Registry::new();
        let h = registry.histogram("plt_seconds", "Page load time.", &[0.1, 1.0]);
        h.observe(0.05);
        h.observe(0.5);
        h.observe(0.5);
        h.observe(3.0);
        assert_eq!(h.count(), 4);
        assert_eq!(h.bucket_counts(), vec![1, 2, 1]);
        let text = registry.encode();
        assert!(text.contains("plt_seconds_bucket{le=\"0.1\"} 1"));
        assert!(text.contains("plt_seconds_bucket{le=\"1\"} 3"));
        assert!(text.contains("plt_seconds_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("plt_seconds_count 4"));
        validate_text(&text).unwrap();
    }

    #[test]
    fn boundary_observation_lands_in_its_bucket() {
        let h = Histogram::new(&[1.0, 2.0]);
        // Prometheus buckets are `le` (inclusive upper bounds).
        h.observe(1.0);
        assert_eq!(h.bucket_counts(), vec![1, 0, 0]);
        h.observe(2.0);
        assert_eq!(h.bucket_counts(), vec![1, 1, 0]);
    }

    #[test]
    fn validate_rejects_garbage() {
        assert!(validate_text("ok_metric 1\n").is_ok());
        assert!(validate_text("bad metric name 1 2 3\n").is_err());
        assert!(validate_text("no_value\n").is_err());
        assert!(validate_text("x{dir=\"up\" 1\n").is_err());
    }
}
