//! Summary statistics and empirical CDFs for experiment reporting.
//!
//! Every table and figure in the paper reduces to means, standard
//! deviations, percentiles, or CDF curves over page-load-time samples;
//! this module is the single implementation all experiment binaries share.

use std::fmt;

/// Accumulates samples and answers summary queries.
///
/// Percentiles use the nearest-rank method on the sorted sample, matching
/// how the paper reports "median" and "95th percentile".
#[derive(Debug, Clone, Default)]
pub struct Summary {
    samples: Vec<f64>,
    sorted: bool,
}

impl Summary {
    /// Empty summary.
    pub fn new() -> Self {
        Summary::default()
    }

    /// Build from an iterator of samples.
    pub fn from_samples<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.add(x);
        }
        s
    }

    /// Add one sample. Panics on NaN — a NaN sample means a broken
    /// experiment, and letting it poison quantiles silently is worse.
    pub fn add(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN sample");
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples have been added.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean. Panics if empty.
    pub fn mean(&self) -> f64 {
        assert!(!self.is_empty(), "mean of empty summary");
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Sample standard deviation (n−1 denominator; 0 for a single sample).
    pub fn std_dev(&self) -> f64 {
        let n = self.samples.len();
        assert!(n >= 1, "std_dev of empty summary");
        if n == 1 {
            return 0.0;
        }
        let mean = self.mean();
        let ss: f64 = self.samples.iter().map(|x| (x - mean).powi(2)).sum();
        (ss / (n - 1) as f64).sqrt()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("no NaN by construction"));
            self.sorted = true;
        }
    }

    /// Nearest-rank percentile, `p` in `[0, 100]`. Panics if empty or `p`
    /// out of range.
    pub fn percentile(&mut self, p: f64) -> f64 {
        assert!(!self.is_empty(), "percentile of empty summary");
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        self.ensure_sorted();
        if p == 0.0 {
            return self.samples[0];
        }
        let n = self.samples.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        self.samples[rank.clamp(1, n) - 1]
    }

    /// Linearly interpolated percentile (the R-7 / NumPy default): rank
    /// `p/100 × (n−1)` interpolated between the two closest order
    /// statistics. Smoother than nearest-rank on small samples — a
    /// 64-user fleet's p99 should not snap to the single worst user's
    /// exact value the moment n crosses a rank boundary. Panics if empty
    /// or `p` out of `[0, 100]`.
    pub fn percentile_interpolated(&mut self, p: f64) -> f64 {
        assert!(!self.is_empty(), "percentile of empty summary");
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        self.ensure_sorted();
        let n = self.samples.len();
        let rank = (p / 100.0) * (n - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        self.samples[lo] + (self.samples[hi.min(n - 1)] - self.samples[lo]) * frac
    }

    /// Median (50th percentile, nearest-rank).
    pub fn median(&mut self) -> f64 {
        self.percentile(50.0)
    }

    /// Minimum sample.
    pub fn min(&mut self) -> f64 {
        assert!(!self.is_empty());
        self.ensure_sorted();
        self.samples[0]
    }

    /// Maximum sample.
    pub fn max(&mut self) -> f64 {
        assert!(!self.is_empty());
        self.ensure_sorted();
        *self.samples.last().unwrap()
    }

    /// Coefficient of variation (σ / mean), as used by Table 1's
    /// "standard deviations within 1.6% of their means".
    pub fn cv(&self) -> f64 {
        self.std_dev() / self.mean()
    }

    /// The raw samples, in insertion order if no quantile has been queried
    /// yet, otherwise sorted.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Empirical CDF: `points` (x, F(x)) pairs evenly spaced in rank.
    /// Suitable for plotting Figure 2 / Figure 3 style curves.
    pub fn cdf(&mut self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "need at least 2 CDF points");
        assert!(!self.is_empty());
        self.ensure_sorted();
        let n = self.samples.len();
        (0..points)
            .map(|i| {
                let frac = i as f64 / (points - 1) as f64;
                let idx = ((frac * (n - 1) as f64).round() as usize).min(n - 1);
                (self.samples[idx], (idx + 1) as f64 / n as f64)
            })
            .collect()
    }

    /// Fraction of samples ≤ x.
    pub fn cdf_at(&mut self, x: f64) -> f64 {
        assert!(!self.is_empty());
        self.ensure_sorted();
        let count = self.samples.partition_point(|&s| s <= x);
        count as f64 / self.samples.len() as f64
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "n=0");
        }
        let mut s = self.clone();
        write!(
            f,
            "n={} mean={:.1} sd={:.1} p50={:.1} p95={:.1}",
            s.count(),
            s.mean(),
            s.std_dev(),
            s.percentile(50.0),
            s.percentile(95.0),
        )
    }
}

/// Relative difference `(a - b) / b`, reported as a percentage. Used for the
/// "X% larger than" comparisons throughout the paper.
pub fn percent_diff(a: f64, b: f64) -> f64 {
    assert!(b != 0.0, "percent_diff with zero baseline");
    (a - b) / b * 100.0
}

/// Jain's fairness index over per-flow allocations:
/// `(Σxᵢ)² / (n · Σxᵢ²)`. 1.0 = perfectly equal shares; `1/n` = one flow
/// holds everything; always in `(0, 1]` for positive allocations. The
/// standard fairness statistic for shared-bottleneck experiments.
///
/// Panics on an empty slice, a negative or non-finite allocation, or an
/// all-zero vector — each of those means a broken experiment, not an
/// unfair one.
pub fn jain_fairness(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "fairness of zero flows");
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    for &x in xs {
        assert!(x.is_finite() && x >= 0.0, "bad allocation: {x}");
        sum += x;
        sum_sq += x * x;
    }
    assert!(sum > 0.0, "fairness of all-zero allocations");
    (sum * sum) / (xs.len() as f64 * sum_sq)
}

/// Render an ASCII CDF plot (for experiment binaries' terminal output).
pub fn ascii_cdf_plot(series: &[(&str, Vec<(f64, f64)>)], width: usize, height: usize) -> String {
    assert!(width >= 20 && height >= 5, "plot too small");
    let xmax = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().map(|p| p.0))
        .fold(0.0_f64, f64::max)
        .max(1e-9);
    let mut grid = vec![vec![' '; width]; height];
    let marks = ['*', '+', 'o', 'x', '#'];
    for (si, (_, pts)) in series.iter().enumerate() {
        let mark = marks[si % marks.len()];
        for &(x, y) in pts {
            let col = ((x / xmax) * (width - 1) as f64).round() as usize;
            let row = ((1.0 - y) * (height - 1) as f64).round() as usize;
            grid[row.min(height - 1)][col.min(width - 1)] = mark;
        }
    }
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            "1.00 |"
        } else if i == height - 1 {
            "0.00 |"
        } else {
            "     |"
        };
        out.push_str(label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "     +{}\n      0{:>w$.0}\n",
        "-".repeat(width),
        xmax,
        w = width - 1
    ));
    for (si, (name, _)) in series.iter().enumerate() {
        out.push_str(&format!("      {} {}\n", marks[si % marks.len()], name));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let s = Summary::from_samples([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample std dev with n-1: sqrt(32/7)
        assert!((s.std_dev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn single_sample_std_is_zero() {
        let s = Summary::from_samples([42.0]);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    fn nearest_rank_percentiles() {
        let mut s = Summary::from_samples((1..=100).map(|i| i as f64));
        assert_eq!(s.percentile(50.0), 50.0);
        assert_eq!(s.percentile(95.0), 95.0);
        assert_eq!(s.percentile(100.0), 100.0);
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(1.0), 1.0);
    }

    #[test]
    fn interpolated_percentiles_small_sample() {
        let mut s = Summary::from_samples([1.0, 2.0, 3.0, 4.0]);
        // rank = p/100 × 3: p50 → 1.5 → 2.5; p95 → 2.85 → 3.85;
        // p99 → 2.97 → 3.97.
        assert!((s.percentile_interpolated(50.0) - 2.5).abs() < 1e-12);
        assert!((s.percentile_interpolated(95.0) - 3.85).abs() < 1e-12);
        assert!((s.percentile_interpolated(99.0) - 3.97).abs() < 1e-12);
        assert_eq!(s.percentile_interpolated(0.0), 1.0);
        assert_eq!(s.percentile_interpolated(100.0), 4.0);
    }

    #[test]
    fn interpolated_percentiles_large_sample() {
        let mut s = Summary::from_samples((1..=100).map(|i| i as f64));
        // rank = p/100 × 99 over samples 1..=100: value = 1 + rank.
        assert!((s.percentile_interpolated(50.0) - 50.5).abs() < 1e-12);
        assert!((s.percentile_interpolated(95.0) - 95.05).abs() < 1e-12);
        assert!((s.percentile_interpolated(99.0) - 99.01).abs() < 1e-12);
    }

    #[test]
    fn interpolated_percentile_single_sample() {
        let mut s = Summary::from_samples([7.0]);
        assert_eq!(s.percentile_interpolated(50.0), 7.0);
        assert_eq!(s.percentile_interpolated(99.0), 7.0);
    }

    #[test]
    fn jain_single_flow_is_one() {
        assert_eq!(jain_fairness(&[123.4]), 1.0);
    }

    #[test]
    fn jain_equal_split_is_one() {
        let v = vec![5.5; 64];
        assert!((jain_fairness(&v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jain_hand_computed_values() {
        // (1+2+3)² / (3 × (1+4+9)) = 36/42.
        assert!((jain_fairness(&[1.0, 2.0, 3.0]) - 36.0 / 42.0).abs() < 1e-12);
        // (4+1+1+1+1)² / (5 × 20) = 64/100.
        assert!((jain_fairness(&[4.0, 1.0, 1.0, 1.0, 1.0]) - 0.64).abs() < 1e-12);
        // One flow starves: index collapses toward 1/n.
        assert!((jain_fairness(&[1.0, 0.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "fairness of zero flows")]
    fn jain_empty_rejected() {
        jain_fairness(&[]);
    }

    #[test]
    #[should_panic(expected = "all-zero")]
    fn jain_all_zero_rejected() {
        jain_fairness(&[0.0, 0.0]);
    }

    #[test]
    fn median_odd_count() {
        let mut s = Summary::from_samples([5.0, 1.0, 3.0]);
        assert_eq!(s.median(), 3.0);
    }

    #[test]
    fn insertion_after_query_resorts() {
        let mut s = Summary::from_samples([3.0, 1.0]);
        assert_eq!(s.min(), 1.0);
        s.add(0.5);
        assert_eq!(s.min(), 0.5);
        assert_eq!(s.max(), 3.0);
    }

    #[test]
    fn cdf_monotone_and_bounded() {
        let mut s = Summary::from_samples((0..500).map(|i| (i as f64).sqrt()));
        let cdf = s.cdf(50);
        assert_eq!(cdf.len(), 50);
        for w in cdf.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_at_values() {
        let mut s = Summary::from_samples([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.cdf_at(0.0), 0.0);
        assert_eq!(s.cdf_at(2.0), 0.5);
        assert_eq!(s.cdf_at(10.0), 1.0);
    }

    #[test]
    fn percent_diff_signs() {
        assert!((percent_diff(110.0, 100.0) - 10.0).abs() < 1e-12);
        assert!((percent_diff(90.0, 100.0) + 10.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let mut s = Summary::new();
        s.add(f64::NAN);
    }

    #[test]
    fn ascii_plot_renders() {
        let mut s = Summary::from_samples((1..=100).map(|i| i as f64));
        let cdf = s.cdf(30);
        let plot = ascii_cdf_plot(&[("demo", cdf)], 60, 10);
        assert!(plot.contains("demo"));
        assert!(plot.lines().count() > 10);
    }
}
