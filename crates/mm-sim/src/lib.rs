//! # mm-sim — deterministic discrete-event simulation engine
//!
//! The substrate every other `mahimahi-rs` crate builds on: a single-threaded
//! event loop with integer-nanosecond virtual time ([`Simulator`]),
//! cancellable timers ([`Timer`]), named deterministic RNG streams
//! ([`RngStream`]), the sampling distributions the workload models need
//! ([`dist`]), and the summary statistics the experiments report ([`stats`]).
//!
//! Design rules (see DESIGN.md §5):
//! * **Bit-identical runs.** Integer time, tie-breaking by insertion order,
//!   and label-forked RNG streams make a run a pure function of its seed.
//! * **Single-threaded.** Actor state lives in `Rc<RefCell<_>>` captured by
//!   event closures; there is no cross-thread shared state to race on.

pub mod dist;
pub mod engine;
pub mod rng;
pub mod stats;
pub mod time;
pub mod timer;

pub use engine::{EngineProfile, EventFn, RunResult, Simulator, UNTAGGED_EVENT};
pub use rng::RngStream;
pub use stats::{jain_fairness, Summary};
pub use time::{SimDuration, Timestamp};
pub use timer::{PeriodicTimer, Timer, TimerMux, TIMER_EVENT, TIMER_MUX_EVENT};
