//! Cancellable timers on top of the event engine.
//!
//! The raw engine only supports fire-and-forget closures. Protocol code (TCP
//! retransmission, delayed ACK, CoDel's interval timer...) needs timers that
//! can be cancelled or rearmed. A [`Timer`] wraps a generation counter: each
//! `arm()` bumps the generation and the scheduled closure only fires if its
//! generation is still current.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::engine::{EventFn, Simulator};
use crate::time::{SimDuration, Timestamp};

/// A cancellable, rearmable one-shot timer.
///
/// Cloning a `Timer` yields a handle to the same underlying timer.
///
/// # Example
/// ```
/// use mm_sim::{Simulator, SimDuration, Timer};
/// use std::rc::Rc;
/// use std::cell::Cell;
///
/// let mut sim = Simulator::new();
/// let fired = Rc::new(Cell::new(false));
/// let timer = Timer::new();
/// let f = fired.clone();
/// timer.arm(&mut sim, SimDuration::from_millis(10), move |_| f.set(true));
/// timer.cancel();
/// sim.run();
/// assert!(!fired.get());
/// ```
#[derive(Clone)]
pub struct Timer {
    generation: Rc<Cell<u64>>,
    deadline: Rc<Cell<Timestamp>>,
    /// When set, this timer registers into a shared [`TimerMux`] instead of
    /// the simulator's global heap; cancellation then physically removes the
    /// pending entry rather than leaving a dead closure behind.
    mux: Option<Rc<MuxInner>>,
    /// The mux map key of the currently pending entry, if any.
    mux_key: Rc<Cell<Option<(Timestamp, u64)>>>,
    /// Dispatch tag for the event-loop profiler (doubles as the metric
    /// name the firing count exports under).
    tag: &'static str,
}

impl Default for Timer {
    fn default() -> Self {
        Timer::new()
    }
}

/// Default dispatch tag of [`Timer`] firings.
pub const TIMER_EVENT: &str = "sim_events_timer_total";

/// Dispatch tag of the shared [`TimerMux`] dispatcher slot.
pub const TIMER_MUX_EVENT: &str = "sim_events_timer_mux_total";

impl Timer {
    /// Create an unarmed timer.
    pub fn new() -> Self {
        Timer::tagged(TIMER_EVENT)
    }

    /// Create an unarmed timer whose firings are dispatched under `tag`
    /// in the event-loop profiler (see
    /// [`Simulator::schedule_at_tagged`]).
    pub fn tagged(tag: &'static str) -> Self {
        Timer {
            generation: Rc::new(Cell::new(0)),
            deadline: Rc::new(Cell::new(Timestamp::NEVER)),
            mux: None,
            mux_key: Rc::new(Cell::new(None)),
            tag,
        }
    }

    /// Create an unarmed timer whose firings route through `mux`.
    pub fn in_mux(mux: &TimerMux) -> Self {
        Timer {
            mux: Some(mux.inner.clone()),
            ..Timer::new()
        }
    }

    /// Arm (or rearm) the timer to fire `delay` from now. Any previously
    /// armed firing is superseded.
    pub fn arm(
        &self,
        sim: &mut Simulator,
        delay: SimDuration,
        f: impl FnOnce(&mut Simulator) + 'static,
    ) {
        self.arm_at(sim, sim.now() + delay, f)
    }

    /// Arm (or rearm) the timer to fire at absolute time `at`.
    pub fn arm_at(
        &self,
        sim: &mut Simulator,
        at: Timestamp,
        f: impl FnOnce(&mut Simulator) + 'static,
    ) {
        let gen = self.generation.get() + 1;
        self.generation.set(gen);
        self.deadline.set(at);
        if let Some(mux) = &self.mux {
            if let Some(old) = self.mux_key.take() {
                mux.pending.borrow_mut().remove(&old);
            }
            let key = (at, mux.next_entry_seq());
            let deadline = self.deadline.clone();
            let mux_key = self.mux_key.clone();
            mux.pending.borrow_mut().insert(
                key,
                Box::new(move |sim| {
                    mux_key.set(None);
                    deadline.set(Timestamp::NEVER);
                    f(sim);
                }),
            );
            self.mux_key.set(Some(key));
            mux.reschedule(sim);
            return;
        }
        let generation = self.generation.clone();
        let deadline = self.deadline.clone();
        sim.schedule_at_tagged(self.tag, at, move |sim| {
            if generation.get() == gen {
                deadline.set(Timestamp::NEVER);
                f(sim);
            }
        });
    }

    /// Cancel any pending firing. Idempotent.
    pub fn cancel(&self) {
        self.generation.set(self.generation.get() + 1);
        self.deadline.set(Timestamp::NEVER);
        if let (Some(mux), Some(key)) = (&self.mux, self.mux_key.take()) {
            mux.pending.borrow_mut().remove(&key);
        }
    }

    /// True if the timer is armed and has not yet fired or been cancelled.
    pub fn is_armed(&self) -> bool {
        self.deadline.get() != Timestamp::NEVER
    }

    /// The instant the timer will fire, or `Timestamp::NEVER` if unarmed.
    pub fn deadline(&self) -> Timestamp {
        self.deadline.get()
    }
}

/// A shared timer multiplexer: many [`Timer`]s created via
/// [`Timer::in_mux`] funnel through ONE dispatcher slot in the simulator's
/// global heap instead of each `arm()` pushing its own closure.
///
/// Two wins at population scale (thousands of sockets, five timers each):
/// the global heap holds at most one entry per mux regardless of how many
/// timers are armed, and cancellation/rearm *removes* the pending entry
/// from the mux's map — no dead-generation closures accumulate for the
/// engine to grind through.
///
/// Ordering: entries at the same instant fire in arm order (a per-mux
/// sequence number mirrors the engine's insertion-order tie-break).
/// Note that relative ordering *between* mux-backed timers and other
/// same-instant events differs from the global-heap path — all firings
/// due at `t` run back-to-back when the dispatcher pops — so worlds that
/// must stay byte-identical to pre-mux baselines leave the mux off.
///
/// Cloning yields another handle to the same mux.
#[derive(Clone, Default)]
pub struct TimerMux {
    inner: Rc<MuxInner>,
}

struct MuxInner {
    pending: RefCell<BTreeMap<(Timestamp, u64), EventFn>>,
    next_seq: Cell<u64>,
    dispatcher: Timer,
}

impl Default for MuxInner {
    fn default() -> Self {
        MuxInner {
            pending: RefCell::new(BTreeMap::new()),
            next_seq: Cell::new(0),
            dispatcher: Timer::tagged(TIMER_MUX_EVENT),
        }
    }
}

impl TimerMux {
    /// Create an empty mux.
    pub fn new() -> Self {
        TimerMux::default()
    }

    /// Create an unarmed timer backed by this mux (alias for
    /// [`Timer::in_mux`]).
    pub fn timer(&self) -> Timer {
        Timer::in_mux(self)
    }

    /// Number of pending (armed, not yet fired) entries.
    pub fn pending_count(&self) -> usize {
        self.inner.pending.borrow().len()
    }
}

impl MuxInner {
    fn next_entry_seq(&self) -> u64 {
        let seq = self.next_seq.get();
        self.next_seq.set(seq + 1);
        seq
    }

    /// Keep the dispatcher armed at the earliest pending deadline (or
    /// unarmed when the map is empty).
    fn reschedule(self: &Rc<Self>, sim: &mut Simulator) {
        let first = self.pending.borrow().keys().next().copied();
        match first {
            None => self.dispatcher.cancel(),
            Some((at, _)) => {
                if self.dispatcher.deadline() != at {
                    let mux = self.clone();
                    self.dispatcher.arm_at(sim, at, move |sim| mux.fire(sim));
                }
            }
        }
    }

    /// Run every entry due at the current instant, one at a time so a
    /// firing may arm further timers (including into this mux) safely.
    fn fire(self: Rc<Self>, sim: &mut Simulator) {
        loop {
            let due = {
                let mut pending = self.pending.borrow_mut();
                match pending.keys().next().copied() {
                    Some(key) if key.0 <= sim.now() => pending.remove(&key),
                    _ => None,
                }
            };
            match due {
                Some(f) => f(sim),
                None => break,
            }
        }
        self.reschedule(sim);
    }
}

/// A repeating timer that invokes a callback at a fixed period until
/// cancelled. Used for polling processes (e.g. link pacing diagnostics).
pub struct PeriodicTimer {
    inner: Timer,
}

impl PeriodicTimer {
    /// Start a periodic timer with the given period. The callback returns
    /// `true` to keep ticking, `false` to stop.
    pub fn start(
        sim: &mut Simulator,
        period: SimDuration,
        mut f: impl FnMut(&mut Simulator) -> bool + 'static,
    ) -> Self {
        assert!(!period.is_zero(), "periodic timer period must be non-zero");
        let inner = Timer::new();
        let handle = inner.clone();
        fn tick(
            sim: &mut Simulator,
            timer: Timer,
            period: SimDuration,
            mut f: impl FnMut(&mut Simulator) -> bool + 'static,
        ) {
            let t2 = timer.clone();
            timer.arm(sim, period, move |sim| {
                if f(sim) {
                    tick(sim, t2, period, f);
                }
            });
        }
        tick(sim, handle, period, move |sim| f(sim));
        PeriodicTimer { inner }
    }

    /// Stop ticking.
    pub fn cancel(&self) {
        self.inner.cancel();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    #[test]
    fn timer_fires_once() {
        let mut sim = Simulator::new();
        let count = Rc::new(Cell::new(0));
        let t = Timer::new();
        let c = count.clone();
        t.arm(&mut sim, SimDuration::from_millis(5), move |_| {
            c.set(c.get() + 1)
        });
        assert!(t.is_armed());
        sim.run();
        assert_eq!(count.get(), 1);
        assert!(!t.is_armed());
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut sim = Simulator::new();
        let fired = Rc::new(Cell::new(false));
        let t = Timer::new();
        let f = fired.clone();
        t.arm(&mut sim, SimDuration::from_millis(5), move |_| f.set(true));
        t.cancel();
        assert!(!t.is_armed());
        sim.run();
        assert!(!fired.get());
    }

    #[test]
    fn rearm_supersedes_previous() {
        let mut sim = Simulator::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        let t = Timer::new();
        let l1 = log.clone();
        t.arm(&mut sim, SimDuration::from_millis(5), move |sim| {
            l1.borrow_mut().push(("old", sim.now().as_millis()))
        });
        let l2 = log.clone();
        t.arm(&mut sim, SimDuration::from_millis(9), move |sim| {
            l2.borrow_mut().push(("new", sim.now().as_millis()))
        });
        assert_eq!(t.deadline(), Timestamp::from_millis(9));
        sim.run();
        assert_eq!(*log.borrow(), vec![("new", 9)]);
    }

    #[test]
    fn rearm_after_fire_works() {
        let mut sim = Simulator::new();
        let count = Rc::new(Cell::new(0));
        let t = Timer::new();
        let c = count.clone();
        t.arm(&mut sim, SimDuration::from_millis(1), move |_| {
            c.set(c.get() + 1)
        });
        sim.run();
        let c = count.clone();
        t.arm(&mut sim, SimDuration::from_millis(1), move |_| {
            c.set(c.get() + 10)
        });
        sim.run();
        assert_eq!(count.get(), 11);
    }

    #[test]
    fn periodic_ticks_until_false() {
        let mut sim = Simulator::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        let l = log.clone();
        let _p = PeriodicTimer::start(&mut sim, SimDuration::from_millis(10), move |sim| {
            l.borrow_mut().push(sim.now().as_millis());
            sim.now().as_millis() < 30
        });
        sim.run();
        assert_eq!(*log.borrow(), vec![10, 20, 30]);
    }

    #[test]
    fn mux_timers_fire_in_time_then_arm_order() {
        let mut sim = Simulator::new();
        let mux = TimerMux::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        let timers: Vec<Timer> = (0..4).map(|_| mux.timer()).collect();
        for (tag, delay_ms) in [(0u64, 7u64), (1, 3), (2, 7), (3, 3)] {
            let l = log.clone();
            timers[tag as usize].arm(&mut sim, SimDuration::from_millis(delay_ms), move |_| {
                l.borrow_mut().push(tag)
            });
        }
        sim.run();
        // Earliest deadline first; same-deadline entries in arm order.
        assert_eq!(*log.borrow(), vec![1, 3, 0, 2]);
    }

    #[test]
    fn mux_shares_one_heap_slot() {
        let mut sim = Simulator::new();
        let mux = TimerMux::new();
        let timers: Vec<Timer> = (0..100).map(|_| mux.timer()).collect();
        for (i, t) in timers.iter().enumerate() {
            t.arm(&mut sim, SimDuration::from_millis(1 + i as u64), |_| {});
        }
        assert_eq!(mux.pending_count(), 100);
        // 100 armed timers, one dispatcher entry in the engine's heap.
        assert_eq!(sim.pending_events(), 1);
        sim.run();
        assert_eq!(mux.pending_count(), 0);
    }

    #[test]
    fn mux_cancel_removes_entry() {
        let mut sim = Simulator::new();
        let mux = TimerMux::new();
        let fired = Rc::new(Cell::new(false));
        let t = mux.timer();
        let f = fired.clone();
        t.arm(&mut sim, SimDuration::from_millis(5), move |_| f.set(true));
        assert_eq!(mux.pending_count(), 1);
        t.cancel();
        // Physically removed — not a dead generation left to grind through.
        assert_eq!(mux.pending_count(), 0);
        assert!(!t.is_armed());
        sim.run();
        assert!(!fired.get());
    }

    #[test]
    fn mux_rearm_supersedes_previous() {
        let mut sim = Simulator::new();
        let mux = TimerMux::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        let t = mux.timer();
        let l1 = log.clone();
        t.arm(&mut sim, SimDuration::from_millis(5), move |sim| {
            l1.borrow_mut().push(("old", sim.now().as_millis()))
        });
        let l2 = log.clone();
        t.arm(&mut sim, SimDuration::from_millis(9), move |sim| {
            l2.borrow_mut().push(("new", sim.now().as_millis()))
        });
        assert_eq!(mux.pending_count(), 1);
        assert_eq!(t.deadline(), Timestamp::from_millis(9));
        sim.run();
        assert_eq!(*log.borrow(), vec![("new", 9)]);
    }

    #[test]
    fn mux_firing_can_rearm_itself() {
        let mut sim = Simulator::new();
        let mux = TimerMux::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        let t = mux.timer();
        let t2 = t.clone();
        let l = log.clone();
        t.arm(&mut sim, SimDuration::from_millis(10), move |sim| {
            l.borrow_mut().push(sim.now().as_millis());
            let l2 = l.clone();
            t2.arm(sim, SimDuration::from_millis(10), move |sim| {
                l2.borrow_mut().push(sim.now().as_millis());
            });
        });
        sim.run();
        assert_eq!(*log.borrow(), vec![10, 20]);
    }

    #[test]
    fn mux_and_plain_timers_coexist() {
        let mut sim = Simulator::new();
        let mux = TimerMux::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        let muxed = mux.timer();
        let plain = Timer::new();
        let l1 = log.clone();
        muxed.arm(&mut sim, SimDuration::from_millis(4), move |_| {
            l1.borrow_mut().push("muxed")
        });
        let l2 = log.clone();
        plain.arm(&mut sim, SimDuration::from_millis(2), move |_| {
            l2.borrow_mut().push("plain")
        });
        sim.run();
        assert_eq!(*log.borrow(), vec!["plain", "muxed"]);
    }

    #[test]
    fn periodic_cancel_stops_ticks() {
        let mut sim = Simulator::new();
        let count = Rc::new(Cell::new(0u32));
        let c = count.clone();
        let p = PeriodicTimer::start(&mut sim, SimDuration::from_millis(10), move |_| {
            c.set(c.get() + 1);
            true
        });
        sim.run_until(Timestamp::from_millis(35));
        p.cancel();
        sim.run_until(Timestamp::from_millis(100));
        assert_eq!(count.get(), 3);
    }
}
