//! Cancellable timers on top of the event engine.
//!
//! The raw engine only supports fire-and-forget closures. Protocol code (TCP
//! retransmission, delayed ACK, CoDel's interval timer...) needs timers that
//! can be cancelled or rearmed. A [`Timer`] wraps a generation counter: each
//! `arm()` bumps the generation and the scheduled closure only fires if its
//! generation is still current.

use std::cell::Cell;
use std::rc::Rc;

use crate::engine::Simulator;
use crate::time::{SimDuration, Timestamp};

/// A cancellable, rearmable one-shot timer.
///
/// Cloning a `Timer` yields a handle to the same underlying timer.
///
/// # Example
/// ```
/// use mm_sim::{Simulator, SimDuration, Timer};
/// use std::rc::Rc;
/// use std::cell::Cell;
///
/// let mut sim = Simulator::new();
/// let fired = Rc::new(Cell::new(false));
/// let timer = Timer::new();
/// let f = fired.clone();
/// timer.arm(&mut sim, SimDuration::from_millis(10), move |_| f.set(true));
/// timer.cancel();
/// sim.run();
/// assert!(!fired.get());
/// ```
#[derive(Clone, Default)]
pub struct Timer {
    generation: Rc<Cell<u64>>,
    deadline: Rc<Cell<Timestamp>>,
}

impl Timer {
    /// Create an unarmed timer.
    pub fn new() -> Self {
        Timer {
            generation: Rc::new(Cell::new(0)),
            deadline: Rc::new(Cell::new(Timestamp::NEVER)),
        }
    }

    /// Arm (or rearm) the timer to fire `delay` from now. Any previously
    /// armed firing is superseded.
    pub fn arm(
        &self,
        sim: &mut Simulator,
        delay: SimDuration,
        f: impl FnOnce(&mut Simulator) + 'static,
    ) {
        self.arm_at(sim, sim.now() + delay, f)
    }

    /// Arm (or rearm) the timer to fire at absolute time `at`.
    pub fn arm_at(
        &self,
        sim: &mut Simulator,
        at: Timestamp,
        f: impl FnOnce(&mut Simulator) + 'static,
    ) {
        let gen = self.generation.get() + 1;
        self.generation.set(gen);
        self.deadline.set(at);
        let generation = self.generation.clone();
        let deadline = self.deadline.clone();
        sim.schedule_at(at, move |sim| {
            if generation.get() == gen {
                deadline.set(Timestamp::NEVER);
                f(sim);
            }
        });
    }

    /// Cancel any pending firing. Idempotent.
    pub fn cancel(&self) {
        self.generation.set(self.generation.get() + 1);
        self.deadline.set(Timestamp::NEVER);
    }

    /// True if the timer is armed and has not yet fired or been cancelled.
    pub fn is_armed(&self) -> bool {
        self.deadline.get() != Timestamp::NEVER
    }

    /// The instant the timer will fire, or `Timestamp::NEVER` if unarmed.
    pub fn deadline(&self) -> Timestamp {
        self.deadline.get()
    }
}

/// A repeating timer that invokes a callback at a fixed period until
/// cancelled. Used for polling processes (e.g. link pacing diagnostics).
pub struct PeriodicTimer {
    inner: Timer,
}

impl PeriodicTimer {
    /// Start a periodic timer with the given period. The callback returns
    /// `true` to keep ticking, `false` to stop.
    pub fn start(
        sim: &mut Simulator,
        period: SimDuration,
        mut f: impl FnMut(&mut Simulator) -> bool + 'static,
    ) -> Self {
        assert!(!period.is_zero(), "periodic timer period must be non-zero");
        let inner = Timer::new();
        let handle = inner.clone();
        fn tick(
            sim: &mut Simulator,
            timer: Timer,
            period: SimDuration,
            mut f: impl FnMut(&mut Simulator) -> bool + 'static,
        ) {
            let t2 = timer.clone();
            timer.arm(sim, period, move |sim| {
                if f(sim) {
                    tick(sim, t2, period, f);
                }
            });
        }
        tick(sim, handle, period, move |sim| f(sim));
        PeriodicTimer { inner }
    }

    /// Stop ticking.
    pub fn cancel(&self) {
        self.inner.cancel();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    #[test]
    fn timer_fires_once() {
        let mut sim = Simulator::new();
        let count = Rc::new(Cell::new(0));
        let t = Timer::new();
        let c = count.clone();
        t.arm(&mut sim, SimDuration::from_millis(5), move |_| {
            c.set(c.get() + 1)
        });
        assert!(t.is_armed());
        sim.run();
        assert_eq!(count.get(), 1);
        assert!(!t.is_armed());
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut sim = Simulator::new();
        let fired = Rc::new(Cell::new(false));
        let t = Timer::new();
        let f = fired.clone();
        t.arm(&mut sim, SimDuration::from_millis(5), move |_| f.set(true));
        t.cancel();
        assert!(!t.is_armed());
        sim.run();
        assert!(!fired.get());
    }

    #[test]
    fn rearm_supersedes_previous() {
        let mut sim = Simulator::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        let t = Timer::new();
        let l1 = log.clone();
        t.arm(&mut sim, SimDuration::from_millis(5), move |sim| {
            l1.borrow_mut().push(("old", sim.now().as_millis()))
        });
        let l2 = log.clone();
        t.arm(&mut sim, SimDuration::from_millis(9), move |sim| {
            l2.borrow_mut().push(("new", sim.now().as_millis()))
        });
        assert_eq!(t.deadline(), Timestamp::from_millis(9));
        sim.run();
        assert_eq!(*log.borrow(), vec![("new", 9)]);
    }

    #[test]
    fn rearm_after_fire_works() {
        let mut sim = Simulator::new();
        let count = Rc::new(Cell::new(0));
        let t = Timer::new();
        let c = count.clone();
        t.arm(&mut sim, SimDuration::from_millis(1), move |_| {
            c.set(c.get() + 1)
        });
        sim.run();
        let c = count.clone();
        t.arm(&mut sim, SimDuration::from_millis(1), move |_| {
            c.set(c.get() + 10)
        });
        sim.run();
        assert_eq!(count.get(), 11);
    }

    #[test]
    fn periodic_ticks_until_false() {
        let mut sim = Simulator::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        let l = log.clone();
        let _p = PeriodicTimer::start(&mut sim, SimDuration::from_millis(10), move |sim| {
            l.borrow_mut().push(sim.now().as_millis());
            sim.now().as_millis() < 30
        });
        sim.run();
        assert_eq!(*log.borrow(), vec![10, 20, 30]);
    }

    #[test]
    fn periodic_cancel_stops_ticks() {
        let mut sim = Simulator::new();
        let count = Rc::new(Cell::new(0u32));
        let c = count.clone();
        let p = PeriodicTimer::start(&mut sim, SimDuration::from_millis(10), move |_| {
            c.set(c.get() + 1);
            true
        });
        sim.run_until(Timestamp::from_millis(35));
        p.cancel();
        sim.run_until(Timestamp::from_millis(100));
        assert_eq!(count.get(), 3);
    }
}
