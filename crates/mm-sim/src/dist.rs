//! Sampling distributions used by the workload and variability models.
//!
//! We implement the handful of distributions the experiments need directly
//! (inverse-transform or Box–Muller) rather than pulling in `rand_distr`,
//! keeping the dependency set to the approved list and the sampling
//! algorithms pinned (stable draws across dependency upgrades).

use crate::rng::RngStream;

/// A sampleable one-dimensional distribution.
pub trait Distribution {
    /// Draw one sample.
    fn sample(&self, rng: &mut RngStream) -> f64;
}

/// Degenerate distribution: always `value`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constant(pub f64);

impl Distribution for Constant {
    fn sample(&self, _rng: &mut RngStream) -> f64 {
        self.0
    }
}

/// Uniform on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Panics if `lo >= hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo < hi, "Uniform: lo {lo} >= hi {hi}");
        Uniform { lo, hi }
    }
}

impl Distribution for Uniform {
    fn sample(&self, rng: &mut RngStream) -> f64 {
        rng.gen_range_f64(self.lo, self.hi)
    }
}

/// Exponential with the given mean (inverse-transform sampling).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Panics if `mean <= 0`.
    pub fn with_mean(mean: f64) -> Self {
        assert!(mean > 0.0, "Exponential mean must be positive: {mean}");
        Exponential { mean }
    }

    /// Construct from rate λ (= 1/mean).
    pub fn with_rate(rate: f64) -> Self {
        assert!(rate > 0.0, "Exponential rate must be positive: {rate}");
        Exponential { mean: 1.0 / rate }
    }
}

impl Distribution for Exponential {
    fn sample(&self, rng: &mut RngStream) -> f64 {
        // u in (0,1]: avoid ln(0).
        let u = 1.0 - rng.next_f64();
        -self.mean * u.ln()
    }
}

/// Normal via Box–Muller. One value per draw (the companion draw is
/// discarded to keep the stream consumption pattern simple and stable).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Panics if `sigma < 0`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "Normal sigma must be non-negative: {sigma}");
        Normal { mu, sigma }
    }

    fn standard(rng: &mut RngStream) -> f64 {
        let u1 = (1.0 - rng.next_f64()).max(f64::MIN_POSITIVE);
        let u2 = rng.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

impl Distribution for Normal {
    fn sample(&self, rng: &mut RngStream) -> f64 {
        self.mu + self.sigma * Normal::standard(rng)
    }
}

/// Log-normal parameterized by the underlying normal's (μ, σ).
///
/// Web object sizes and server think times are classically log-normal;
/// the corpus generator leans on this heavily.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    normal: Normal,
}

impl LogNormal {
    /// From the underlying normal's parameters.
    pub fn new(mu: f64, sigma: f64) -> Self {
        LogNormal {
            normal: Normal::new(mu, sigma),
        }
    }

    /// Construct so the log-normal itself has the given median and the
    /// underlying σ — convenient for "median object is 12 KB"-style
    /// calibration. `median` must be positive.
    pub fn with_median(median: f64, sigma: f64) -> Self {
        assert!(median > 0.0, "LogNormal median must be positive");
        LogNormal::new(median.ln(), sigma)
    }

    /// The distribution's median (= e^μ).
    pub fn median(&self) -> f64 {
        self.normal.mu.exp()
    }
}

impl Distribution for LogNormal {
    fn sample(&self, rng: &mut RngStream) -> f64 {
        self.normal.sample(rng).exp()
    }
}

/// Pareto (type I) with scale `x_min` and shape `alpha`, optionally capped.
///
/// Used for heavy-tailed object-size tails; the cap keeps single synthetic
/// objects from dwarfing a whole page.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    x_min: f64,
    alpha: f64,
    cap: f64,
}

impl Pareto {
    /// Panics unless `x_min > 0` and `alpha > 0`.
    pub fn new(x_min: f64, alpha: f64) -> Self {
        assert!(x_min > 0.0 && alpha > 0.0, "invalid Pareto parameters");
        Pareto {
            x_min,
            alpha,
            cap: f64::INFINITY,
        }
    }

    /// Cap samples at `cap` (rejection-free: clamped).
    pub fn capped(mut self, cap: f64) -> Self {
        assert!(cap >= self.x_min, "Pareto cap below x_min");
        self.cap = cap;
        self
    }
}

impl Distribution for Pareto {
    fn sample(&self, rng: &mut RngStream) -> f64 {
        let u = (1.0 - rng.next_f64()).max(f64::MIN_POSITIVE);
        (self.x_min / u.powf(1.0 / self.alpha)).min(self.cap)
    }
}

/// Discrete distribution over `T` with explicit weights.
#[derive(Debug, Clone)]
pub struct Weighted<T: Clone> {
    items: Vec<(T, f64)>,
    total: f64,
}

impl<T: Clone> Weighted<T> {
    /// Panics if empty or any weight is negative / all weights zero.
    pub fn new(items: Vec<(T, f64)>) -> Self {
        assert!(!items.is_empty(), "Weighted: no items");
        let total: f64 = items
            .iter()
            .map(|(_, w)| {
                assert!(*w >= 0.0, "negative weight");
                *w
            })
            .sum();
        assert!(total > 0.0, "Weighted: all weights zero");
        Weighted { items, total }
    }

    /// Draw one item.
    pub fn sample(&self, rng: &mut RngStream) -> T {
        let mut x = rng.next_f64() * self.total;
        for (item, w) in &self.items {
            if x < *w {
                return item.clone();
            }
            x -= w;
        }
        // Floating-point slack: return the last item.
        self.items.last().unwrap().0.clone()
    }
}

/// Helper: draw from `dist`, clamped to `[lo, hi]`.
pub fn sample_clamped(dist: &dyn Distribution, rng: &mut RngStream, lo: f64, hi: f64) -> f64 {
    dist.sample(rng).clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of(dist: &dyn Distribution, seed: u64, n: usize) -> f64 {
        let mut rng = RngStream::from_seed(seed);
        (0..n).map(|_| dist.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_is_constant() {
        let mut rng = RngStream::from_seed(0);
        let d = Constant(4.25);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 4.25);
        }
    }

    #[test]
    fn exponential_mean_converges() {
        let d = Exponential::with_mean(30.0);
        let m = mean_of(&d, 3, 50_000);
        assert!((m - 30.0).abs() / 30.0 < 0.03, "mean {m}");
    }

    #[test]
    fn exponential_rate_equivalence() {
        let a = Exponential::with_mean(4.0);
        let b = Exponential::with_rate(0.25);
        assert_eq!(mean_of(&a, 9, 1000), mean_of(&b, 9, 1000));
    }

    #[test]
    fn normal_moments() {
        let d = Normal::new(10.0, 2.0);
        let mut rng = RngStream::from_seed(4);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "sd {}", var.sqrt());
    }

    #[test]
    fn lognormal_median() {
        let d = LogNormal::with_median(500.0, 1.0);
        assert!((d.median() - 500.0).abs() < 1e-9);
        let mut rng = RngStream::from_seed(5);
        let mut samples: Vec<f64> = (0..20_001).map(|_| d.sample(&mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = samples[10_000];
        assert!((med - 500.0).abs() / 500.0 < 0.05, "median {med}");
    }

    #[test]
    fn pareto_respects_min_and_cap() {
        let d = Pareto::new(100.0, 1.2).capped(10_000.0);
        let mut rng = RngStream::from_seed(6);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((100.0..=10_000.0).contains(&x), "sample {x}");
        }
    }

    #[test]
    fn weighted_proportions() {
        let d = Weighted::new(vec![("a", 1.0), ("b", 3.0)]);
        let mut rng = RngStream::from_seed(7);
        let n = 40_000;
        let b_count = (0..n).filter(|_| d.sample(&mut rng) == "b").count();
        let frac = b_count as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.02, "frac {frac}");
    }

    #[test]
    #[should_panic]
    fn weighted_rejects_zero_total() {
        let _ = Weighted::new(vec![("a", 0.0)]);
    }

    #[test]
    fn clamped_sampling() {
        let d = Exponential::with_mean(1000.0);
        let mut rng = RngStream::from_seed(8);
        for _ in 0..1000 {
            let x = sample_clamped(&d, &mut rng, 10.0, 50.0);
            assert!((10.0..=50.0).contains(&x));
        }
    }
}
