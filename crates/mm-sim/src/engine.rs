//! The discrete-event engine.
//!
//! A [`Simulator`] owns a priority queue of scheduled events. Each event is a
//! boxed closure that receives `&mut Simulator`, so handlers can schedule
//! further events; actor state lives in `Rc<RefCell<_>>` handles captured by
//! the closures (the simulation is single-threaded by design — determinism is
//! a core requirement).
//!
//! Ties in timestamp are broken by insertion order (a monotonically
//! increasing sequence number), which makes runs bit-identical for a given
//! seed regardless of heap internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, Timestamp};

/// An event handler: a one-shot closure run at its scheduled instant.
pub type EventFn = Box<dyn FnOnce(&mut Simulator)>;

/// The dispatch tag given to events scheduled through the untagged
/// `schedule_*` methods. Tags double as metric names (see
/// [`EngineProfile::export`]), so every tag follows the
/// `sim_events_<component>_total` convention.
pub const UNTAGGED_EVENT: &str = "sim_events_untagged_total";

struct Scheduled {
    at: Timestamp,
    seq: u64,
    tag: &'static str,
    f: EventFn,
}

/// Event-loop profile: per-component dispatch counts (keyed by the tag
/// each component passes to [`Simulator::schedule_at_tagged`]) and the
/// high-water occupancy of the timer heap. Collected only while
/// [`Simulator::enable_profiler`] is on; profiling observes dispatch
/// and never perturbs event order.
#[derive(Debug, Default, Clone)]
pub struct EngineProfile {
    /// Dispatch counts per tag, in first-seen order. A handful of
    /// distinct `&'static str` tags, so a pointer-equality linear scan
    /// beats hashing on the per-event path (same trick as the metrics
    /// sink's instrument cache).
    counts: Vec<(&'static str, u64)>,
    heap_high_water: usize,
}

impl EngineProfile {
    fn bump(&mut self, tag: &'static str) {
        for (t, n) in self.counts.iter_mut() {
            if std::ptr::eq(*t, tag) || *t == tag {
                *n += 1;
                return;
            }
        }
        self.counts.push((tag, 1));
    }

    /// Dispatch counts per tag, in first-seen order.
    pub fn dispatched(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counts.iter().copied()
    }

    /// Dispatch count for one tag (0 if never seen).
    pub fn dispatched_for(&self, tag: &str) -> u64 {
        self.counts
            .iter()
            .find(|(t, _)| *t == tag)
            .map_or(0, |(_, n)| *n)
    }

    /// Most events ever pending in the timer heap at once.
    pub fn heap_high_water(&self) -> usize {
        self.heap_high_water
    }

    /// Export the profile through a metrics sink: one counter per tag
    /// (the tag is the metric name) plus the heap high-water gauge.
    /// Counters accumulate in the sink, so export once per run.
    pub fn export(&self, sink: &dyn mm_metrics::MetricsSink) {
        for (tag, n) in &self.counts {
            sink.counter_add(tag, *n);
        }
        sink.gauge_set("sim_heap_high_water_events", self.heap_high_water as f64);
    }
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then
        // lowest-sequence) event pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Why [`Simulator::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunResult {
    /// The event queue drained completely.
    QueueEmpty,
    /// The configured horizon was reached with events still pending.
    HorizonReached,
    /// The event-count limit was hit (runaway-loop guard).
    EventLimit,
    /// A handler requested an early stop via [`Simulator::request_stop`].
    Stopped,
}

/// Deterministic single-threaded discrete-event simulator.
///
/// # Example
/// ```
/// use mm_sim::{Simulator, SimDuration};
/// use std::rc::Rc;
/// use std::cell::RefCell;
///
/// let mut sim = Simulator::new();
/// let hits = Rc::new(RefCell::new(Vec::new()));
/// let h = hits.clone();
/// sim.schedule_in(SimDuration::from_millis(5), move |sim| {
///     h.borrow_mut().push(sim.now().as_millis());
/// });
/// sim.run();
/// assert_eq!(*hits.borrow(), vec![5]);
/// ```
pub struct Simulator {
    now: Timestamp,
    queue: BinaryHeap<Scheduled>,
    next_seq: u64,
    events_executed: u64,
    event_limit: u64,
    stop_requested: bool,
    profile: Option<Box<EngineProfile>>,
}

impl Default for Simulator {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulator {
    /// A generous default guard against runaway event loops.
    pub const DEFAULT_EVENT_LIMIT: u64 = 2_000_000_000;

    /// Create a simulator at t = 0 with an empty queue.
    pub fn new() -> Self {
        Simulator {
            now: Timestamp::ZERO,
            queue: BinaryHeap::new(),
            next_seq: 0,
            events_executed: 0,
            event_limit: Self::DEFAULT_EVENT_LIMIT,
            stop_requested: false,
            profile: None,
        }
    }

    /// Start collecting an [`EngineProfile`] (per-tag dispatch counts
    /// and heap high-water). Idempotent; profiling only observes, so
    /// the simulation is byte-identical with it on or off.
    pub fn enable_profiler(&mut self) {
        if self.profile.is_none() {
            self.profile = Some(Box::default());
        }
    }

    /// The collected profile, if [`enable_profiler`](Self::enable_profiler)
    /// was called.
    pub fn profile(&self) -> Option<&EngineProfile> {
        self.profile.as_deref()
    }

    /// Current virtual time.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.events_executed
    }

    /// Number of events currently pending.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Replace the runaway-loop guard (events executed per `run*` call
    /// across the simulator's lifetime).
    pub fn set_event_limit(&mut self, limit: u64) {
        self.event_limit = limit;
    }

    /// Schedule `f` to run at absolute time `at`.
    ///
    /// Panics if `at` is in the past — an event scheduled before `now`
    /// indicates a logic error in the caller, and silently clamping it
    /// would mask causality bugs.
    pub fn schedule_at(&mut self, at: Timestamp, f: impl FnOnce(&mut Simulator) + 'static) {
        self.schedule_at_tagged(UNTAGGED_EVENT, at, f);
    }

    /// [`schedule_at`](Self::schedule_at) with a component tag for the
    /// event-loop profiler. The tag doubles as the metric name the
    /// dispatch count exports under, so use the
    /// `sim_events_<component>_total` convention.
    pub fn schedule_at_tagged(
        &mut self,
        tag: &'static str,
        at: Timestamp,
        f: impl FnOnce(&mut Simulator) + 'static,
    ) {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: {at} < {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Scheduled {
            at,
            seq,
            tag,
            f: Box::new(f),
        });
        if let Some(p) = &mut self.profile {
            p.heap_high_water = p.heap_high_water.max(self.queue.len());
        }
    }

    /// Schedule `f` to run `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, f: impl FnOnce(&mut Simulator) + 'static) {
        self.schedule_at(self.now + delay, f);
    }

    /// [`schedule_in`](Self::schedule_in) with a component tag for the
    /// event-loop profiler (see [`schedule_at_tagged`](Self::schedule_at_tagged)).
    pub fn schedule_in_tagged(
        &mut self,
        tag: &'static str,
        delay: SimDuration,
        f: impl FnOnce(&mut Simulator) + 'static,
    ) {
        self.schedule_at_tagged(tag, self.now + delay, f);
    }

    /// Schedule `f` to run at the current instant, after all handlers
    /// already queued for this instant.
    pub fn schedule_now(&mut self, f: impl FnOnce(&mut Simulator) + 'static) {
        self.schedule_at(self.now, f);
    }

    /// Ask the run loop to stop after the current handler returns.
    pub fn request_stop(&mut self) {
        self.stop_requested = true;
    }

    /// Pop and run a single event, advancing the clock to its timestamp.
    /// Returns `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some(ev) => {
                debug_assert!(ev.at >= self.now);
                self.now = ev.at;
                self.events_executed += 1;
                if let Some(p) = &mut self.profile {
                    p.bump(ev.tag);
                }
                (ev.f)(self);
                true
            }
            None => false,
        }
    }

    /// Run until the queue drains, a stop is requested, or the event limit
    /// trips.
    pub fn run(&mut self) -> RunResult {
        self.run_until(Timestamp::NEVER)
    }

    /// Run until `horizon` (inclusive of events *at* the horizon), the queue
    /// drains, a stop is requested, or the event limit trips. The clock is
    /// left at the horizon if it was reached with events still pending.
    pub fn run_until(&mut self, horizon: Timestamp) -> RunResult {
        self.stop_requested = false;
        loop {
            if self.stop_requested {
                return RunResult::Stopped;
            }
            if self.events_executed >= self.event_limit {
                return RunResult::EventLimit;
            }
            let Some(next_at) = self.queue.peek().map(|ev| ev.at) else {
                return RunResult::QueueEmpty;
            };
            if next_at > horizon {
                if horizon != Timestamp::NEVER {
                    self.now = horizon;
                }
                return RunResult::HorizonReached;
            }
            self.step();
        }
    }

    /// Run for `span` of virtual time from the current instant.
    pub fn run_for(&mut self, span: SimDuration) -> RunResult {
        self.run_until(self.now + span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    type SharedLog = Rc<RefCell<Vec<u64>>>;

    fn recorder() -> (SharedLog, SharedLog) {
        let v = Rc::new(RefCell::new(Vec::new()));
        (v.clone(), v)
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulator::new();
        let (log, handle) = recorder();
        for ms in [30u64, 10, 20] {
            let h = handle.clone();
            sim.schedule_at(Timestamp::from_millis(ms), move |sim| {
                h.borrow_mut().push(sim.now().as_millis());
            });
        }
        assert_eq!(sim.run(), RunResult::QueueEmpty);
        assert_eq!(*log.borrow(), vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut sim = Simulator::new();
        let (log, handle) = recorder();
        for tag in 0u64..5 {
            let h = handle.clone();
            sim.schedule_at(Timestamp::from_millis(7), move |_| {
                h.borrow_mut().push(tag);
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn handlers_can_schedule_more_events() {
        let mut sim = Simulator::new();
        let (log, handle) = recorder();
        sim.schedule_in(SimDuration::from_millis(1), move |sim| {
            let h2 = handle.clone();
            sim.schedule_in(SimDuration::from_millis(2), move |sim| {
                h2.borrow_mut().push(sim.now().as_millis());
            });
        });
        sim.run();
        assert_eq!(*log.borrow(), vec![3]);
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut sim = Simulator::new();
        let (log, handle) = recorder();
        for ms in [5u64, 15] {
            let h = handle.clone();
            sim.schedule_at(Timestamp::from_millis(ms), move |sim| {
                h.borrow_mut().push(sim.now().as_millis());
            });
        }
        let r = sim.run_until(Timestamp::from_millis(10));
        assert_eq!(r, RunResult::HorizonReached);
        assert_eq!(*log.borrow(), vec![5]);
        assert_eq!(sim.now(), Timestamp::from_millis(10));
        sim.run();
        assert_eq!(*log.borrow(), vec![5, 15]);
    }

    #[test]
    fn horizon_inclusive_of_events_at_horizon() {
        let mut sim = Simulator::new();
        let (log, handle) = recorder();
        sim.schedule_at(Timestamp::from_millis(10), move |sim| {
            handle.borrow_mut().push(sim.now().as_millis());
        });
        sim.run_until(Timestamp::from_millis(10));
        assert_eq!(*log.borrow(), vec![10]);
    }

    #[test]
    #[should_panic(expected = "cannot schedule event in the past")]
    fn scheduling_in_past_panics() {
        let mut sim = Simulator::new();
        sim.schedule_at(Timestamp::from_millis(10), |sim| {
            sim.schedule_at(Timestamp::from_millis(5), |_| {});
        });
        sim.run();
    }

    #[test]
    fn request_stop_halts_loop() {
        let mut sim = Simulator::new();
        let (log, handle) = recorder();
        sim.schedule_at(Timestamp::from_millis(1), |sim| sim.request_stop());
        sim.schedule_at(Timestamp::from_millis(2), move |_| {
            handle.borrow_mut().push(99);
        });
        assert_eq!(sim.run(), RunResult::Stopped);
        assert!(log.borrow().is_empty());
        // A subsequent run resumes.
        assert_eq!(sim.run(), RunResult::QueueEmpty);
        assert_eq!(*log.borrow(), vec![99]);
    }

    #[test]
    fn event_limit_guards_runaway_loops() {
        let mut sim = Simulator::new();
        sim.set_event_limit(100);
        fn reschedule(sim: &mut Simulator) {
            sim.schedule_in(SimDuration::from_nanos(1), reschedule);
        }
        sim.schedule_now(reschedule);
        assert_eq!(sim.run(), RunResult::EventLimit);
        assert_eq!(sim.events_executed(), 100);
    }

    #[test]
    fn schedule_now_runs_at_current_instant_in_order() {
        let mut sim = Simulator::new();
        let (log, handle) = recorder();
        sim.schedule_at(Timestamp::from_millis(3), move |sim| {
            let h1 = handle.clone();
            let h2 = handle.clone();
            sim.schedule_now(move |_| h1.borrow_mut().push(1));
            sim.schedule_now(move |_| h2.borrow_mut().push(2));
        });
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 2]);
    }

    #[test]
    fn profiler_counts_dispatches_per_tag_and_heap_high_water() {
        let mut sim = Simulator::new();
        sim.enable_profiler();
        for ms in [1u64, 2, 3] {
            sim.schedule_at_tagged("sim_events_link_total", Timestamp::from_millis(ms), |_| {});
        }
        sim.schedule_at(Timestamp::from_millis(4), |_| {});
        assert_eq!(sim.run(), RunResult::QueueEmpty);
        let p = sim.profile().expect("profiler enabled");
        assert_eq!(p.dispatched_for("sim_events_link_total"), 3);
        assert_eq!(p.dispatched_for(UNTAGGED_EVENT), 1);
        assert_eq!(p.dispatched_for("never_scheduled"), 0);
        assert_eq!(p.heap_high_water(), 4);
        let collected: Vec<_> = p.dispatched().collect();
        assert_eq!(collected.iter().map(|(_, n)| n).sum::<u64>(), 4);
    }

    #[test]
    fn profiler_export_reaches_sink() {
        use mm_metrics::{MetricsSink, Registry, RegistrySink};
        let mut sim = Simulator::new();
        sim.enable_profiler();
        sim.schedule_at_tagged("sim_events_link_total", Timestamp::from_millis(1), |_| {});
        sim.run();
        let registry = Registry::new();
        let sink = RegistrySink::new(registry.clone());
        sim.profile().unwrap().export(&sink);
        // Exercise the trait-object path the harness uses as well.
        let dyn_sink: &dyn MetricsSink = &sink;
        let _ = dyn_sink;
        let text = registry.encode();
        assert!(text.contains("sim_events_link_total 1"));
        assert!(text.contains("sim_heap_high_water_events 1"));
    }

    #[test]
    fn profiler_disabled_costs_nothing_and_reports_none() {
        let mut sim = Simulator::new();
        sim.schedule_at_tagged("sim_events_link_total", Timestamp::from_millis(1), |_| {});
        sim.run();
        assert!(sim.profile().is_none());
    }

    #[test]
    fn run_for_advances_relative_span() {
        let mut sim = Simulator::new();
        sim.schedule_at(Timestamp::from_millis(5), |_| {});
        sim.run();
        assert_eq!(sim.now().as_millis(), 5);
        sim.schedule_in(SimDuration::from_millis(20), |_| {});
        let r = sim.run_for(SimDuration::from_millis(10));
        assert_eq!(r, RunResult::HorizonReached);
        assert_eq!(sim.now().as_millis(), 15);
    }
}
