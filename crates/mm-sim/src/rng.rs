//! Deterministic random-number streams.
//!
//! Every source of randomness in an experiment forks a named [`RngStream`]
//! off a single master seed. Forking hashes the parent seed with the child's
//! label, so adding a new consumer never perturbs the draws seen by existing
//! consumers — the property that keeps experiments comparable as the code
//! evolves, and that makes Table 1's reproducibility claim testable.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// FNV-1a, used to mix labels into seeds. Stable across platforms and
/// releases (unlike `std::hash`).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A named, forkable deterministic RNG stream (ChaCha8 core).
///
/// # Example
/// ```
/// use mm_sim::RngStream;
/// use rand::RngCore;
/// let mut root = RngStream::from_seed(42);
/// let mut a1 = root.fork("loss");
/// let mut a2 = RngStream::from_seed(42).fork("loss");
/// assert_eq!(a1.next_u64(), a2.next_u64()); // same label, same draws
/// let mut b = RngStream::from_seed(42).fork("jitter");
/// assert_ne!(a1.seed(), b.seed());
/// ```
pub struct RngStream {
    seed: u64,
    rng: ChaCha8Rng,
}

impl RngStream {
    /// Create the root stream for an experiment from its master seed.
    pub fn from_seed(seed: u64) -> Self {
        RngStream {
            seed,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Fork a child stream. The child's seed depends only on this stream's
    /// *seed* and the label — not on how many values have been drawn — so
    /// fork order does not matter.
    pub fn fork(&self, label: &str) -> RngStream {
        let child_seed = self.seed ^ fnv1a(label.as_bytes()).rotate_left(17);
        RngStream::from_seed(child_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ child_seed >> 29)
    }

    /// Fork a child stream by label and index (e.g. per-site, per-load).
    pub fn fork_indexed(&self, label: &str, index: u64) -> RngStream {
        self.fork(&format!("{label}#{index}"))
    }

    /// The seed this stream was constructed from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Uniform integer in `[lo, hi]` (inclusive). Panics if `lo > hi`.
    pub fn gen_range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "gen_range_inclusive: {lo} > {hi}");
        self.rng.gen_range(lo..=hi)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "gen_range_f64: empty range");
        self.rng.gen_range(lo..hi)
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        if p == 0.0 {
            return false;
        }
        if p == 1.0 {
            return true;
        }
        self.rng.gen_bool(p)
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        let i = self.gen_range_inclusive(0, items.len() as u64 - 1) as usize;
        &items[i]
    }

    /// Fisher–Yates shuffle, deterministic given the stream state.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        if items.len() < 2 {
            return;
        }
        for i in (1..items.len()).rev() {
            let j = self.gen_range_inclusive(0, i as u64) as usize;
            items.swap(i, j);
        }
    }
}

impl RngCore for RngStream {
    fn next_u32(&mut self) -> u32 {
        self.rng.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.rng.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.rng.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_draws() {
        let mut a = RngStream::from_seed(7);
        let mut b = RngStream::from_seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = RngStream::from_seed(7);
        let mut b = RngStream::from_seed(8);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn fork_is_order_independent() {
        let root = RngStream::from_seed(123);
        let mut consumed = RngStream::from_seed(123);
        let _ = consumed.next_u64(); // draw before forking
        let mut x = root.fork("x");
        let mut x2 = consumed.fork("x");
        assert_eq!(x.next_u64(), x2.next_u64());
    }

    #[test]
    fn fork_labels_are_independent() {
        let root = RngStream::from_seed(1);
        let mut a = root.fork("alpha");
        let mut b = root.fork("beta");
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn fork_indexed_distinct() {
        let root = RngStream::from_seed(1);
        let mut s0 = root.fork_indexed("site", 0);
        let mut s1 = root.fork_indexed("site", 1);
        assert_ne!(s0.next_u64(), s1.next_u64());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = RngStream::from_seed(5);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = RngStream::from_seed(5);
        for _ in 0..1000 {
            let v = r.gen_range_inclusive(3, 9);
            assert!((3..=9).contains(&v));
            let f = r.gen_range_f64(-1.0, 2.0);
            assert!((-1.0..2.0).contains(&f));
        }
        assert_eq!(r.gen_range_inclusive(4, 4), 4);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = RngStream::from_seed(11);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>()); // astronomically unlikely
    }

    #[test]
    fn uniform_mean_sane() {
        let mut r = RngStream::from_seed(2);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
