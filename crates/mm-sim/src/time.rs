//! Virtual time for the discrete-event simulator.
//!
//! All simulation time is kept as integer nanoseconds since the start of the
//! simulation. Integer time (rather than `f64` seconds) keeps event ordering
//! exact and runs bit-identical across platforms, which the reproducibility
//! experiments (Table 1 of the paper) rely on.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A span of virtual time, in nanoseconds.
///
/// `SimDuration` mirrors `std::time::Duration` but is guaranteed to be a
/// plain `u64` of nanoseconds so arithmetic is exact and cheap inside the
/// event loop.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Largest representable duration; used as an "infinite" timeout.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds. Panics on negative or
    /// non-finite input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration seconds: {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncated).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: SimDuration) -> Option<SimDuration> {
        self.0.checked_add(rhs.0).map(SimDuration)
    }

    /// Multiply by an integer factor (saturating).
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Scale by a float factor (e.g. RTO backoff). Panics if `factor` is
    /// negative or NaN.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "invalid factor {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns == u64::MAX {
            write!(f, "inf")
        } else if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

/// An instant in virtual time: nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(u64);

impl Timestamp {
    /// The simulation epoch (t = 0).
    pub const ZERO: Timestamp = Timestamp(0);

    /// The far future; events at `Timestamp::NEVER` never fire.
    pub const NEVER: Timestamp = Timestamp(u64::MAX);

    /// Construct from nanoseconds since the epoch.
    pub const fn from_nanos(ns: u64) -> Self {
        Timestamp(ns)
    }

    /// Construct from milliseconds since the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        Timestamp(ms * 1_000_000)
    }

    /// Construct from whole seconds since the epoch.
    pub const fn from_secs(s: u64) -> Self {
        Timestamp(s * 1_000_000_000)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since the epoch (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`. Panics if `earlier` is in the future.
    pub fn duration_since(self, earlier: Timestamp) -> SimDuration {
        assert!(
            self.0 >= earlier.0,
            "duration_since: {earlier} is after {self}"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Time elapsed since `earlier`, or zero if `earlier` is in the future.
    pub fn saturating_duration_since(self, earlier: Timestamp) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<Timestamp> {
        self.0.checked_add(d.as_nanos()).map(Timestamp)
    }
}

impl Add<SimDuration> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: SimDuration) -> Timestamp {
        Timestamp(self.0.saturating_add(rhs.as_nanos()))
    }
}

impl AddAssign<SimDuration> for Timestamp {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.as_nanos());
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = SimDuration;
    fn sub(self, rhs: Timestamp) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == u64::MAX {
            write!(f, "t=never")
        } else {
            write!(f, "t={:.6}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2000));
        assert_eq!(SimDuration::from_millis(3), SimDuration::from_micros(3000));
        assert_eq!(SimDuration::from_micros(5), SimDuration::from_nanos(5000));
        assert_eq!(
            SimDuration::from_secs_f64(0.25),
            SimDuration::from_millis(250)
        );
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_millis(10);
        let b = SimDuration::from_millis(4);
        assert_eq!(a + b, SimDuration::from_millis(14));
        assert_eq!(a - b, SimDuration::from_millis(6));
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
        assert_eq!(a.saturating_mul(3), SimDuration::from_millis(30));
        assert_eq!(a.mul_f64(1.5), SimDuration::from_millis(15));
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn timestamp_arithmetic() {
        let t0 = Timestamp::from_millis(100);
        let t1 = t0 + SimDuration::from_millis(50);
        assert_eq!(t1.as_millis(), 150);
        assert_eq!(t1 - t0, SimDuration::from_millis(50));
        assert_eq!(t0.saturating_duration_since(t1), SimDuration::ZERO);
    }

    #[test]
    #[should_panic]
    fn duration_since_panics_when_reversed() {
        let t0 = Timestamp::from_millis(100);
        let t1 = Timestamp::from_millis(200);
        let _ = t0.duration_since(t1);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", SimDuration::from_millis(3)), "3.000ms");
        assert_eq!(format!("{}", SimDuration::from_micros(7)), "7.000us");
        assert_eq!(format!("{}", SimDuration::from_nanos(9)), "9ns");
    }

    #[test]
    fn never_is_after_everything() {
        assert!(Timestamp::NEVER > Timestamp::from_secs(1_000_000));
    }
}
