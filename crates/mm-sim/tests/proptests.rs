//! Property tests on the simulation substrate: event ordering, summary
//! statistics invariants, RNG stream independence.

use mm_sim::{jain_fairness, RngStream, SimDuration, Simulator, Summary, Timestamp};
use proptest::prelude::*;
use rand::RngCore;
use std::cell::RefCell;
use std::rc::Rc;

proptest! {
    #[test]
    fn events_always_fire_in_order(times in prop::collection::vec(0u64..10_000, 1..100)) {
        let mut sim = Simulator::new();
        let fired = Rc::new(RefCell::new(Vec::new()));
        for &t in &times {
            let f = fired.clone();
            sim.schedule_at(Timestamp::from_nanos(t), move |sim| {
                f.borrow_mut().push(sim.now().as_nanos());
            });
        }
        sim.run();
        let got = fired.borrow();
        prop_assert_eq!(got.len(), times.len());
        for w in got.windows(2) {
            prop_assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn percentiles_are_order_statistics(mut samples in prop::collection::vec(0.0f64..1e6, 1..200)) {
        let mut s = Summary::from_samples(samples.clone());
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Median and p95 must be actual samples (nearest-rank).
        let med = s.percentile(50.0);
        let p95 = s.percentile(95.0);
        prop_assert!(samples.contains(&med));
        prop_assert!(samples.contains(&p95));
        prop_assert!(p95 >= med);
        prop_assert!(s.min() <= med && med <= s.max());
    }

    #[test]
    fn mean_between_min_and_max(samples in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut s = Summary::from_samples(samples);
        let (mn, mx, mean) = (s.min(), s.max(), s.mean());
        prop_assert!(mn <= mean + 1e-9 && mean <= mx + 1e-9);
    }

    #[test]
    fn cdf_at_is_monotone(samples in prop::collection::vec(0.0f64..1000.0, 1..100),
                          a in 0.0f64..1000.0, b in 0.0f64..1000.0) {
        let mut s = Summary::from_samples(samples);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(s.cdf_at(lo) <= s.cdf_at(hi));
    }

    #[test]
    fn jain_fairness_in_unit_interval(goodputs in prop::collection::vec(1e-3f64..1e9, 1..128)) {
        // For arbitrary positive goodput vectors the index is a valid
        // fairness: strictly positive, at most 1, and at least 1/n (the
        // single-flow-takes-all floor).
        let j = jain_fairness(&goodputs);
        prop_assert!(j > 0.0, "fairness {j} not positive");
        prop_assert!(j <= 1.0 + 1e-12, "fairness {j} above 1");
        prop_assert!(j >= 1.0 / goodputs.len() as f64 - 1e-12, "fairness {j} below 1/n");
    }

    #[test]
    fn interpolated_percentile_monotone_and_bounded(
        samples in prop::collection::vec(0.0f64..1e6, 1..200),
        p in 0.0f64..100.0,
        q in 0.0f64..100.0,
    ) {
        let mut s = Summary::from_samples(samples);
        let (lo, hi) = if p <= q { (p, q) } else { (q, p) };
        let (vlo, vhi) = (s.percentile_interpolated(lo), s.percentile_interpolated(hi));
        prop_assert!(vlo <= vhi + 1e-9);
        prop_assert!(s.min() <= vlo + 1e-9 && vhi <= s.max() + 1e-9);
    }

    #[test]
    fn forked_streams_reproducible(seed in any::<u64>(), label in "[a-z]{1,10}") {
        let mut a = RngStream::from_seed(seed).fork(&label);
        let mut b = RngStream::from_seed(seed).fork(&label);
        for _ in 0..20 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn duration_arithmetic_consistent(a in 0u64..1u64<<40, b in 0u64..1u64<<40) {
        let da = SimDuration::from_nanos(a);
        let db = SimDuration::from_nanos(b);
        prop_assert_eq!((da + db).as_nanos(), a + b);
        prop_assert_eq!(da.saturating_sub(db).as_nanos(), a.saturating_sub(b));
        prop_assert_eq!(da.max(db).as_nanos(), a.max(b));
        let t = Timestamp::ZERO + da + db;
        prop_assert_eq!(t.as_nanos(), a + b);
    }
}
