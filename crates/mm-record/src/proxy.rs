//! RecordShell: the recording man-in-the-middle proxy.
//!
//! From the paper: "RecordShell spawns a man-in-the-middle proxy, equipped
//! with an HTTP parser, on the host machine to store and forward all
//! HTTP(S) traffic both to and from an application running within
//! RecordShell. [...] RecordShell is compatible with any unmodified browser
//! because recording is done transparently."
//!
//! Structure here: a *LAN host* with a transparent-intercept listener sits
//! on the uplink of the RecordShell namespace and accepts every outbound
//! connection at the original destination address; for each one, a *WAN
//! host* in the parent namespace opens the real connection. Bytes are
//! stored-and-forwarded through HTTP parsers in both directions, and each
//! completed request/response pair is appended to a [`StoredSite`].

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use bytes::Bytes;
use mm_http::{write_request, Request, RequestParser, ResponseParser};
use mm_net::{Host, IpAddr, Listener, Namespace, PacketIdGen, SocketApp, SocketEvent, TcpHandle};
use mm_sim::Simulator;

use crate::store::{RequestResponsePair, Scheme, StoredSite};

/// A running RecordShell.
pub struct RecordShell {
    /// The namespace the recorded application (browser) runs inside.
    pub inner_ns: Namespace,
    /// The MITM intercept host (LAN side).
    pub lan_host: Host,
    /// The outbound host in the parent namespace (WAN side).
    pub wan_host: Host,
    store: Rc<RefCell<StoredSite>>,
}

impl RecordShell {
    /// Build a RecordShell under `parent`. `wan_ip` is the address the
    /// proxy's outbound connections originate from (the "host machine"
    /// address servers see).
    pub fn new(
        parent: &Namespace,
        name: &str,
        wan_ip: IpAddr,
        ids: PacketIdGen,
        site_name: &str,
        root_url: &str,
    ) -> RecordShell {
        let inner_ns = Namespace::root(name);
        let store = Rc::new(RefCell::new(StoredSite::new(site_name, root_url)));

        // LAN host: egress points *into* the inner namespace so replies
        // (src = original server address) reach the browser.
        let lan_host = Host::new(IpAddr::new(100, 64, 255, 254), ids.clone());
        let wan_host = Host::new_in(wan_ip, ids, parent);

        let listener = Rc::new(InterceptListener {
            wan_host: wan_host.clone(),
            store: store.clone(),
        });
        lan_host.listen_any(listener);

        // Uplink: every packet leaving the inner namespace lands on the
        // LAN intercept host. Downlink: unused in practice (servers only
        // ever talk to the WAN host), but wired for completeness.
        parent.attach_child(&inner_ns, lan_host.sink(), inner_ns.router());
        // The LAN host's own egress must inject into the inner namespace.
        lan_host.set_egress(inner_ns.router());

        RecordShell {
            inner_ns,
            lan_host,
            wan_host,
            store,
        }
    }

    /// Snapshot of the recording so far.
    pub fn recorded(&self) -> StoredSite {
        self.store.borrow().clone()
    }

    /// Number of pairs recorded so far.
    pub fn pair_count(&self) -> usize {
        self.store.borrow().pairs.len()
    }
}

/// Accepts intercepted connections and spawns a proxy pipe for each.
struct InterceptListener {
    wan_host: Host,
    store: Rc<RefCell<StoredSite>>,
}

impl Listener for InterceptListener {
    fn on_connection(&self, sim: &mut Simulator, lan: TcpHandle) -> Rc<dyn SocketApp> {
        // The socket is bound to the browser's original destination: that
        // is the origin to connect to and to record under.
        let origin = lan.local_addr();
        let state = Rc::new(RefCell::new(ProxyConn {
            origin,
            scheme: if origin.port == 443 {
                Scheme::Https
            } else {
                Scheme::Http
            },
            lan: lan.clone(),
            wan: None,
            wan_connected: false,
            to_wan_buffer: Vec::new(),
            req_parser: RequestParser::new(),
            resp_parser: ResponseParser::new(),
            pending_requests: VecDeque::new(),
            store: self.store.clone(),
        }));
        // Open the WAN side immediately.
        let wan_app = Rc::new(WanSide {
            state: state.clone(),
        });
        let wan = self.wan_host.connect(sim, origin, wan_app);
        state.borrow_mut().wan = Some(wan);
        Rc::new(LanSide { state })
    }
}

/// One intercepted connection's proxy state.
struct ProxyConn {
    origin: mm_net::SocketAddr,
    scheme: Scheme,
    lan: TcpHandle,
    wan: Option<TcpHandle>,
    wan_connected: bool,
    /// Browser bytes buffered until the WAN connection completes.
    to_wan_buffer: Vec<Bytes>,
    req_parser: RequestParser,
    resp_parser: ResponseParser,
    /// Requests forwarded but not yet answered (HTTP/1.1 pipelining).
    pending_requests: VecDeque<Request>,
    store: Rc<RefCell<StoredSite>>,
}

/// Deferred socket operations, executed after releasing the state borrow.
enum Action {
    SendWan(Bytes),
    SendLan(Bytes),
    CloseWan,
    CloseLan,
    AbortBoth,
}

fn run_actions(state: &Rc<RefCell<ProxyConn>>, sim: &mut Simulator, actions: Vec<Action>) {
    for a in actions {
        let (lan, wan) = {
            let s = state.borrow();
            (s.lan.clone(), s.wan.clone())
        };
        match a {
            Action::SendWan(b) => {
                if let Some(w) = wan {
                    w.send(sim, b);
                }
            }
            Action::SendLan(b) => lan.send(sim, b),
            Action::CloseWan => {
                if let Some(w) = wan {
                    w.close(sim);
                }
            }
            Action::CloseLan => lan.close(sim),
            Action::AbortBoth => {
                lan.abort(sim);
                if let Some(w) = wan {
                    w.abort(sim);
                }
            }
        }
    }
}

/// The browser-facing side of the pipe.
struct LanSide {
    state: Rc<RefCell<ProxyConn>>,
}

impl SocketApp for LanSide {
    fn on_event(&self, sim: &mut Simulator, _h: &TcpHandle, ev: SocketEvent) {
        let actions = {
            let mut s = self.state.borrow_mut();
            match ev {
                SocketEvent::Connected => Vec::new(),
                SocketEvent::Data(bytes) => {
                    let mut actions = Vec::new();
                    match s.req_parser.feed(&bytes) {
                        Ok(reqs) => {
                            for req in reqs {
                                s.resp_parser
                                    .expect_head(req.method == mm_http::Method::Head);
                                s.pending_requests.push_back(req);
                            }
                        }
                        Err(_) => {
                            // Not HTTP: RecordShell only records HTTP, but
                            // keeps forwarding unparseable traffic.
                        }
                    }
                    if s.wan_connected {
                        actions.push(Action::SendWan(bytes));
                    } else {
                        s.to_wan_buffer.push(bytes);
                    }
                    actions
                }
                SocketEvent::PeerClosed => vec![Action::CloseWan],
                SocketEvent::Reset => vec![Action::AbortBoth],
                SocketEvent::SendQueueDrained => Vec::new(),
            }
        };
        run_actions(&self.state, sim, actions);
    }
}

/// The server-facing side of the pipe.
struct WanSide {
    state: Rc<RefCell<ProxyConn>>,
}

impl SocketApp for WanSide {
    fn on_event(&self, sim: &mut Simulator, _h: &TcpHandle, ev: SocketEvent) {
        let actions = {
            let mut s = self.state.borrow_mut();
            match ev {
                SocketEvent::Connected => {
                    s.wan_connected = true;
                    let buffered: Vec<Bytes> = s.to_wan_buffer.drain(..).collect();
                    buffered.into_iter().map(Action::SendWan).collect()
                }
                SocketEvent::Data(bytes) => {
                    let mut actions = vec![Action::SendLan(bytes.clone())];
                    match s.resp_parser.feed(&bytes) {
                        Ok(resps) => {
                            for resp in resps {
                                s.record_response(resp);
                            }
                        }
                        Err(_) => {
                            actions.clear();
                            actions.push(Action::SendLan(bytes));
                        }
                    }
                    actions
                }
                SocketEvent::PeerClosed => {
                    // Close-delimited bodies complete at EOF.
                    if let Ok(Some(resp)) = s.resp_parser.finish() {
                        s.record_response(resp);
                    }
                    vec![Action::CloseLan]
                }
                SocketEvent::Reset => vec![Action::AbortBoth],
                SocketEvent::SendQueueDrained => Vec::new(),
            }
        };
        run_actions(&self.state, sim, actions);
    }
}

impl ProxyConn {
    fn record_response(&mut self, response: mm_http::Response) {
        if let Some(request) = self.pending_requests.pop_front() {
            self.store.borrow_mut().push(RequestResponsePair {
                origin: self.origin,
                scheme: self.scheme,
                request,
                response,
            });
        }
    }
}

/// Convenience for tests and examples: issue a single GET from inside a
/// RecordShell namespace and return the response body when the simulation
/// settles.
pub fn fetch_via(
    sim: &mut Simulator,
    client: &Host,
    origin: mm_net::SocketAddr,
    request: Request,
) -> Rc<RefCell<Vec<u8>>> {
    let body = Rc::new(RefCell::new(Vec::new()));
    struct FetchApp {
        request: RefCell<Option<Request>>,
        body: Rc<RefCell<Vec<u8>>>,
    }
    impl SocketApp for FetchApp {
        fn on_event(&self, sim: &mut Simulator, h: &TcpHandle, ev: SocketEvent) {
            match ev {
                SocketEvent::Connected => {
                    if let Some(req) = self.request.borrow_mut().take() {
                        h.send(sim, write_request(&req));
                    }
                }
                SocketEvent::Data(b) => self.body.borrow_mut().extend_from_slice(&b),
                _ => {}
            }
        }
    }
    let app = Rc::new(FetchApp {
        request: RefCell::new(Some(request)),
        body: body.clone(),
    });
    client.connect(sim, origin, app);
    body
}
