//! The recorded-site store format.
//!
//! Mahimahi's RecordShell leaves behind "a recorded folder [containing] a
//! file for each request-response pair seen during that record session".
//! [`StoredSite`] is that folder: a named collection of
//! [`RequestResponsePair`]s, each tagged with the origin server's address —
//! the key ReplayShell uses to spawn one server per distinct ip:port.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::io;
use std::path::Path;

use mm_http::{Request, Response};
use mm_net::{IpAddr, Origin, SocketAddr};

/// The scheme the pair was recorded from. HTTPS is stored decrypted —
/// mahimahi's proxy terminates TLS — so replay is byte-identical either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Scheme {
    #[default]
    Http,
    Https,
}

/// One recorded request/response exchange.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestResponsePair {
    /// The origin server the exchange was recorded from.
    pub origin: Origin,
    pub scheme: Scheme,
    pub request: Request,
    pub response: Response,
}

/// A recorded site: everything RecordShell captured during one page load.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct StoredSite {
    /// Site label, e.g. `www.example.com`.
    pub name: String,
    /// URL (absolute) of the page's root document.
    pub root_url: String,
    pub pairs: Vec<RequestResponsePair>,
}

impl StoredSite {
    /// An empty recording with a name and root URL.
    pub fn new(name: impl Into<String>, root_url: impl Into<String>) -> Self {
        StoredSite {
            name: name.into(),
            root_url: root_url.into(),
            pairs: Vec::new(),
        }
    }

    /// Append one exchange.
    pub fn push(&mut self, pair: RequestResponsePair) {
        self.pairs.push(pair);
    }

    /// The distinct origins (ip:port) seen while recording — one replay
    /// server is spawned per element.
    pub fn origins(&self) -> Vec<Origin> {
        let set: BTreeSet<Origin> = self.pairs.iter().map(|p| p.origin).collect();
        set.into_iter().collect()
    }

    /// The distinct server IPs (the paper's "physical servers per website"
    /// statistic counts these).
    pub fn server_ips(&self) -> Vec<IpAddr> {
        let set: BTreeSet<IpAddr> = self.pairs.iter().map(|p| p.origin.ip).collect();
        set.into_iter().collect()
    }

    /// Total bytes of recorded response bodies (page weight).
    pub fn total_body_bytes(&self) -> u64 {
        self.pairs
            .iter()
            .map(|p| p.response.body.len() as u64)
            .sum()
    }

    /// Find the pair answering the root document request, if recorded.
    pub fn root_pair(&self) -> Option<&RequestResponsePair> {
        let root = mm_http::Url::parse(&self.root_url).ok()?;
        let origin = SocketAddr::new(root.host.parse().ok()?, root.port);
        self.pairs
            .iter()
            .find(|p| p.origin == origin && p.request.target == root.target)
    }

    /// Serialize to the on-disk JSON format.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("StoredSite serializes")
    }

    /// Parse the on-disk JSON format.
    pub fn from_json(s: &str) -> Result<StoredSite, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Write to a file (one file per recorded site).
    pub fn save(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Load from a file.
    pub fn load(path: &Path) -> io::Result<StoredSite> {
        let text = std::fs::read_to_string(path)?;
        StoredSite::from_json(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn pair(ip: [u8; 4], port: u16, target: &str, body: &str) -> RequestResponsePair {
        let origin = SocketAddr::new(IpAddr::new(ip[0], ip[1], ip[2], ip[3]), port);
        RequestResponsePair {
            origin,
            scheme: Scheme::Http,
            request: Request::get(target, "site.example"),
            response: Response::ok(Bytes::copy_from_slice(body.as_bytes()), "text/html"),
        }
    }

    fn sample_site() -> StoredSite {
        let mut s = StoredSite::new("site.example", "http://10.0.0.1:80/");
        s.push(pair([10, 0, 0, 1], 80, "/", "<html>root</html>"));
        s.push(pair([10, 0, 0, 1], 80, "/style.css", "body{}"));
        s.push(pair([10, 0, 0, 2], 80, "/img.png", "PNG"));
        s.push(pair([10, 0, 0, 2], 443, "/api", "{}"));
        s
    }

    #[test]
    fn origins_distinct_by_ip_port() {
        let s = sample_site();
        assert_eq!(
            s.origins().len(),
            3,
            "10.0.0.1:80, 10.0.0.2:80, 10.0.0.2:443"
        );
        assert_eq!(s.server_ips().len(), 2);
    }

    #[test]
    fn json_round_trip() {
        let s = sample_site();
        let back = StoredSite::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn file_round_trip() {
        let s = sample_site();
        let dir = std::env::temp_dir().join("mm-record-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("site.json");
        s.save(&path).unwrap();
        let back = StoredSite::load(&path).unwrap();
        assert_eq!(back, s);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn root_pair_found() {
        let s = sample_site();
        let root = s.root_pair().expect("root pair recorded");
        assert_eq!(&root.response.body[..], b"<html>root</html>");
    }

    #[test]
    fn total_body_bytes_sums() {
        let s = sample_site();
        assert_eq!(
            s.total_body_bytes(),
            ("<html>root</html>".len() + "body{}".len() + "PNG".len() + "{}".len()) as u64
        );
    }

    #[test]
    fn binary_bodies_survive_json() {
        let mut s = StoredSite::new("bin", "http://10.0.0.1:80/");
        let body: Vec<u8> = (0..=255u8).collect();
        let mut p = pair([10, 0, 0, 1], 80, "/bin", "");
        p.response = Response::ok(Bytes::from(body.clone()), "application/octet-stream");
        s.push(p);
        let back = StoredSite::from_json(&s.to_json()).unwrap();
        assert_eq!(&back.pairs[0].response.body[..], &body[..]);
    }
}
