//! # mm-record — RecordShell
//!
//! The recording half of the toolkit: a transparent man-in-the-middle
//! proxy ([`proxy::RecordShell`]) that stores every HTTP request/response
//! pair crossing the namespace boundary into the on-disk site format
//! ([`store::StoredSite`]).

pub mod proxy;
pub mod store;

pub use proxy::{fetch_via, RecordShell};
pub use store::{RequestResponsePair, Scheme, StoredSite};
