//! Integration tests: a browser-like client inside a RecordShell fetching
//! from origin servers in the outer namespace, with the proxy recording
//! every exchange transparently.

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;
use mm_http::{write_response, Request, RequestParser, Response};
use mm_net::{
    Host, IpAddr, Listener, Namespace, PacketIdGen, SocketAddr, SocketApp, SocketEvent, TcpHandle,
};
use mm_record::{fetch_via, RecordShell};
use mm_sim::{Simulator, Timestamp};

/// A minimal HTTP origin server: answers GETs from a fixed (target → body)
/// table, 404 otherwise.
struct OriginServer {
    routes: Vec<(String, Bytes)>,
}

impl OriginServer {
    fn install(host: &Host, port: u16, routes: Vec<(&str, &[u8])>) {
        let listener = Rc::new(OriginListener {
            server: Rc::new(OriginServer {
                routes: routes
                    .into_iter()
                    .map(|(t, b)| (t.to_string(), Bytes::copy_from_slice(b)))
                    .collect(),
            }),
        });
        host.listen(port, listener);
    }
}

struct OriginListener {
    server: Rc<OriginServer>,
}

impl Listener for OriginListener {
    fn on_connection(&self, _sim: &mut Simulator, _h: TcpHandle) -> Rc<dyn SocketApp> {
        Rc::new(OriginConn {
            server: self.server.clone(),
            parser: RefCell::new(RequestParser::new()),
        })
    }
}

struct OriginConn {
    server: Rc<OriginServer>,
    parser: RefCell<RequestParser>,
}

impl SocketApp for OriginConn {
    fn on_event(&self, sim: &mut Simulator, h: &TcpHandle, ev: SocketEvent) {
        if let SocketEvent::Data(b) = ev {
            let reqs = self.parser.borrow_mut().feed(&b).expect("valid HTTP");
            for req in reqs {
                let resp = self
                    .server
                    .routes
                    .iter()
                    .find(|(t, _)| *t == req.target)
                    .map(|(_, body)| Response::ok(body.clone(), "text/html"))
                    .unwrap_or_else(Response::not_found);
                h.send(sim, write_response(&resp));
            }
        }
    }
}

struct World {
    sim: Simulator,
    root: Namespace,
    shell: RecordShell,
    browser: Host,
}

fn world() -> World {
    let sim = Simulator::new();
    let root = Namespace::root("internet");
    let ids = PacketIdGen::new();
    let shell = RecordShell::new(
        &root,
        "recordshell",
        IpAddr::new(192, 168, 1, 10),
        ids.clone(),
        "test-site",
        "http://10.1.0.1:80/",
    );
    let browser = Host::new_in(IpAddr::new(100, 64, 0, 2), ids, &shell.inner_ns);
    World {
        sim,
        root,
        shell,
        browser,
    }
}

#[test]
fn records_a_simple_fetch() {
    let mut w = world();
    let ids = PacketIdGen::new();
    let server = Host::new_in(IpAddr::new(10, 1, 0, 1), ids, &w.root);
    OriginServer::install(&server, 80, vec![("/", b"<html>hello</html>")]);

    let origin = SocketAddr::new(server.ip(), 80);
    let req = Request::get("/", "site.example");
    let _body = fetch_via(&mut w.sim, &w.browser, origin, req);
    w.sim.run_until(Timestamp::from_secs(5));

    let recorded = w.shell.recorded();
    assert_eq!(recorded.pairs.len(), 1);
    let pair = &recorded.pairs[0];
    assert_eq!(pair.origin, origin);
    assert_eq!(pair.request.target, "/");
    assert_eq!(pair.request.host(), Some("site.example"));
    assert_eq!(&pair.response.body[..], b"<html>hello</html>");
}

#[test]
fn browser_receives_identical_bytes() {
    let mut w = world();
    let ids = PacketIdGen::new();
    let server = Host::new_in(IpAddr::new(10, 1, 0, 1), ids, &w.root);
    let payload: Vec<u8> = (0..50_000u32).map(|i| (i % 251) as u8).collect();
    OriginServer::install(&server, 80, vec![("/big", &payload)]);

    let origin = SocketAddr::new(server.ip(), 80);
    let body = fetch_via(&mut w.sim, &w.browser, origin, Request::get("/big", "h"));
    w.sim.run_until(Timestamp::from_secs(10));

    // The browser got the full response through the proxy...
    let got = body.borrow();
    let tail = got
        .windows(4)
        .position(|win| win == b"\r\n\r\n")
        .map(|p| &got[p + 4..])
        .expect("response head present");
    assert_eq!(tail, &payload[..]);
    // ...and the proxy recorded the same body.
    assert_eq!(&w.shell.recorded().pairs[0].response.body[..], &payload[..]);
}

#[test]
fn multiple_origins_recorded_distinctly() {
    let mut w = world();
    let ids = PacketIdGen::new();
    let s1 = Host::new_in(IpAddr::new(10, 1, 0, 1), ids.clone(), &w.root);
    let s2 = Host::new_in(IpAddr::new(10, 2, 0, 1), ids.clone(), &w.root);
    OriginServer::install(&s1, 80, vec![("/", b"one")]);
    OriginServer::install(&s2, 80, vec![("/img", b"two")]);
    OriginServer::install(&s2, 443, vec![("/api", b"three")]);

    for (ip, port, target) in [
        (s1.ip(), 80, "/"),
        (s2.ip(), 80, "/img"),
        (s2.ip(), 443, "/api"),
    ] {
        fetch_via(
            &mut w.sim,
            &w.browser,
            SocketAddr::new(ip, port),
            Request::get(target, "h"),
        );
    }
    w.sim.run_until(Timestamp::from_secs(5));

    let recorded = w.shell.recorded();
    assert_eq!(recorded.pairs.len(), 3);
    assert_eq!(recorded.origins().len(), 3);
    assert_eq!(recorded.server_ips().len(), 2);
    // Port 443 pairs are tagged https (the proxy terminates TLS).
    let https = recorded
        .pairs
        .iter()
        .find(|p| p.origin.port == 443)
        .unwrap();
    assert_eq!(https.scheme, mm_record::Scheme::Https);
}

#[test]
fn persistent_connection_pairs_in_order() {
    let mut w = world();
    let ids = PacketIdGen::new();
    let server = Host::new_in(IpAddr::new(10, 1, 0, 1), ids, &w.root);
    OriginServer::install(&server, 80, vec![("/a", b"AAA"), ("/b", b"BBBB")]);

    // One connection, two sequential requests.
    struct TwoFetches {
        sent: RefCell<u32>,
        got: Rc<RefCell<Vec<u8>>>,
    }
    impl SocketApp for TwoFetches {
        fn on_event(&self, sim: &mut Simulator, h: &TcpHandle, ev: SocketEvent) {
            match ev {
                SocketEvent::Connected => {
                    h.send(sim, mm_http::write_request(&Request::get("/a", "h")));
                    h.send(sim, mm_http::write_request(&Request::get("/b", "h")));
                    *self.sent.borrow_mut() = 2;
                }
                SocketEvent::Data(b) => self.got.borrow_mut().extend_from_slice(&b),
                _ => {}
            }
        }
    }
    let got = Rc::new(RefCell::new(Vec::new()));
    let app = Rc::new(TwoFetches {
        sent: RefCell::new(0),
        got: got.clone(),
    });
    w.browser
        .connect(&mut w.sim, SocketAddr::new(server.ip(), 80), app);
    w.sim.run_until(Timestamp::from_secs(5));

    let recorded = w.shell.recorded();
    assert_eq!(recorded.pairs.len(), 2);
    assert_eq!(recorded.pairs[0].request.target, "/a");
    assert_eq!(&recorded.pairs[0].response.body[..], b"AAA");
    assert_eq!(recorded.pairs[1].request.target, "/b");
    assert_eq!(&recorded.pairs[1].response.body[..], b"BBBB");
    // Only one proxied connection was opened outbound.
    assert_eq!(w.shell.wan_host.stats().connections_initiated, 1);
}

#[test]
fn recording_is_transparent_to_timing_order() {
    // The browser sees responses in request order even through the proxy.
    let mut w = world();
    let ids = PacketIdGen::new();
    let server = Host::new_in(IpAddr::new(10, 1, 0, 1), ids, &w.root);
    OriginServer::install(&server, 80, vec![("/1", b"first"), ("/2", b"second")]);
    let origin = SocketAddr::new(server.ip(), 80);
    let b1 = fetch_via(&mut w.sim, &w.browser, origin, Request::get("/1", "h"));
    let b2 = fetch_via(&mut w.sim, &w.browser, origin, Request::get("/2", "h"));
    w.sim.run_until(Timestamp::from_secs(5));
    assert!(String::from_utf8_lossy(&b1.borrow()).contains("first"));
    assert!(String::from_utf8_lossy(&b2.borrow()).contains("second"));
}

#[test]
fn store_save_load_round_trip_from_recording() {
    let mut w = world();
    let ids = PacketIdGen::new();
    let server = Host::new_in(IpAddr::new(10, 1, 0, 1), ids, &w.root);
    OriginServer::install(&server, 80, vec![("/", b"content")]);
    fetch_via(
        &mut w.sim,
        &w.browser,
        SocketAddr::new(server.ip(), 80),
        Request::get("/", "h"),
    );
    w.sim.run_until(Timestamp::from_secs(5));

    let recorded = w.shell.recorded();
    let dir = std::env::temp_dir().join("mm-record-roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("rec.json");
    recorded.save(&path).unwrap();
    let back = mm_record::StoredSite::load(&path).unwrap();
    assert_eq!(back, recorded);
    std::fs::remove_file(&path).unwrap();
}
