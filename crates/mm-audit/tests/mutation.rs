//! Mutation tests: inject one known defect into otherwise-correct
//! machinery and assert the auditor reports exactly the violation that
//! defect should produce — no more, no less — while the un-mutated
//! twin of each scenario audits clean. This is the evidence that the
//! checks have teeth *and* don't cry wolf.

use std::collections::VecDeque;

use bytes::Bytes;
use mm_audit::Auditor;
use mm_capture::{Dir, PacketEvent, PacketEventKind, PacketTap, PointKind, TapPoint};
use mm_metrics::{FlowSample, MetricsSink};
use mm_net::{IpAddr, Packet, SocketAddr, TcpFlags, TcpSegment};
use mm_shells::{
    DropTail, EnqueueResult, InstrumentedQdisc, Qdisc, QdiscStats, QueueLimit, TappedQdisc,
};
use mm_sim::Timestamp;

fn pkt(id: u64, payload: usize) -> Packet {
    Packet {
        id,
        src: SocketAddr::new(IpAddr::new(1, 1, 1, 1), 1),
        dst: SocketAddr::new(IpAddr::new(2, 2, 2, 2), 2),
        segment: TcpSegment {
            flags: TcpFlags::ACK,
            seq: 0,
            ack: 0,
            window: 0,
            sack: Default::default(),
            payload: Bytes::from(vec![0; payload]),
        },
        corrupted: false,
    }
}

fn t(ms: u64) -> Timestamp {
    Timestamp::from_millis(ms)
}

fn link_down() -> TapPoint {
    TapPoint {
        kind: PointKind::Link,
        index: 1,
        dir: Dir::Down,
    }
}

/// Distinct violation codes in report order, deduplicated.
fn codes(report: &mm_audit::AuditReport) -> Vec<&'static str> {
    let mut out: Vec<&'static str> = Vec::new();
    for v in &report.violations {
        if !out.contains(&v.code) {
            out.push(v.code);
        }
    }
    out
}

/// The mutant: a FIFO qdisc that accepts every packet but silently
/// discards every second one — the packet is never stored, and
/// `stats.dropped` never counts it. Exactly the defect the auditor's
/// qdisc cross-checks (gauge-vs-ledger, drop-counter-vs-tap) exist to
/// catch, because neither the tap decorator nor the instrument can see
/// a loss the discipline refuses to admit to.
struct LeakyQdisc {
    q: VecDeque<Packet>,
    bytes: usize,
    stats: QdiscStats,
    offered: u64,
}

impl LeakyQdisc {
    fn new() -> Self {
        LeakyQdisc {
            q: VecDeque::new(),
            bytes: 0,
            stats: QdiscStats::default(),
            offered: 0,
        }
    }
}

impl Qdisc for LeakyQdisc {
    fn enqueue(&mut self, _now: Timestamp, pkt: Packet) -> EnqueueResult {
        self.offered += 1;
        self.stats.enqueued += 1;
        if self.offered.is_multiple_of(2) {
            // The defect: claim acceptance, keep nothing, count nothing.
            return EnqueueResult::Accepted;
        }
        self.bytes += pkt.wire_size();
        self.q.push_back(pkt);
        EnqueueResult::Accepted
    }

    fn dequeue(&mut self, _now: Timestamp) -> Option<Packet> {
        let pkt = self.q.pop_front()?;
        self.bytes -= pkt.wire_size();
        self.stats.dequeued += 1;
        Some(pkt)
    }

    fn peek_size(&self) -> Option<usize> {
        self.q.front().map(Packet::wire_size)
    }

    fn len_packets(&self) -> usize {
        self.q.len()
    }

    fn len_bytes(&self) -> usize {
        self.bytes
    }

    fn stats(&self) -> QdiscStats {
        self.stats
    }
}

/// Drive three enqueues then drain, through the production decorator
/// stack (tap outside, instrument inside) with both event streams
/// feeding one auditor — mirroring exactly how the harness wires a
/// shell's queue.
fn drive(auditor: &Auditor, inner: Box<dyn Qdisc>) {
    let instrumented = InstrumentedQdisc::new(inner, auditor.metrics_handle(), "down");
    let mut q = TappedQdisc::new(Box::new(instrumented), auditor.tap_handle(), link_down());
    for i in 0..3u64 {
        q.enqueue(t(i), pkt(i, 1000));
    }
    for i in 0..3u64 {
        q.dequeue(t(10 + i));
    }
}

#[test]
fn silently_leaking_qdisc_trips_gauge_and_drop_counter_checks() {
    let auditor = Auditor::for_load(1);
    drive(&auditor, Box::new(LeakyQdisc::new()));
    let report = auditor.finish();
    // The leak surfaces in both cross-checks — the qdisc's depth gauge
    // disagrees with the packet ledger while the leaked packet is
    // outstanding, and at the end the tap-attributed drop (the shadow
    // FIFO pins the vanished packet) has no drop-counter counterpart —
    // and in nothing else: conservation still balances because the tap
    // accounted the victim.
    assert_eq!(
        codes(&report),
        vec!["gauge-ledger-mismatch", "counter-drops-mismatch"],
        "unexpected violation mix: {:?}",
        report.violations
    );
    assert!(report
        .violations
        .iter()
        .any(|v| v.code == "counter-drops-mismatch" && v.scope == "link1-down"));
}

#[test]
fn honest_qdisc_through_the_same_harness_audits_clean() {
    // Un-mutated twin: a DropTail that genuinely refuses its third
    // packet (and counts the refusal) produces zero violations.
    let auditor = Auditor::for_load(2);
    drive(&auditor, Box::new(DropTail::new(QueueLimit::Packets(2))));
    let report = auditor.finish();
    assert!(report.is_clean(), "violations: {:?}", report.violations);
    assert!(report.digests.contains_key("link1-down"));
    assert!(report.packets > 0);
}

#[test]
fn cwnd_overfilled_by_one_segment_is_flagged_exactly() {
    let auditor = Auditor::for_load(3);
    let flow = MetricsSink::flow_open(&auditor, "100.64.0.2:3300-10.0.0.1:80").unwrap();
    let full = FlowSample {
        event: "tx",
        cwnd: 10 * 1460,
        bytes_in_flight: 10 * 1460,
        rwnd: 1 << 30,
        mss: 1460,
        ..FlowSample::default()
    };
    // Flight exactly equal to cwnd is legal — the check is strict.
    MetricsSink::flow_sample(&auditor, flow, &full);
    assert_eq!(auditor.violation_count(), 0);
    let over = FlowSample {
        bytes_in_flight: 11 * 1460,
        ..full
    };
    MetricsSink::flow_sample(&auditor, flow, &over);
    let report = auditor.finish();
    assert_eq!(codes(&report), vec!["cwnd-overfill"]);
    assert_eq!(report.violations.len(), 1);
    assert_eq!(report.violations[0].scope, "100.64.0.2:3300-10.0.0.1:80");
}

/// A clean two-packet lifecycle at a link point, as raw tap events.
fn clean_stream() -> Vec<PacketEvent> {
    let ev = |kind, pkt_id, t_ns| PacketEvent {
        t_ns,
        kind,
        point: link_down(),
        pkt_id,
        size_bytes: 1040,
        sojourn_ns: 0,
        flow: 0x42,
    };
    vec![
        ev(PacketEventKind::Enqueue, 0, 1_000),
        ev(PacketEventKind::Enqueue, 1, 2_000),
        ev(PacketEventKind::Dequeue, 0, 3_000),
        ev(PacketEventKind::Dequeue, 1, 4_000),
    ]
}

#[test]
fn truncated_capture_stream_is_flagged_and_changes_the_digest() {
    let whole = Auditor::for_load(4);
    for ev in &clean_stream() {
        PacketTap::on_packet(&whole, ev);
    }
    let whole = whole.finish();
    assert!(whole.is_clean(), "violations: {:?}", whole.violations);

    // Mutation: the same stream minus its first event — a capture file
    // truncated at the head. The orphaned dequeue is called out per
    // event, and the end-of-load ledger states the resulting imbalance.
    let truncated = Auditor::for_load(4);
    for ev in &clean_stream()[1..] {
        PacketTap::on_packet(&truncated, ev);
    }
    let truncated = truncated.finish();
    assert_eq!(
        codes(&truncated),
        vec!["untracked-dequeue", "conservation", "conservation-bytes"]
    );
    // And the equivalence digest moves, so `mmaudit --compare` against
    // the intact run's report exits nonzero.
    assert_ne!(whole.digests["link1-down"], truncated.digests["link1-down"]);
    assert_ne!(
        whole.digests["conn:0000000000000042"],
        truncated.digests["conn:0000000000000042"]
    );
}
