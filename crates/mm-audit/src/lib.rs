//! # mm-audit — runtime conformance auditor and equivalence digests
//!
//! Every observer hook in the workspace (`MetricsSink`, `PacketTap`,
//! `SpanSink`) was built to *record* what the simulation does. This
//! crate turns the same event streams into a *judge*: an [`Auditor`]
//! implements all three hook traits and validates, online, the
//! invariants the rest of the stack promises —
//!
//! - **packet conservation** per instrumented shell point: every
//!   dequeue, drop and delivery must refer to a packet the ledger knows
//!   about, sizes must agree, and at the end of the run
//!   `enqueued == dequeued + evicted + residual backlog` in both
//!   packets and bytes, cross-checked against the qdisc's own
//!   `qdisc_*_backlog_now_packets` gauge and `*_total` counters;
//! - **TCP conformance** per traced connection: window-gated transmit
//!   bursts never leave more in flight than cwnd (or the peer's
//!   window), the incrementally maintained SACK pipe equals the
//!   definitional walk, SACK blocks are well-formed/disjoint/in-window,
//!   RACK never marks a segment at-or-after its own clock, and the
//!   pacer never releases more than one segment ahead of its token
//!   clock;
//! - **HTTP/span consistency**: every browser `Done` matches a server
//!   `ServerSent` byte count for the same request path, and each resource's
//!   phase spans tile its resource span exactly (the contract `mmpath`'s
//!   critical-path walk stands on).
//!
//! Violations are *accumulated*, never panicked: an auditor in a CI
//! smoke run or a soak must report everything it saw, not die on the
//! first anomaly. [`Auditor::finish`] returns an [`AuditReport`] whose
//! JSONL form the `mmaudit` binary renders and gates on.
//!
//! The report also carries **equivalence digests**: one 64-bit hash per
//! link point and per connection, folded from per-packet event hashes
//! with a commutative combine (wrapping add), so the digest of a run is
//! *order-insensitive* — a serial site loop and a thread-sharded one
//! (`bench::parallel_map`) must produce identical digests, and
//! `mmaudit --compare a/ b/` exits nonzero when any scope differs.
//! Process-global load ids are deliberately excluded from the hash:
//! they are claim-order-dependent and would differ across shardings.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use mm_capture::{
    Dir, HttpEvent, HttpPhase, PacketEvent, PacketEventKind, PacketTap, PointKind, TapHandle,
    TapPoint,
};
use mm_metrics::{FlowSample, MetricsHandle, MetricsSink};
use mm_trace::{Span, SpanHandle, SpanKind, SpanSink, NO_RESOURCE};

/// One invariant breach. `code` is a stable machine-readable slug
/// (`cwnd-overfill`, `untracked-dequeue`, ...), `scope` names the
/// entity (a tap-point label, a flow description, `res:<n>`), and
/// `detail` carries the expected/actual values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub code: &'static str,
    pub scope: String,
    pub detail: String,
}

/// Everything one audited load produced.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AuditReport {
    /// Process-unique load id (claim-order-dependent; excluded from
    /// digests).
    pub load: u64,
    pub violations: Vec<Violation>,
    /// Violations discarded past the in-memory cap.
    pub dropped_violations: u64,
    /// Order-insensitive per-scope equivalence digests: tap-point
    /// labels (`link1-down`) and connections (`conn:<flow key>`).
    pub digests: BTreeMap<String, u64>,
    pub packets: u64,
    pub http_events: u64,
    pub samples: u64,
    pub spans: u64,
}

impl AuditReport {
    /// True when the run satisfied every audited invariant.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.dropped_violations == 0
    }

    /// Serialize as the flat JSONL `mmaudit` consumes: one line per
    /// violation, one per digest scope, and a trailing summary.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&format!(
                "{{\"ev\":\"violation\",\"load\":{},\"code\":\"{}\",\"scope\":\"{}\",\"detail\":\"{}\"}}\n",
                self.load,
                escape_json(v.code),
                escape_json(&v.scope),
                escape_json(&v.detail),
            ));
        }
        for (scope, hash) in &self.digests {
            out.push_str(&format!(
                "{{\"ev\":\"digest\",\"load\":{},\"scope\":\"{}\",\"hash\":{}}}\n",
                self.load,
                escape_json(scope),
                hash,
            ));
        }
        out.push_str(&format!(
            concat!(
                "{{\"ev\":\"audit_summary\",\"load\":{},\"violations\":{},",
                "\"dropped_violations\":{},\"packets\":{},\"http_events\":{},",
                "\"samples\":{},\"spans\":{}}}\n"
            ),
            self.load,
            self.violations.len(),
            self.dropped_violations,
            self.packets,
            self.http_events,
            self.samples,
            self.spans,
        ));
        out
    }
}

/// FNV-1a over a byte string; the workspace's standard cheap stable hash.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hash of one packet event for the equivalence digest. Everything
/// deterministic about the event participates; the process-global load
/// id does not (it depends on claim order across threads).
fn packet_digest(ev: &PacketEvent) -> u64 {
    let mut buf = [0u8; 41];
    buf[0] = match ev.kind {
        PacketEventKind::Enqueue => 0,
        PacketEventKind::Dequeue => 1,
        PacketEventKind::Drop => 2,
        PacketEventKind::Deliver => 3,
    };
    buf[1..9].copy_from_slice(&ev.pkt_id.to_le_bytes());
    buf[9..17].copy_from_slice(&(ev.size_bytes as u64).to_le_bytes());
    buf[17..25].copy_from_slice(&ev.sojourn_ns.to_le_bytes());
    buf[25..33].copy_from_slice(&ev.t_ns.to_le_bytes());
    buf[33..41].copy_from_slice(&ev.flow.to_le_bytes());
    fnv1a64(&buf)
}

/// Per-tap-point packet ledger.
struct Ledger {
    point: TapPoint,
    enq: u64,
    enq_bytes: u64,
    deq: u64,
    deq_bytes: u64,
    refused: u64,
    evicted: u64,
    evicted_bytes: u64,
    delivered: u64,
    /// pkt id → wire size, for packets currently inside the queue.
    outstanding: BTreeMap<u64, u32>,
    /// Dequeued but not yet delivered (queue points only).
    in_transit: BTreeMap<u64, u32>,
    digest: u64,
}

impl Ledger {
    fn new(point: TapPoint) -> Ledger {
        Ledger {
            point,
            enq: 0,
            enq_bytes: 0,
            deq: 0,
            deq_bytes: 0,
            refused: 0,
            evicted: 0,
            evicted_bytes: 0,
            delivered: 0,
            outstanding: BTreeMap::new(),
            in_transit: BTreeMap::new(),
            digest: 0,
        }
    }

    fn backlog_packets(&self) -> u64 {
        self.outstanding.len() as u64
    }

    fn backlog_bytes(&self) -> u64 {
        self.outstanding.values().map(|&s| s as u64).sum()
    }
}

/// Gauge cross-check state for one direction's instrumented qdisc.
#[derive(Default)]
struct GaugeTrack {
    last: Option<f64>,
    /// Deferred gauge-vs-ledger mismatches (dropped wholesale if the
    /// direction turns out to have several links — the per-direction
    /// gauge names cannot be attributed then).
    bad: Vec<Violation>,
    /// Set when a second distinct link point appears in this direction.
    ambiguous: bool,
}

/// Per-traced-connection state.
struct FlowState {
    desc: String,
    samples: u64,
}

type PointKey = (u8, u32, u8);

fn point_key(p: TapPoint) -> PointKey {
    let kind = match p.kind {
        PointKind::Link => 0,
        PointKind::Delay => 1,
        PointKind::Loss => 2,
    };
    let dir = match p.dir {
        Dir::Up => 0,
        Dir::Down => 1,
    };
    (kind, p.index, dir)
}

fn dir_index(d: Dir) -> usize {
    match d {
        Dir::Up => 0,
        Dir::Down => 1,
    }
}

struct State {
    load: u64,
    violations: Vec<Violation>,
    dropped_violations: u64,
    points: BTreeMap<PointKey, Ledger>,
    /// Per-connection digests keyed by the packet flow fingerprint.
    conn_digests: BTreeMap<u64, u64>,
    /// The single instrumented link point per direction, if unique.
    link_point: [Option<u32>; 2],
    gauges: [GaugeTrack; 2],
    counters: BTreeMap<&'static str, u64>,
    flows: Vec<FlowState>,
    /// Request path → body sizes the servers reported sending for it.
    /// Keyed by path because the two sides name resources differently:
    /// servers see the request target (`/asset/1.css`), browsers the
    /// absolute URL — and distinct origins may serve the same path.
    srv_sent: BTreeMap<String, Vec<u64>>,
    http_events: u64,
    packets: u64,
    spans: u64,
    /// Per-resource phase intervals and resource envelopes for the
    /// finish-time tiling check.
    phase_spans: BTreeMap<u32, Vec<(u64, u64)>>,
    resource_spans: BTreeMap<u32, (u64, u64)>,
    span_overflow: bool,
}

/// Hard cap on retained violations; a systematically broken run should
/// produce a bounded report, not an unbounded allocation.
const MAX_VIOLATIONS: usize = 1024;
/// Hard cap on retained span intervals (matches `TraceBuffer`'s bound).
const MAX_SPANS: u64 = 64 * 1024;
/// Gauge mismatches retained per direction — one is diagnostic, a
/// thousand is noise.
const MAX_GAUGE_VIOLATIONS: usize = 8;

impl State {
    fn push(&mut self, code: &'static str, scope: String, detail: String) {
        if self.violations.len() >= MAX_VIOLATIONS {
            self.dropped_violations += 1;
            return;
        }
        self.violations.push(Violation {
            code,
            scope,
            detail,
        });
    }
}

/// The conformance auditor: one per audited page load. Clones share
/// state, so one auditor can be registered as the metrics sink, the
/// packet tap and the span sink of the same world at once.
///
/// Auditors only observe (they implement the same contracts as every
/// other sink) and never panic on bad input — anomalies become
/// [`Violation`]s in the final report.
#[derive(Clone)]
pub struct Auditor {
    inner: Rc<RefCell<State>>,
    next_span_id: Rc<Cell<u64>>,
}

impl Auditor {
    /// An auditor for one page load (the id tags report lines only; it
    /// never enters the digests).
    pub fn for_load(load: u64) -> Auditor {
        Auditor {
            inner: Rc::new(RefCell::new(State {
                load,
                violations: Vec::new(),
                dropped_violations: 0,
                points: BTreeMap::new(),
                conn_digests: BTreeMap::new(),
                link_point: [None, None],
                gauges: [GaugeTrack::default(), GaugeTrack::default()],
                counters: BTreeMap::new(),
                flows: Vec::new(),
                srv_sent: BTreeMap::new(),
                http_events: 0,
                packets: 0,
                spans: 0,
                phase_spans: BTreeMap::new(),
                resource_spans: BTreeMap::new(),
                span_overflow: false,
            })),
            next_span_id: Rc::new(Cell::new(0)),
        }
    }

    /// This auditor as a TCP/qdisc metrics sink.
    pub fn metrics_handle(&self) -> MetricsHandle {
        MetricsHandle::new(self.clone())
    }

    /// This auditor as a per-packet tap.
    pub fn tap_handle(&self) -> TapHandle {
        TapHandle::new(self.clone())
    }

    /// This auditor as a causal-span sink.
    pub fn span_handle(&self) -> SpanHandle {
        SpanHandle::new(Rc::new(self.clone()))
    }

    /// Violations recorded so far (finish-time checks not included).
    pub fn violation_count(&self) -> usize {
        self.inner.borrow().violations.len()
    }

    /// Run the end-of-load checks (conservation, counter and gauge
    /// cross-checks, span tiling) and assemble the report.
    pub fn finish(&self) -> AuditReport {
        let mut st = self.inner.borrow_mut();
        self.finish_ledgers(&mut st);
        self.finish_spans(&mut st);
        let mut digests = BTreeMap::new();
        for led in st.points.values() {
            digests.insert(led.point.label(), led.digest);
        }
        for (flow, hash) in &st.conn_digests {
            digests.insert(format!("conn:{flow:016x}"), *hash);
        }
        AuditReport {
            load: st.load,
            violations: st.violations.clone(),
            dropped_violations: st.dropped_violations,
            digests,
            packets: st.packets,
            http_events: st.http_events,
            samples: st.flows.iter().map(|f| f.samples).sum(),
            spans: st.spans,
        }
    }

    fn finish_ledgers(&self, st: &mut State) {
        let mut pending: Vec<(&'static str, String, String)> = Vec::new();
        for led in st.points.values() {
            let scope = led.point.label();
            // Packet/byte conservation. With a consistent event stream
            // these hold by construction; they fail exactly when the
            // per-event checks saw untracked or duplicated ids, and
            // state the imbalance in one line.
            let accounted = led.deq + led.evicted + led.backlog_packets();
            if led.enq != accounted {
                pending.push((
                    "conservation",
                    scope.clone(),
                    format!(
                        "enqueued {} != dequeued {} + evicted {} + backlog {}",
                        led.enq,
                        led.deq,
                        led.evicted,
                        led.backlog_packets()
                    ),
                ));
            }
            let accounted_bytes = led.deq_bytes + led.evicted_bytes + led.backlog_bytes();
            if led.enq_bytes != accounted_bytes {
                pending.push((
                    "conservation-bytes",
                    scope.clone(),
                    format!(
                        "enqueued {} B != dequeued {} B + evicted {} B + backlog {} B",
                        led.enq_bytes,
                        led.deq_bytes,
                        led.evicted_bytes,
                        led.backlog_bytes()
                    ),
                ));
            }
        }
        // Qdisc cross-checks, per direction, only when exactly one link
        // point exists there (the qdisc metric names carry no index).
        for di in 0..2 {
            let track = std::mem::take(&mut st.gauges[di]);
            if track.ambiguous {
                continue;
            }
            let Some(index) = st.link_point[di] else {
                continue;
            };
            let dir = if di == 0 { Dir::Up } else { Dir::Down };
            let key = point_key(TapPoint {
                kind: PointKind::Link,
                index,
                dir,
            });
            let Some(led) = st.points.get(&key) else {
                continue;
            };
            let scope = led.point.label();
            for v in track.bad {
                pending.push((v.code, v.scope, v.detail));
            }
            if let Some(last) = track.last {
                if last != led.backlog_packets() as f64 {
                    pending.push((
                        "gauge-final-mismatch",
                        scope.clone(),
                        format!(
                            "final backlog gauge {last} != ledger backlog {}",
                            led.backlog_packets()
                        ),
                    ));
                }
            }
            let (enq_name, drop_name) = if di == 0 {
                ("qdisc_up_enqueues_total", "qdisc_up_drops_total")
            } else {
                ("qdisc_down_enqueues_total", "qdisc_down_drops_total")
            };
            // An instrumented qdisc always counts enqueues; only check
            // when one reported (the tap can run without instruments).
            if let Some(&enq_total) = st.counters.get(enq_name) {
                // The instrument counts every offer; refusals included.
                let offered = led.enq + led.refused;
                if enq_total != offered {
                    pending.push((
                        "counter-enqueues-mismatch",
                        scope.clone(),
                        format!("{enq_name} {enq_total} != tap enqueue+refused {offered}"),
                    ));
                }
                let drops_total = st.counters.get(drop_name).copied().unwrap_or(0);
                let dropped = led.refused + led.evicted;
                if drops_total != dropped {
                    pending.push((
                        "counter-drops-mismatch",
                        scope.clone(),
                        format!("{drop_name} {drops_total} != tap drops {dropped}"),
                    ));
                }
            }
        }
        for (code, scope, detail) in pending {
            st.push(code, scope, detail);
        }
    }

    fn finish_spans(&self, st: &mut State) {
        if st.span_overflow {
            st.push(
                "span-overflow",
                "spans".to_string(),
                format!("more than {MAX_SPANS} spans; tiling not checked"),
            );
            return;
        }
        let phase_spans = std::mem::take(&mut st.phase_spans);
        for (res, mut phases) in phase_spans {
            let scope = format!("res:{res}");
            phases.sort_unstable();
            let mut broken = None;
            for w in phases.windows(2) {
                if w[0].1 != w[1].0 {
                    broken = Some(format!(
                        "phase gap/overlap: [{},{}] then [{},{}]",
                        w[0].0, w[0].1, w[1].0, w[1].1
                    ));
                    break;
                }
            }
            if broken.is_none() {
                if let Some(&(t0, t1)) = st.resource_spans.get(&res) {
                    let first = phases.first().map(|p| p.0).unwrap_or(t0);
                    let last = phases.last().map(|p| p.1).unwrap_or(t1);
                    if first != t0 || last != t1 {
                        broken = Some(format!(
                            "phases cover [{first},{last}], resource span is [{t0},{t1}]"
                        ));
                    }
                }
            }
            if let Some(detail) = broken {
                st.push("span-tiling", scope, detail);
            }
        }
    }
}

impl PacketTap for Auditor {
    fn on_packet(&self, ev: &PacketEvent) {
        let mut st = self.inner.borrow_mut();
        st.packets += 1;
        let h = packet_digest(ev);
        if ev.flow != 0 {
            let d = st.conn_digests.entry(ev.flow).or_insert(0);
            *d = d.wrapping_add(h);
        }
        if ev.point.kind == PointKind::Link {
            let di = dir_index(ev.point.dir);
            match st.link_point[di] {
                None => st.link_point[di] = Some(ev.point.index),
                Some(i) if i == ev.point.index => {}
                Some(_) => {
                    // Two links in one direction: the per-direction
                    // qdisc gauges/counters cannot be attributed.
                    st.gauges[di].ambiguous = true;
                    st.gauges[di].bad.clear();
                }
            }
        }
        let led = st
            .points
            .entry(point_key(ev.point))
            .or_insert_with(|| Ledger::new(ev.point));
        led.digest = led.digest.wrapping_add(h);
        let mut bad: Option<(&'static str, String)> = None;
        match ev.kind {
            PacketEventKind::Enqueue => {
                led.enq += 1;
                led.enq_bytes += ev.size_bytes as u64;
                if led.outstanding.insert(ev.pkt_id, ev.size_bytes).is_some() {
                    bad = Some((
                        "dup-enqueue",
                        format!("pkt {} enqueued while already queued", ev.pkt_id),
                    ));
                }
            }
            PacketEventKind::Dequeue => {
                led.deq += 1;
                led.deq_bytes += ev.size_bytes as u64;
                match led.outstanding.remove(&ev.pkt_id) {
                    None => {
                        bad = Some((
                            "untracked-dequeue",
                            format!("pkt {} dequeued but never enqueued", ev.pkt_id),
                        ));
                    }
                    Some(size) if size != ev.size_bytes => {
                        bad = Some((
                            "size-mismatch",
                            format!(
                                "pkt {} enqueued at {size} B, dequeued at {} B",
                                ev.pkt_id, ev.size_bytes
                            ),
                        ));
                    }
                    Some(_) => {}
                }
                led.in_transit.insert(ev.pkt_id, ev.size_bytes);
            }
            PacketEventKind::Drop => {
                match led.outstanding.remove(&ev.pkt_id) {
                    // In-queue victim (drop-head eviction, AQM).
                    Some(size) => {
                        led.evicted += 1;
                        led.evicted_bytes += size as u64;
                    }
                    // Refused at the door (tail drop, loss shell).
                    None => led.refused += 1,
                }
            }
            PacketEventKind::Deliver => {
                led.delivered += 1;
                // Only queue points (those that enqueue) promise the
                // dequeue→deliver pairing; delay/loss shells deliver
                // directly.
                if led.enq > 0 && led.in_transit.remove(&ev.pkt_id).is_none() {
                    bad = Some((
                        "unmatched-deliver",
                        format!("pkt {} delivered but never dequeued", ev.pkt_id),
                    ));
                }
            }
        }
        if let Some((code, detail)) = bad {
            let scope = ev.point.label();
            st.push(code, scope, detail);
        }
    }

    fn on_http(&self, ev: &HttpEvent) {
        let mut st = self.inner.borrow_mut();
        st.http_events += 1;
        match ev.phase {
            HttpPhase::ServerSent => {
                let path = url_path(&ev.url).to_string();
                st.srv_sent.entry(path).or_default().push(ev.bytes);
            }
            HttpPhase::Done => match st.srv_sent.get(url_path(&ev.url)) {
                None => {
                    let scope = ev.url.clone();
                    st.push(
                        "http-done-unmatched",
                        scope,
                        format!("browser finished {} B but no server send seen", ev.bytes),
                    );
                }
                // Any origin having sent this exact size for this path
                // satisfies the check; a browser byte count no server
                // produced is the defect (truncated or padded body).
                Some(sent) if !sent.contains(&ev.bytes) => {
                    let detail = format!("browser finished {} B, server sent {sent:?} B", ev.bytes);
                    let scope = ev.url.clone();
                    st.push("http-bytes-mismatch", scope, detail);
                }
                Some(_) => {}
            },
            _ => {}
        }
    }
}

impl MetricsSink for Auditor {
    fn counter_add(&self, name: &'static str, delta: u64) {
        let mut st = self.inner.borrow_mut();
        *st.counters.entry(name).or_insert(0) += delta;
    }

    fn gauge_set(&self, name: &'static str, value: f64) {
        let di = match name {
            "qdisc_up_backlog_now_packets" => 0,
            "qdisc_down_backlog_now_packets" => 1,
            _ => return,
        };
        let mut st = self.inner.borrow_mut();
        if st.gauges[di].ambiguous {
            return;
        }
        // Event order within one qdisc operation: the instrumented
        // qdisc (inner) publishes its new depth *before* the tap
        // (outer) emits the operation's packet events. So at each
        // gauge update, the ledger has digested everything up to the
        // *previous* operation — whose closing gauge value it must
        // match exactly.
        let ledger_backlog = st.link_point[di].and_then(|index| {
            let dir = if di == 0 { Dir::Up } else { Dir::Down };
            let key = point_key(TapPoint {
                kind: PointKind::Link,
                index,
                dir,
            });
            st.points.get(&key).map(Ledger::backlog_packets)
        });
        let track = &mut st.gauges[di];
        if let (Some(prev), Some(backlog)) = (track.last, ledger_backlog) {
            if prev != backlog as f64 && track.bad.len() < MAX_GAUGE_VIOLATIONS {
                track.bad.push(Violation {
                    code: "gauge-ledger-mismatch",
                    scope: name.to_string(),
                    detail: format!("qdisc reported depth {prev}, packet ledger holds {backlog}"),
                });
            }
        }
        track.last = Some(value);
    }

    fn flow_open(&self, desc: &str) -> Option<u64> {
        let mut st = self.inner.borrow_mut();
        st.flows.push(FlowState {
            desc: desc.to_string(),
            samples: 0,
        });
        Some((st.flows.len() - 1) as u64)
    }

    fn flow_sample(&self, flow: u64, sample: &FlowSample) {
        let mut st = self.inner.borrow_mut();
        let Some(fs) = st.flows.get_mut(flow as usize) else {
            return;
        };
        fs.samples += 1;
        let scope = fs.desc.clone();
        let mut bad: Vec<(&'static str, String)> = Vec::new();
        if sample.snd_una > sample.snd_nxt {
            bad.push((
                "seq-order",
                format!("snd_una {} > snd_nxt {}", sample.snd_una, sample.snd_nxt),
            ));
        }
        if sample.pipe != sample.pipe_walk {
            bad.push((
                "pipe-divergence",
                format!(
                    "incremental pipe {} != retransmission-queue walk {}",
                    sample.pipe, sample.pipe_walk
                ),
            ));
        }
        // RACK's loss clock: a mark records the (sent-time, end-seq) of
        // a segment declared lost, which must predate the most recently
        // delivered segment that drives the clock.
        let mark = (sample.rack_mark_ns, sample.rack_mark_end);
        if mark != (0, 0) && mark >= (sample.rack_clock_ns, sample.rack_clock_end) {
            bad.push((
                "rack-mark-order",
                format!(
                    "mark ({},{}) at-or-after clock ({},{})",
                    sample.rack_mark_ns,
                    sample.rack_mark_end,
                    sample.rack_clock_ns,
                    sample.rack_clock_end
                ),
            ));
        }
        if sample.event == "tx" {
            // Samples tagged "tx" come only from window-gated new-data
            // bursts; loss-recovery paths with their own budgets
            // (limited transmit, TLP, PRR) are deliberately untagged.
            if sample.bytes_in_flight > sample.cwnd {
                bad.push((
                    "cwnd-overfill",
                    format!(
                        "{} B in flight after transmit, cwnd {} B",
                        sample.bytes_in_flight, sample.cwnd
                    ),
                ));
            }
            if sample.bytes_in_flight > sample.rwnd {
                bad.push((
                    "rwnd-overfill",
                    format!(
                        "{} B in flight after transmit, peer window {} B",
                        sample.bytes_in_flight, sample.rwnd
                    ),
                ));
            }
            if sample.pacing_excess > sample.mss {
                bad.push((
                    "pacing-excess",
                    format!(
                        "released {} B ahead of the pacer clock (> 1 MSS = {} B)",
                        sample.pacing_excess, sample.mss
                    ),
                ));
            }
        }
        if sample.event == "sack" {
            check_sack_blocks(&sample.sack_blocks, sample.rcv_nxt, sample.rwnd, &mut bad);
        }
        for (code, detail) in bad {
            st.push(code, scope.clone(), detail);
        }
    }
}

/// Validate one ack's SACK blocks. The receiver reports blocks in
/// RFC 2018 most-recent-first order, so the auditor sort-normalizes
/// before the disjointness walk.
fn check_sack_blocks(
    blocks: &[(u64, u64)],
    rcv_nxt: u64,
    window: u64,
    bad: &mut Vec<(&'static str, String)>,
) {
    if blocks.len() > 3 {
        bad.push((
            "sack-count",
            format!("{} SACK blocks on one ack (max 3)", blocks.len()),
        ));
    }
    let mut sorted = blocks.to_vec();
    sorted.sort_unstable();
    for &(start, end) in &sorted {
        if start >= end {
            bad.push((
                "sack-empty-block",
                format!("block [{start},{end}) is empty"),
            ));
        }
        if start < rcv_nxt {
            bad.push((
                "sack-below-ack",
                format!("block [{start},{end}) starts below rcv_nxt {rcv_nxt}"),
            ));
        }
        if end > rcv_nxt.saturating_add(window) {
            bad.push((
                "sack-beyond-window",
                format!(
                    "block [{start},{end}) ends beyond window edge {}",
                    rcv_nxt.saturating_add(window)
                ),
            ));
        }
    }
    for w in sorted.windows(2) {
        if w[1].0 < w[0].1 {
            bad.push((
                "sack-overlap",
                format!(
                    "blocks [{},{}) and [{},{}) overlap",
                    w[0].0, w[0].1, w[1].0, w[1].1
                ),
            ));
        }
    }
}

/// The path component a server request target and a browser's absolute
/// URL share: `http://host:80/asset/1.css` and `/asset/1.css` both map
/// to `/asset/1.css`. A string without a scheme is already a target; an
/// authority with no path means the root.
fn url_path(url: &str) -> &str {
    match url.find("://") {
        Some(i) => {
            let rest = &url[i + 3..];
            match rest.find('/') {
                Some(j) => &rest[j..],
                None => "/",
            }
        }
        None => url,
    }
}

impl SpanSink for Auditor {
    fn next_id(&self) -> u64 {
        let id = self.next_span_id.get() + 1;
        self.next_span_id.set(id);
        id
    }

    fn record(&self, span: Span) {
        let mut st = self.inner.borrow_mut();
        st.spans += 1;
        if span.res == NO_RESOURCE {
            return;
        }
        if st.spans > MAX_SPANS {
            st.span_overflow = true;
            return;
        }
        if span.kind == SpanKind::Resource {
            st.resource_spans.insert(span.res, (span.t0_ns, span.t1_ns));
        } else if span.kind.is_phase() {
            st.phase_spans
                .entry(span.res)
                .or_default()
                .push((span.t0_ns, span.t1_ns));
        }
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------
// Report parsing (the `mmaudit` side).

/// One violation parsed back from report JSONL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedViolation {
    pub load: u64,
    pub code: String,
    pub scope: String,
    pub detail: String,
}

/// An audit file parsed and aggregated across its loads.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParsedAudit {
    pub violations: Vec<ParsedViolation>,
    /// Per-scope digests combined across loads with the same
    /// commutative fold the auditor uses, so file order is irrelevant.
    pub digests: BTreeMap<String, u64>,
    pub loads: u64,
    pub packets: u64,
    pub samples: u64,
    pub spans: u64,
    pub dropped_violations: u64,
}

fn find_key(line: &str, key: &str) -> Option<usize> {
    let pat = format!("\"{key}\":");
    let bytes = line.as_bytes();
    let mut start = 0;
    while let Some(rel) = line[start..].find(&pat) {
        let pos = start + rel;
        if pos == 0 || bytes[pos - 1] != b'\\' {
            return Some(pos + pat.len());
        }
        start = pos + 1;
    }
    None
}

fn get_u64(line: &str, key: &str) -> Result<u64, String> {
    let at = find_key(line, key).ok_or_else(|| format!("missing field {key:?}"))?;
    let digits = &line[at..];
    let end = digits
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(digits.len());
    if end == 0 {
        return Err(format!("field {key:?} is not a number"));
    }
    digits[..end]
        .parse()
        .map_err(|e| format!("field {key:?}: {e}"))
}

fn get_str(line: &str, key: &str) -> Result<String, String> {
    let at = find_key(line, key).ok_or_else(|| format!("missing field {key:?}"))?;
    let rest = &line[at..];
    if !rest.starts_with('"') {
        return Err(format!("field {key:?} is not a string"));
    }
    let mut out = String::new();
    let mut chars = rest[1..].chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Ok(out),
            '\\' => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('u') => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16)
                        .map_err(|e| format!("field {key:?}: bad \\u escape: {e}"))?;
                    out.push(
                        char::from_u32(code)
                            .ok_or_else(|| format!("field {key:?}: bad codepoint {code}"))?,
                    );
                }
                other => return Err(format!("field {key:?}: bad escape {other:?}")),
            },
            c => out.push(c),
        }
    }
    Err(format!("field {key:?}: unterminated string"))
}

/// Parse audit-report JSONL (any concatenation of per-load reports).
pub fn parse_audit_jsonl(text: &str) -> Result<ParsedAudit, String> {
    let mut out = ParsedAudit::default();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fail = |e: String| format!("line {}: {e}", idx + 1);
        match get_str(line, "ev").map_err(&fail)?.as_str() {
            "violation" => out.violations.push(ParsedViolation {
                load: get_u64(line, "load").map_err(&fail)?,
                code: get_str(line, "code").map_err(&fail)?,
                scope: get_str(line, "scope").map_err(&fail)?,
                detail: get_str(line, "detail").map_err(&fail)?,
            }),
            "digest" => {
                let scope = get_str(line, "scope").map_err(&fail)?;
                let hash = get_u64(line, "hash").map_err(&fail)?;
                let d = out.digests.entry(scope).or_insert(0);
                *d = d.wrapping_add(hash);
            }
            "audit_summary" => {
                out.loads += 1;
                out.packets += get_u64(line, "packets").map_err(&fail)?;
                out.samples += get_u64(line, "samples").map_err(&fail)?;
                out.spans += get_u64(line, "spans").map_err(&fail)?;
                out.dropped_violations += get_u64(line, "dropped_violations").map_err(&fail)?;
            }
            other => return Err(fail(format!("unknown event type {other:?}"))),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point() -> TapPoint {
        TapPoint {
            kind: PointKind::Link,
            index: 1,
            dir: Dir::Down,
        }
    }

    fn ev(kind: PacketEventKind, pkt_id: u64, t_ns: u64) -> PacketEvent {
        PacketEvent {
            t_ns,
            kind,
            point: point(),
            pkt_id,
            size_bytes: 1500,
            sojourn_ns: 0,
            flow: 0xabcd,
        }
    }

    #[test]
    fn clean_packet_lifecycle_produces_no_violations() {
        let a = Auditor::for_load(0);
        for id in 0..10 {
            a.on_packet(&ev(PacketEventKind::Enqueue, id, id * 10));
            a.on_packet(&ev(PacketEventKind::Dequeue, id, id * 10 + 5));
            a.on_packet(&ev(PacketEventKind::Deliver, id, id * 10 + 5));
        }
        let report = a.finish();
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.packets, 30);
        assert!(report.digests.contains_key("link1-down"));
        assert!(report
            .digests
            .contains_key(&format!("conn:{:016x}", 0xabcd_u64)));
    }

    #[test]
    fn digests_are_order_insensitive() {
        let forward = Auditor::for_load(0);
        let backward = Auditor::for_load(7); // load id must not matter
        let events: Vec<PacketEvent> = (0..20)
            .flat_map(|id| {
                [
                    ev(PacketEventKind::Enqueue, id, id * 10),
                    ev(PacketEventKind::Dequeue, id, id * 10 + 3),
                ]
            })
            .collect();
        for e in &events {
            forward.on_packet(e);
        }
        for e in events.iter().rev() {
            backward.on_packet(e);
        }
        assert_eq!(forward.finish().digests, backward.finish().digests);
    }

    #[test]
    fn residual_backlog_balances_conservation() {
        let a = Auditor::for_load(0);
        a.on_packet(&ev(PacketEventKind::Enqueue, 1, 10));
        a.on_packet(&ev(PacketEventKind::Enqueue, 2, 20));
        a.on_packet(&ev(PacketEventKind::Dequeue, 1, 30));
        // pkt 2 still queued at end of run: not a violation.
        let report = a.finish();
        assert!(report.is_clean(), "{:?}", report.violations);
    }

    #[test]
    fn eviction_and_refusal_are_distinguished() {
        let a = Auditor::for_load(0);
        a.on_packet(&ev(PacketEventKind::Enqueue, 1, 10));
        a.on_packet(&ev(PacketEventKind::Drop, 1, 20)); // eviction
        a.on_packet(&ev(PacketEventKind::Drop, 2, 30)); // refusal
        assert!(a.finish().is_clean());
    }

    #[test]
    fn sack_most_recent_first_order_is_normalized() {
        let mut bad = Vec::new();
        // RFC 2018 receiver order: newest block first.
        check_sack_blocks(&[(3000, 4000), (1000, 2000)], 500, 1 << 20, &mut bad);
        assert!(bad.is_empty(), "{bad:?}");
        check_sack_blocks(&[(1000, 2500), (2000, 3000)], 500, 1 << 20, &mut bad);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].0, "sack-overlap");
    }

    #[test]
    fn report_jsonl_roundtrips() {
        let a = Auditor::for_load(3);
        a.on_packet(&ev(PacketEventKind::Enqueue, 1, 10));
        a.on_packet(&ev(PacketEventKind::Dequeue, 9, 20)); // untracked
        let report = a.finish();
        // The untracked dequeue, plus the packet and byte conservation
        // imbalances it causes at finish time.
        let codes: Vec<&str> = report.violations.iter().map(|v| v.code).collect();
        assert_eq!(
            codes,
            ["untracked-dequeue", "conservation", "conservation-bytes"]
        );
        let parsed = parse_audit_jsonl(&report.to_jsonl()).unwrap();
        assert_eq!(parsed.loads, 1);
        assert_eq!(parsed.violations.len(), 3);
        assert_eq!(parsed.violations[0].code, "untracked-dequeue");
        assert_eq!(parsed.violations[0].load, 3);
        let mut expect = BTreeMap::new();
        for (k, v) in &report.digests {
            expect.insert(k.clone(), *v);
        }
        assert_eq!(parsed.digests, expect);
    }

    #[test]
    fn parse_combines_digests_across_loads() {
        let a = Auditor::for_load(0);
        let b = Auditor::for_load(1);
        a.on_packet(&ev(PacketEventKind::Enqueue, 1, 10));
        b.on_packet(&ev(PacketEventKind::Enqueue, 2, 20));
        let ab = format!("{}{}", a.finish().to_jsonl(), b.finish().to_jsonl());
        let ba = format!("{}{}", b.finish().to_jsonl(), a.finish().to_jsonl());
        let pa = parse_audit_jsonl(&ab).unwrap();
        let pb = parse_audit_jsonl(&ba).unwrap();
        assert_eq!(pa.digests, pb.digests);
        assert_eq!(pa.loads, 2);
    }

    #[test]
    fn span_tiling_checked_per_resource() {
        let span = |kind, res, t0, t1| Span {
            load: 0,
            id: 0,
            parent: 0,
            kind,
            t0_ns: t0,
            t1_ns: t1,
            res,
            conn: 0,
            url: String::new(),
            detail: String::new(),
        };
        let a = Auditor::for_load(0);
        a.record(span(SpanKind::Resource, 0, 100, 400));
        a.record(span(SpanKind::Queued, 0, 100, 150));
        a.record(span(SpanKind::Transfer, 0, 150, 390));
        a.record(span(SpanKind::Parse, 0, 390, 400));
        // Resource 1 leaves a gap between phases.
        a.record(span(SpanKind::Resource, 1, 0, 300));
        a.record(span(SpanKind::Queued, 1, 0, 100));
        a.record(span(SpanKind::Transfer, 1, 120, 300));
        let report = a.finish();
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        assert_eq!(report.violations[0].code, "span-tiling");
        assert_eq!(report.violations[0].scope, "res:1");
        assert_eq!(report.spans, 7);
    }
}
