//! `mmaudit` — render and gate on runtime conformance audit reports.
//!
//! Report mode: `mmaudit <report.jsonl | dir>...` parses one or more
//! audit reports (a directory means `<dir>/audit.jsonl`), prints a
//! violation table grouped by code and a digest summary, and exits 1
//! when any violation was recorded — the CI zero-violation gate.
//!
//! Compare mode: `mmaudit --compare <a> <b>` combines each side's
//! per-scope equivalence digests (order-insensitively, so a serial run
//! and a sharded run of the same loads agree) and exits 1 when any
//! scope differs or is missing — the cross-run equivalence gate.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use mm_audit::{parse_audit_jsonl, ParsedAudit};

const USAGE: &str = "usage: mmaudit <report.jsonl | dir>...\n       mmaudit --compare <a> <b>";

fn fail(msg: &str) -> ExitCode {
    eprintln!("mmaudit: {msg}");
    ExitCode::from(2)
}

/// A directory argument means its `audit.jsonl`.
fn resolve(arg: &str) -> PathBuf {
    let p = Path::new(arg);
    if p.is_dir() {
        p.join("audit.jsonl")
    } else {
        p.to_path_buf()
    }
}

fn load(arg: &str) -> Result<ParsedAudit, String> {
    let path = resolve(arg);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse_audit_jsonl(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    if args[0] == "--compare" {
        if args.len() != 3 {
            return fail("--compare takes exactly two reports");
        }
        return compare(&args[1], &args[2]);
    }
    report(&args)
}

fn report(args: &[String]) -> ExitCode {
    let mut combined = ParsedAudit::default();
    for arg in args {
        match load(arg) {
            Ok(parsed) => {
                combined.violations.extend(parsed.violations);
                for (scope, hash) in parsed.digests {
                    let d = combined.digests.entry(scope).or_insert(0);
                    *d = d.wrapping_add(hash);
                }
                combined.loads += parsed.loads;
                combined.packets += parsed.packets;
                combined.samples += parsed.samples;
                combined.spans += parsed.spans;
                combined.dropped_violations += parsed.dropped_violations;
            }
            Err(e) => return fail(&e),
        }
    }
    println!(
        "{} load(s): {} packet event(s), {} flow sample(s), {} span(s), {} digest scope(s)",
        combined.loads,
        combined.packets,
        combined.samples,
        combined.spans,
        combined.digests.len()
    );
    if combined.violations.is_empty() && combined.dropped_violations == 0 {
        println!("no violations");
        return ExitCode::SUCCESS;
    }
    // Group by code; show each code's count, one example scope/detail.
    let mut by_code: BTreeMap<&str, (u64, &mm_audit::ParsedViolation)> = BTreeMap::new();
    for v in &combined.violations {
        by_code
            .entry(&v.code)
            .and_modify(|e| e.0 += 1)
            .or_insert((1, v));
    }
    println!();
    println!("{:<24} {:>7}  example", "violation", "count");
    println!("{:-<24} {:->7}  {:-<40}", "", "", "");
    for (code, (count, example)) in &by_code {
        println!(
            "{code:<24} {count:>7}  [load {}] {}: {}",
            example.load, example.scope, example.detail
        );
    }
    if combined.dropped_violations > 0 {
        println!(
            "... and {} violation(s) dropped past the per-load cap",
            combined.dropped_violations
        );
    }
    println!();
    println!("{} violation(s) total", combined.violations.len());
    ExitCode::FAILURE
}

fn compare(a_arg: &str, b_arg: &str) -> ExitCode {
    let (a, b) = match (load(a_arg), load(b_arg)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => return fail(&e),
    };
    if a.digests.is_empty() || b.digests.is_empty() {
        return fail("no digests to compare (was the run audited?)");
    }
    let mut bad = 0u64;
    for (scope, ha) in &a.digests {
        match b.digests.get(scope) {
            None => {
                println!("scope {scope}: only in {a_arg}");
                bad += 1;
            }
            Some(hb) if hb != ha => {
                println!("scope {scope}: {ha:016x} != {hb:016x}");
                bad += 1;
            }
            Some(_) => {}
        }
    }
    for scope in b.digests.keys() {
        if !a.digests.contains_key(scope) {
            println!("scope {scope}: only in {b_arg}");
            bad += 1;
        }
    }
    if bad > 0 {
        println!(
            "{bad} of {} scope(s) differ: runs are NOT equivalent",
            a.digests.len().max(b.digests.len())
        );
        return ExitCode::FAILURE;
    }
    println!(
        "{} digest scope(s) identical: runs are equivalent",
        a.digests.len()
    );
    ExitCode::SUCCESS
}
