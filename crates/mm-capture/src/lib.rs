//! Per-packet observability: the [`PacketTap`] hook and its standard
//! bounded capture writer.
//!
//! The original mahimahi's signature diagnostic is the per-packet log
//! behind `mm-delay-graph`/`mm-throughput-graph`. This crate is that
//! log's home in the reimplementation: instrumented shells call a
//! [`PacketTap`] with one event per packet milestone (enqueue, dequeue,
//! drop, delivery), the browser/replay boundary reports HTTP
//! request/response milestones, and the standard [`Capture`] sink
//! stores them in a bounded buffer that serializes to JSONL or a
//! compact binary form for offline analysis by `mm-graph`.
//!
//! The hook mirrors the `MetricsSink` pattern from `mm-metrics`: every
//! trait method defaults to a no-op, instrumented code holds
//! `Option<TapHandle>` defaulting to `None`, and taps must only
//! observe — a tap that scheduled events or mutated packets would break
//! the byte-identical-when-off (and when-on) guarantee.

mod capture;

pub use capture::{
    data_to_jsonl, decode_binary, encode_binary, Capture, CaptureData, BINARY_MAGIC,
    DEFAULT_MAX_HTTP_EVENTS, DEFAULT_MAX_PACKET_EVENTS,
};

use std::fmt;
use std::rc::Rc;

/// Packet direction through a shell: `Up` is client → server (egress
/// from the innermost namespace), `Down` is server → client.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dir {
    Up,
    Down,
}

impl Dir {
    /// Short label used in JSONL and artifact file names.
    pub fn as_str(self) -> &'static str {
        match self {
            Dir::Up => "up",
            Dir::Down => "down",
        }
    }
}

/// Which kind of shell layer a tap point sits on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PointKind {
    /// A trace-driven `TraceLink` (and the qdisc in front of it).
    Link,
    /// A fixed-delay `DelayLink`.
    Delay,
    /// A Bernoulli `LossLink`.
    Loss,
}

impl PointKind {
    /// Short label used in JSONL and artifact file names.
    pub fn as_str(self) -> &'static str {
        match self {
            PointKind::Link => "link",
            PointKind::Delay => "delay",
            PointKind::Loss => "loss",
        }
    }
}

/// Identifies one instrumented location: a shell layer (by kind and
/// per-stack index) in one direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TapPoint {
    pub kind: PointKind,
    /// Layer index within the shell stack (matches the `-<n>` suffix of
    /// the stack's namespace names, e.g. `link-1`).
    pub index: u32,
    pub dir: Dir,
}

impl TapPoint {
    /// Stable label for artifact names: `link1-down`, `delay2-up`, ...
    pub fn label(&self) -> String {
        format!("{}{}-{}", self.kind.as_str(), self.index, self.dir.as_str())
    }
}

/// What happened to the packet at the tap point.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PacketEventKind {
    /// Accepted into a qdisc.
    Enqueue,
    /// Left a qdisc toward the wire (`sojourn_ns` is its queue wait).
    Dequeue,
    /// Dropped — by the qdisc (tail/head/AQM) or by a loss shell.
    Drop,
    /// Handed to the next hop (consumed a link opportunity, or exited a
    /// delay shell's propagation leg).
    Deliver,
}

impl PacketEventKind {
    /// Short label used in JSONL.
    pub fn as_str(self) -> &'static str {
        match self {
            PacketEventKind::Enqueue => "enq",
            PacketEventKind::Dequeue => "deq",
            PacketEventKind::Drop => "drop",
            PacketEventKind::Deliver => "del",
        }
    }
}

/// One per-packet event. Times are virtual-time nanoseconds since
/// simulation start (plain `u64`, so this crate needs no `mm-sim` dep).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PacketEvent {
    pub t_ns: u64,
    pub kind: PacketEventKind,
    pub point: TapPoint,
    /// The packet's workspace-wide id (`mm_net::Packet::id`).
    pub pkt_id: u64,
    /// Wire size in bytes (header + payload).
    pub size_bytes: u32,
    /// Queue sojourn time for [`PacketEventKind::Dequeue`]; 0 otherwise.
    pub sojourn_ns: u64,
    /// Direction-insensitive flow fingerprint of the packet's 4-tuple
    /// (`mm_net::Packet::flow_key`); 0 when the producer has no flow
    /// identity (e.g. synthetic test packets).
    pub flow: u64,
}

/// HTTP transaction milestone at the browser/replay boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HttpPhase {
    /// Browser queued the fetch (resource discovered).
    Queued,
    /// Browser put the request on a connection / mux stream.
    Sent,
    /// Browser finished the response body.
    Done,
    /// Browser gave up on the resource (after its retry).
    Failed,
    /// Replay server parsed the request off the wire.
    ServerRecv,
    /// Replay server wrote the response (post think time).
    ServerSent,
}

impl HttpPhase {
    /// Short label used in JSONL.
    pub fn as_str(self) -> &'static str {
        match self {
            HttpPhase::Queued => "queued",
            HttpPhase::Sent => "sent",
            HttpPhase::Done => "done",
            HttpPhase::Failed => "failed",
            HttpPhase::ServerRecv => "srv_recv",
            HttpPhase::ServerSent => "srv_sent",
        }
    }
}

/// One HTTP milestone event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HttpEvent {
    pub t_ns: u64,
    pub phase: HttpPhase,
    /// Browser-side resource index (position in the page's resource
    /// timing table); `u32::MAX` for server-side events, which have no
    /// browser resource identity.
    pub resource: u32,
    pub url: String,
    /// Response status for `Done`; 0 when not yet known.
    pub status: u16,
    /// Body bytes for `Done`/`ServerSent`; 0 when not yet known.
    pub bytes: u64,
}

/// Server-side marker for [`HttpEvent::resource`].
pub const NO_RESOURCE: u32 = u32::MAX;

/// Static description of an instrumented link, recorded once so the
/// offline analyzer can reconstruct the capacity (opportunity) series
/// a throughput graph plots against.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinkMeta {
    pub point: TapPoint,
    /// The packet-delivery-opportunity schedule, milliseconds within
    /// one trace period (mahimahi trace-file semantics: the trace wraps
    /// indefinitely with this period). `Rc<[u64]>` so metas clone by
    /// refcount — live taps receive one per attached link and store it.
    pub deliveries_ms: Rc<[u64]>,
    pub period_ms: u64,
    /// Bytes one opportunity can carry.
    pub mtu_bytes: u32,
}

/// Observer hook for per-packet and per-request events. All methods
/// default to no-ops so implementations opt into exactly the streams
/// they want. Taps must only observe — never schedule simulator events
/// or mutate packets.
pub trait PacketTap {
    /// One packet milestone at an instrumented shell layer.
    fn on_packet(&self, ev: &PacketEvent) {
        let _ = ev;
    }

    /// One HTTP milestone at the browser/replay boundary.
    fn on_http(&self, ev: &HttpEvent) {
        let _ = ev;
    }

    /// Static link description, reported once when the tap is attached.
    fn on_link_meta(&self, meta: &LinkMeta) {
        let _ = meta;
    }
}

/// A cheaply clonable, `Debug`-opaque handle to a shared tap — the type
/// instrumented configs carry as `Option<TapHandle>`.
#[derive(Clone)]
pub struct TapHandle(Rc<dyn PacketTap>);

impl TapHandle {
    /// Wrap a tap implementation.
    pub fn new(tap: impl PacketTap + 'static) -> TapHandle {
        TapHandle(Rc::new(tap))
    }
}

impl std::ops::Deref for TapHandle {
    type Target = dyn PacketTap;

    fn deref(&self) -> &(dyn PacketTap + 'static) {
        &*self.0
    }
}

impl fmt::Debug for TapHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("TapHandle")
    }
}

/// Forwards every tap event to each of several taps, so one
/// instrumented shell stack can feed e.g. a [`Capture`] and an auditor
/// at once.
pub struct FanoutTap(Vec<TapHandle>);

impl FanoutTap {
    /// A fanout over `taps`, in call order.
    pub fn new(taps: Vec<TapHandle>) -> FanoutTap {
        FanoutTap(taps)
    }
}

impl PacketTap for FanoutTap {
    fn on_packet(&self, ev: &PacketEvent) {
        for t in &self.0 {
            t.on_packet(ev);
        }
    }

    fn on_http(&self, ev: &HttpEvent) {
        for t in &self.0 {
            t.on_http(ev);
        }
    }

    fn on_link_meta(&self, meta: &LinkMeta) {
        for t in &self.0 {
            t.on_link_meta(meta);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_default_tap_ignores_everything() {
        struct Quiet;
        impl PacketTap for Quiet {}
        let handle = TapHandle::new(Quiet);
        handle.on_packet(&PacketEvent {
            t_ns: 0,
            kind: PacketEventKind::Enqueue,
            point: TapPoint {
                kind: PointKind::Link,
                index: 1,
                dir: Dir::Up,
            },
            pkt_id: 1,
            size_bytes: 1500,
            sojourn_ns: 0,
            flow: 0,
        });
        assert_eq!(format!("{handle:?}"), "TapHandle");
    }

    #[test]
    fn labels_are_stable() {
        let p = TapPoint {
            kind: PointKind::Delay,
            index: 2,
            dir: Dir::Down,
        };
        assert_eq!(p.label(), "delay2-down");
        assert_eq!(PacketEventKind::Dequeue.as_str(), "deq");
        assert_eq!(HttpPhase::ServerRecv.as_str(), "srv_recv");
    }
}
