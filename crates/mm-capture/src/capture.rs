//! The standard bounded capture sink and its two serializations.
//!
//! [`Capture`] implements [`PacketTap`] by appending events to in-memory
//! vectors with hard caps (the `FlowTracer` policy from `mm-metrics`):
//! once a stream hits its cap, further events increment a `dropped`
//! counter instead of allocating, so a pathological run cannot consume
//! unbounded memory. Captures serialize to JSONL (one self-describing
//! object per line — what `--capture-out` writes and `mm-graph` parses)
//! or to a compact length-prefixed binary form with an exact
//! round-trip, for workloads where the text encoding dominates.

use std::cell::RefCell;
use std::rc::Rc;

use crate::{
    Dir, HttpEvent, HttpPhase, LinkMeta, PacketEvent, PacketEventKind, PacketTap, PointKind,
    TapHandle, TapPoint,
};

/// Default cap on stored packet events (~9.4 MB of JSONL).
pub const DEFAULT_MAX_PACKET_EVENTS: usize = 1 << 18;
/// Default cap on stored HTTP events.
pub const DEFAULT_MAX_HTTP_EVENTS: usize = 1 << 14;

/// Everything one capture holds, as plain data: what binary decoding
/// and the `mm-graph` JSONL parser both produce.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CaptureData {
    /// Which page load (or experiment unit) the events belong to.
    /// Loads run in separate simulations with separate clocks, so
    /// analyzers must never mix timestamps across loads.
    pub load: u64,
    pub links: Vec<LinkMeta>,
    pub packets: Vec<PacketEvent>,
    pub https: Vec<HttpEvent>,
    /// Events discarded because a cap was hit.
    pub dropped: u64,
}

struct Limits {
    max_packet_events: usize,
    max_http_events: usize,
}

struct Inner {
    data: CaptureData,
    limits: Limits,
}

/// Bounded in-memory [`PacketTap`]. Cloning shares the underlying
/// store, so the same capture can be attached to several shells and to
/// the browser/replay boundary at once.
#[derive(Clone)]
pub struct Capture {
    inner: Rc<RefCell<Inner>>,
}

impl Default for Capture {
    fn default() -> Self {
        Capture::new()
    }
}

impl Capture {
    /// A capture for load 0 with the default caps.
    pub fn new() -> Capture {
        Capture::with_limits(0, DEFAULT_MAX_PACKET_EVENTS, DEFAULT_MAX_HTTP_EVENTS)
    }

    /// A capture tagged with a load id, default caps.
    pub fn for_load(load: u64) -> Capture {
        Capture::with_limits(load, DEFAULT_MAX_PACKET_EVENTS, DEFAULT_MAX_HTTP_EVENTS)
    }

    /// A capture with explicit stream caps.
    pub fn with_limits(load: u64, max_packet_events: usize, max_http_events: usize) -> Capture {
        Capture {
            inner: Rc::new(RefCell::new(Inner {
                data: CaptureData {
                    load,
                    // Reserve a modest slab up front so the live tap
                    // path never pays repeated growth-reallocations of a
                    // hot Vec (the cap itself would be ~8 MB — too much
                    // to commit eagerly).
                    packets: Vec::with_capacity(max_packet_events.min(4096)),
                    https: Vec::with_capacity(max_http_events.min(256)),
                    ..CaptureData::default()
                },
                limits: Limits {
                    max_packet_events,
                    max_http_events,
                },
            })),
        }
    }

    /// A [`TapHandle`] sharing this capture's store.
    pub fn handle(&self) -> TapHandle {
        TapHandle::new(self.clone())
    }

    /// Stored packet events.
    pub fn packet_count(&self) -> usize {
        self.inner.borrow().data.packets.len()
    }

    /// Stored HTTP events.
    pub fn http_count(&self) -> usize {
        self.inner.borrow().data.https.len()
    }

    /// Events discarded because a cap was hit.
    pub fn dropped(&self) -> u64 {
        self.inner.borrow().data.dropped
    }

    /// Snapshot of everything stored.
    pub fn data(&self) -> CaptureData {
        self.inner.borrow().data.clone()
    }

    /// Encode every stored event as one JSON object per line. Link
    /// descriptions come first so a streaming reader sees topology
    /// before events.
    pub fn to_jsonl(&self) -> String {
        data_to_jsonl(&self.inner.borrow().data)
    }

    /// Drain the store, returning its JSONL (used to merge per-load
    /// captures into a process-wide capture file).
    pub fn take_jsonl(&self) -> String {
        let out = self.to_jsonl();
        let mut inner = self.inner.borrow_mut();
        let load = inner.data.load;
        inner.data = CaptureData {
            load,
            ..CaptureData::default()
        };
        out
    }

    /// Compact binary encoding of the store (see module docs).
    pub fn to_binary(&self) -> Vec<u8> {
        encode_binary(&self.inner.borrow().data)
    }

    /// Drop all stored events and link metas, keeping the load tag and
    /// the allocated buffers. Reusing one capture across runs this way
    /// keeps its pages mapped and warm, where rebuilding a capture per
    /// run pays allocator and page-fault cost proportional to the
    /// event volume.
    pub fn clear(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.data.links.clear();
        inner.data.packets.clear();
        inner.data.https.clear();
        inner.data.dropped = 0;
    }
}

impl PacketTap for Capture {
    fn on_packet(&self, ev: &PacketEvent) {
        let mut inner = self.inner.borrow_mut();
        if inner.data.packets.len() >= inner.limits.max_packet_events {
            inner.data.dropped += 1;
        } else {
            inner.data.packets.push(*ev);
        }
    }

    fn on_http(&self, ev: &HttpEvent) {
        let mut inner = self.inner.borrow_mut();
        if inner.data.https.len() >= inner.limits.max_http_events {
            inner.data.dropped += 1;
        } else {
            inner.data.https.push(ev.clone());
        }
    }

    fn on_link_meta(&self, meta: &LinkMeta) {
        // Link descriptions are tiny and bounded by topology, not by
        // traffic, so they bypass the event caps. Re-attaching the same
        // point twice keeps the first description.
        let mut inner = self.inner.borrow_mut();
        if !inner.data.links.iter().any(|m| m.point == meta.point) {
            inner.data.links.push(meta.clone());
        }
    }
}

/// JSONL encoding of a [`CaptureData`] (also used by [`Capture`]).
pub fn data_to_jsonl(data: &CaptureData) -> String {
    let mut out = String::new();
    let load = data.load;
    for m in &data.links {
        out.push_str(&format!(
            "{{\"ev\":\"link\",\"load\":{},\"at\":\"{}\",\"i\":{},\"dir\":\"{}\",\
             \"period_ms\":{},\"mtu\":{},\"deliveries_ms\":[",
            load,
            m.point.kind.as_str(),
            m.point.index,
            m.point.dir.as_str(),
            m.period_ms,
            m.mtu_bytes,
        ));
        for (i, ms) in m.deliveries_ms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&ms.to_string());
        }
        out.push_str("]}\n");
    }
    for p in &data.packets {
        out.push_str(&format!(
            "{{\"ev\":\"pkt\",\"load\":{},\"t_ns\":{},\"kind\":\"{}\",\"at\":\"{}\",\
             \"i\":{},\"dir\":\"{}\",\"pkt\":{},\"size\":{},\"sojourn_ns\":{},\"flow\":{}}}\n",
            load,
            p.t_ns,
            p.kind.as_str(),
            p.point.kind.as_str(),
            p.point.index,
            p.point.dir.as_str(),
            p.pkt_id,
            p.size_bytes,
            p.sojourn_ns,
            p.flow,
        ));
    }
    for h in &data.https {
        out.push_str(&format!(
            "{{\"ev\":\"http\",\"load\":{},\"t_ns\":{},\"phase\":\"{}\",\"res\":{},\
             \"url\":\"{}\",\"status\":{},\"bytes\":{}}}\n",
            load,
            h.t_ns,
            h.phase.as_str(),
            h.resource,
            escape_json(&h.url),
            h.status,
            h.bytes,
        ));
    }
    out
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Binary encoding: magic, header, then fixed-width little-endian records.
// ---------------------------------------------------------------------------

/// File magic for the binary capture format (versioned in the last
/// byte; v2 added the packet record's `flow` field).
pub const BINARY_MAGIC: &[u8; 6] = b"MMCAP\x02";

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn dir_code(d: Dir) -> u8 {
    match d {
        Dir::Up => 0,
        Dir::Down => 1,
    }
}

fn point_kind_code(k: PointKind) -> u8 {
    match k {
        PointKind::Link => 0,
        PointKind::Delay => 1,
        PointKind::Loss => 2,
    }
}

fn event_kind_code(k: PacketEventKind) -> u8 {
    match k {
        PacketEventKind::Enqueue => 0,
        PacketEventKind::Dequeue => 1,
        PacketEventKind::Drop => 2,
        PacketEventKind::Deliver => 3,
    }
}

fn phase_code(p: HttpPhase) -> u8 {
    match p {
        HttpPhase::Queued => 0,
        HttpPhase::Sent => 1,
        HttpPhase::Done => 2,
        HttpPhase::Failed => 3,
        HttpPhase::ServerRecv => 4,
        HttpPhase::ServerSent => 5,
    }
}

fn put_point(out: &mut Vec<u8>, p: &TapPoint) {
    out.push(point_kind_code(p.kind));
    out.push(dir_code(p.dir));
    put_u32(out, p.index);
}

/// Encode a capture to the binary format.
pub fn encode_binary(data: &CaptureData) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(BINARY_MAGIC);
    put_u64(&mut out, data.load);
    put_u64(&mut out, data.dropped);
    put_u32(&mut out, data.links.len() as u32);
    put_u32(&mut out, data.packets.len() as u32);
    put_u32(&mut out, data.https.len() as u32);
    for m in &data.links {
        put_point(&mut out, &m.point);
        put_u64(&mut out, m.period_ms);
        put_u32(&mut out, m.mtu_bytes);
        put_u32(&mut out, m.deliveries_ms.len() as u32);
        for ms in m.deliveries_ms.iter() {
            put_u64(&mut out, *ms);
        }
    }
    for p in &data.packets {
        put_u64(&mut out, p.t_ns);
        out.push(event_kind_code(p.kind));
        put_point(&mut out, &p.point);
        put_u64(&mut out, p.pkt_id);
        put_u32(&mut out, p.size_bytes);
        put_u64(&mut out, p.sojourn_ns);
        put_u64(&mut out, p.flow);
    }
    for h in &data.https {
        put_u64(&mut out, h.t_ns);
        out.push(phase_code(h.phase));
        put_u32(&mut out, h.resource);
        put_u16(&mut out, h.status);
        put_u64(&mut out, h.bytes);
        put_u32(&mut out, h.url.len() as u32);
        out.extend_from_slice(h.url.as_bytes());
    }
    out
}

/// Cursor over the binary format; every read is bounds-checked.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.pos + n > self.buf.len() {
            return Err(format!(
                "truncated capture: need {} bytes at offset {}, have {}",
                n,
                self.pos,
                self.buf.len() - self.pos
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn point(&mut self) -> Result<TapPoint, String> {
        let kind = match self.u8()? {
            0 => PointKind::Link,
            1 => PointKind::Delay,
            2 => PointKind::Loss,
            k => return Err(format!("bad point kind {k}")),
        };
        let dir = match self.u8()? {
            0 => Dir::Up,
            1 => Dir::Down,
            d => return Err(format!("bad direction {d}")),
        };
        let index = self.u32()?;
        Ok(TapPoint { kind, index, dir })
    }
}

/// Decode the binary format back into a [`CaptureData`]. Exact inverse
/// of [`encode_binary`].
pub fn decode_binary(buf: &[u8]) -> Result<CaptureData, String> {
    let mut r = Reader { buf, pos: 0 };
    if r.take(BINARY_MAGIC.len())? != BINARY_MAGIC {
        return Err("not a binary capture (bad magic)".to_string());
    }
    let load = r.u64()?;
    let dropped = r.u64()?;
    let n_links = r.u32()? as usize;
    let n_packets = r.u32()? as usize;
    let n_https = r.u32()? as usize;
    let mut data = CaptureData {
        load,
        dropped,
        ..CaptureData::default()
    };
    for _ in 0..n_links {
        let point = r.point()?;
        let period_ms = r.u64()?;
        let mtu_bytes = r.u32()?;
        let n = r.u32()? as usize;
        let mut deliveries_ms = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            deliveries_ms.push(r.u64()?);
        }
        data.links.push(LinkMeta {
            point,
            deliveries_ms: deliveries_ms.into(),
            period_ms,
            mtu_bytes,
        });
    }
    for _ in 0..n_packets {
        let t_ns = r.u64()?;
        let kind = match r.u8()? {
            0 => PacketEventKind::Enqueue,
            1 => PacketEventKind::Dequeue,
            2 => PacketEventKind::Drop,
            3 => PacketEventKind::Deliver,
            k => return Err(format!("bad packet event kind {k}")),
        };
        let point = r.point()?;
        let pkt_id = r.u64()?;
        let size_bytes = r.u32()?;
        let sojourn_ns = r.u64()?;
        let flow = r.u64()?;
        data.packets.push(PacketEvent {
            t_ns,
            kind,
            point,
            pkt_id,
            size_bytes,
            sojourn_ns,
            flow,
        });
    }
    for _ in 0..n_https {
        let t_ns = r.u64()?;
        let phase = match r.u8()? {
            0 => HttpPhase::Queued,
            1 => HttpPhase::Sent,
            2 => HttpPhase::Done,
            3 => HttpPhase::Failed,
            4 => HttpPhase::ServerRecv,
            5 => HttpPhase::ServerSent,
            p => return Err(format!("bad http phase {p}")),
        };
        let resource = r.u32()?;
        let status = r.u16()?;
        let bytes = r.u64()?;
        let url_len = r.u32()? as usize;
        let url = String::from_utf8(r.take(url_len)?.to_vec())
            .map_err(|e| format!("bad url utf-8: {e}"))?;
        data.https.push(HttpEvent {
            t_ns,
            phase,
            resource,
            url,
            status,
            bytes,
        });
    }
    if r.pos != buf.len() {
        return Err(format!(
            "{} trailing bytes after capture",
            buf.len() - r.pos
        ));
    }
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(kind: PointKind, index: u32, dir: Dir) -> TapPoint {
        TapPoint { kind, index, dir }
    }

    fn pkt_event(t_ns: u64, kind: PacketEventKind, id: u64) -> PacketEvent {
        PacketEvent {
            t_ns,
            kind,
            point: point(PointKind::Link, 1, Dir::Down),
            pkt_id: id,
            size_bytes: 1500,
            sojourn_ns: if kind == PacketEventKind::Dequeue {
                250_000
            } else {
                0
            },
            flow: 0xfeed,
        }
    }

    #[test]
    fn capture_stores_and_serializes() {
        let cap = Capture::for_load(3);
        let tap = cap.handle();
        tap.on_link_meta(&LinkMeta {
            point: point(PointKind::Link, 1, Dir::Down),
            deliveries_ms: vec![0, 1, 2].into(),
            period_ms: 3,
            mtu_bytes: 1500,
        });
        tap.on_packet(&pkt_event(1_000_000, PacketEventKind::Enqueue, 7));
        tap.on_packet(&pkt_event(2_000_000, PacketEventKind::Dequeue, 7));
        tap.on_http(&HttpEvent {
            t_ns: 5,
            phase: HttpPhase::Queued,
            resource: 0,
            url: "http://10.0.0.1/a\"b".to_string(),
            status: 0,
            bytes: 0,
        });
        assert_eq!(cap.packet_count(), 2);
        assert_eq!(cap.http_count(), 1);
        let jsonl = cap.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"ev\":\"link\""));
        assert!(lines[0].contains("\"deliveries_ms\":[0,1,2]"));
        assert!(lines[1].contains("\"kind\":\"enq\""));
        assert!(lines[2].contains("\"sojourn_ns\":250000"));
        assert!(lines[3].contains("\\\"b\""));
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert!(line.contains("\"load\":3"));
        }
        // Drain empties the store but keeps the load tag.
        assert!(!cap.take_jsonl().is_empty());
        assert_eq!(cap.packet_count(), 0);
        assert_eq!(cap.data().load, 3);
    }

    #[test]
    fn clear_keeps_load_and_drops_events() {
        let cap = Capture::for_load(5);
        cap.on_link_meta(&LinkMeta {
            point: point(PointKind::Link, 1, Dir::Up),
            deliveries_ms: vec![0].into(),
            period_ms: 1,
            mtu_bytes: 1500,
        });
        cap.on_packet(&pkt_event(1, PacketEventKind::Enqueue, 1));
        cap.clear();
        let data = cap.data();
        assert_eq!(data.load, 5);
        assert!(data.links.is_empty());
        assert!(data.packets.is_empty());
        assert_eq!(data.dropped, 0);
        // The store keeps accepting events after a clear.
        cap.on_packet(&pkt_event(2, PacketEventKind::Enqueue, 2));
        assert_eq!(cap.packet_count(), 1);
    }

    #[test]
    fn caps_bound_memory() {
        let cap = Capture::with_limits(0, 2, 1);
        for i in 0..5 {
            cap.on_packet(&pkt_event(i, PacketEventKind::Enqueue, i));
        }
        for _ in 0..3 {
            cap.on_http(&HttpEvent {
                t_ns: 0,
                phase: HttpPhase::Queued,
                resource: 0,
                url: String::new(),
                status: 0,
                bytes: 0,
            });
        }
        assert_eq!(cap.packet_count(), 2);
        assert_eq!(cap.http_count(), 1);
        assert_eq!(cap.dropped(), 5);
    }

    #[test]
    fn duplicate_link_meta_is_ignored() {
        let cap = Capture::new();
        let meta = LinkMeta {
            point: point(PointKind::Link, 1, Dir::Up),
            deliveries_ms: vec![0].into(),
            period_ms: 1,
            mtu_bytes: 1500,
        };
        cap.on_link_meta(&meta);
        cap.on_link_meta(&meta);
        assert_eq!(cap.data().links.len(), 1);
    }

    #[test]
    fn binary_roundtrip_exact() {
        let cap = Capture::for_load(9);
        cap.on_link_meta(&LinkMeta {
            point: point(PointKind::Link, 2, Dir::Up),
            deliveries_ms: vec![0, 5, 5, 9].into(),
            period_ms: 10,
            mtu_bytes: 1500,
        });
        cap.on_packet(&pkt_event(42, PacketEventKind::Drop, 11));
        cap.on_http(&HttpEvent {
            t_ns: 77,
            phase: HttpPhase::ServerSent,
            resource: NO_RESOURCE,
            url: "http://10.0.0.1/π".to_string(),
            status: 200,
            bytes: 12345,
        });
        let data = cap.data();
        let decoded = decode_binary(&cap.to_binary()).unwrap();
        assert_eq!(decoded, data);
    }

    #[test]
    fn binary_decode_rejects_garbage() {
        assert!(decode_binary(b"not a capture").is_err());
        let mut good = encode_binary(&CaptureData::default());
        good.push(0);
        assert!(decode_binary(&good).is_err(), "trailing bytes accepted");
    }

    use crate::NO_RESOURCE;
    use proptest::prelude::*;

    fn arb_point() -> impl Strategy<Value = TapPoint> {
        (0u8..3, any::<u32>(), any::<bool>()).prop_map(|(k, index, up)| TapPoint {
            kind: match k {
                0 => PointKind::Link,
                1 => PointKind::Delay,
                _ => PointKind::Loss,
            },
            index,
            dir: if up { Dir::Up } else { Dir::Down },
        })
    }

    fn arb_packet() -> impl Strategy<Value = PacketEvent> {
        // The vendored proptest implements Strategy for tuples up to
        // arity 4, so nest the fields.
        (
            (any::<u64>(), 0u8..4),
            (arb_point(), any::<u64>()),
            (any::<u32>(), any::<u64>(), any::<u64>()),
        )
            .prop_map(
                |((t_ns, k), (point, pkt_id), (size_bytes, sojourn_ns, flow))| PacketEvent {
                    t_ns,
                    kind: match k {
                        0 => PacketEventKind::Enqueue,
                        1 => PacketEventKind::Dequeue,
                        2 => PacketEventKind::Drop,
                        _ => PacketEventKind::Deliver,
                    },
                    point,
                    pkt_id,
                    size_bytes,
                    sojourn_ns,
                    flow,
                },
            )
    }

    proptest! {
        #[test]
        fn binary_roundtrip_arbitrary(
            load in any::<u64>(),
            dropped in any::<u64>(),
            packets in proptest::collection::vec(arb_packet(), 0..64),
            deliveries in proptest::collection::vec(any::<u64>(), 0..32),
            url in "[a-z0-9/:.]{0,40}",
        ) {
            let data = CaptureData {
                load,
                dropped,
                links: vec![LinkMeta {
                    point: TapPoint { kind: PointKind::Link, index: 1, dir: Dir::Down },
                    deliveries_ms: deliveries.into(),
                    period_ms: 1000,
                    mtu_bytes: 1500,
                }],
                packets,
                https: vec![HttpEvent {
                    t_ns: 1,
                    phase: HttpPhase::Done,
                    resource: 0,
                    url,
                    status: 200,
                    bytes: 10,
                }],
            };
            let decoded = decode_binary(&encode_binary(&data)).unwrap();
            prop_assert_eq!(decoded, data);
        }
    }
}
