//! End-to-end RACK-TLP and F-RTO behavior: pure tail loss recovers via a
//! Tail Loss Probe without waiting out the RTO, and a spurious
//! retransmission timeout (delay, not loss) is detected and undone —
//! congestion window restored, RTO backoff dropped. These are the two
//! mechanisms the figrack experiment measures at page-load scale.

use bytes::Bytes;
use mm_net::{
    Host, IpAddr, Listener, Namespace, Packet, PacketIdGen, PacketSink, RecoveryTier, SinkRef,
    SocketAddr, SocketApp, SocketEvent, TcpConfig, TcpHandle,
};
use mm_sim::{SimDuration, Simulator, Timestamp};
use std::cell::RefCell;
use std::rc::Rc;

/// A symmetric-delay wire dropping a chosen contiguous run of the
/// sender's data segments on their first transmission only (same shape
/// as the sack_recovery tests).
struct LossyWire {
    next: SinkRef,
    delay: SimDuration,
    data_seen: RefCell<u64>,
    drop_from: u64,
    drop_to: u64,
    dropped: RefCell<Vec<u64>>,
}

impl PacketSink for LossyWire {
    fn deliver(&self, sim: &mut Simulator, pkt: Packet) {
        if !pkt.segment.payload.is_empty() {
            let mut seen = self.data_seen.borrow_mut();
            let idx = *seen;
            *seen += 1;
            let first_transmission = self.dropped.borrow().iter().all(|&s| s != pkt.segment.seq);
            if first_transmission && idx >= self.drop_from && idx < self.drop_to {
                self.dropped.borrow_mut().push(pkt.segment.seq);
                return;
            }
        }
        let next = self.next.clone();
        sim.schedule_in(self.delay, move |sim| next.deliver(sim, pkt));
    }
}

/// A fixed-delay wire (reverse path).
struct DelayWire {
    next: SinkRef,
    delay: SimDuration,
}

impl PacketSink for DelayWire {
    fn deliver(&self, sim: &mut Simulator, pkt: Packet) {
        let next = self.next.clone();
        sim.schedule_in(self.delay, move |sim| next.deliver(sim, pkt));
    }
}

/// A delay wire that additionally *stalls*: packets entering during
/// `[stall_from, stall_until)` are released, order preserved, no earlier
/// than `stall_until` plus the delay — pure added delay, zero loss. The
/// release floor is monotone so FIFO order survives. It also samples the
/// sender's (timeouts, spurious_rtos, cwnd, rto) on every packet it
/// carries, giving the test a timeline to assert the F-RTO undo against.
/// One per-packet sender observation: (timeouts, spurious_rtos, cwnd,
/// current rto).
type SenderSample = (u64, u64, u64, SimDuration);

struct StallWire {
    next: SinkRef,
    delay: SimDuration,
    stall_from: Timestamp,
    stall_until: Timestamp,
    handle: RefCell<Option<TcpHandle>>,
    samples: Rc<RefCell<Vec<SenderSample>>>,
}

impl PacketSink for StallWire {
    fn deliver(&self, sim: &mut Simulator, pkt: Packet) {
        if let Some(h) = self.handle.borrow().as_ref() {
            let s = h.stats();
            self.samples.borrow_mut().push((
                s.timeouts,
                s.spurious_rtos,
                h.cwnd(),
                h.current_rto(),
            ));
        }
        let now = sim.now();
        let release = if now >= self.stall_from && now < self.stall_until {
            self.stall_until + self.delay
        } else {
            now + self.delay
        };
        let next = self.next.clone();
        sim.schedule_at(release, move |sim| next.deliver(sim, pkt));
    }
}

struct Collect {
    buf: Rc<RefCell<Vec<u8>>>,
    done_at: Rc<RefCell<Option<Timestamp>>>,
    expect: usize,
}
impl SocketApp for Collect {
    fn on_event(&self, sim: &mut Simulator, _h: &TcpHandle, ev: SocketEvent) {
        if let SocketEvent::Data(b) = ev {
            self.buf.borrow_mut().extend_from_slice(&b);
            if self.buf.borrow().len() >= self.expect {
                *self.done_at.borrow_mut() = Some(sim.now());
            }
        }
    }
}

struct Accept {
    buf: Rc<RefCell<Vec<u8>>>,
    done_at: Rc<RefCell<Option<Timestamp>>>,
    expect: usize,
}
impl Listener for Accept {
    fn on_connection(&self, _sim: &mut Simulator, _h: TcpHandle) -> Rc<dyn SocketApp> {
        Rc::new(Collect {
            buf: self.buf.clone(),
            done_at: self.done_at.clone(),
            expect: self.expect,
        })
    }
}

struct SendOnConnect {
    data: RefCell<Option<Bytes>>,
}
impl SocketApp for SendOnConnect {
    fn on_event(&self, sim: &mut Simulator, h: &TcpHandle, ev: SocketEvent) {
        if matches!(ev, SocketEvent::Connected) {
            if let Some(d) = self.data.borrow_mut().take() {
                h.send(sim, d);
            }
        }
    }
}

const RTT_MS: u64 = 80;

/// Transfer `total` bytes at the given recovery tier over `2 * one_way`
/// RTT, dropping data segments `[drop_from, drop_to)` once. Returns
/// (completion time, client-side stats).
fn tail_loss_transfer(
    tier: RecoveryTier,
    total: usize,
    one_way: SimDuration,
    drop_from: u64,
    drop_to: u64,
) -> (Timestamp, mm_net::TcpStats) {
    tail_loss_transfer_cfg(
        tier,
        TcpConfig::default().min_rto,
        total,
        one_way,
        drop_from,
        drop_to,
    )
}

fn tail_loss_transfer_cfg(
    tier: RecoveryTier,
    min_rto: SimDuration,
    total: usize,
    one_way: SimDuration,
    drop_from: u64,
    drop_to: u64,
) -> (Timestamp, mm_net::TcpStats) {
    tail_loss_transfer_with(
        TcpConfig::builder().recovery(tier).min_rto(min_rto).build(),
        total,
        one_way,
        drop_from,
        drop_to,
    )
}

/// Same transfer with an explicit sender-side TCP config (the server
/// runs the config minus any metrics sink, so exported counters are
/// sender events only).
fn tail_loss_transfer_with(
    client_cfg: TcpConfig,
    total: usize,
    one_way: SimDuration,
    drop_from: u64,
    drop_to: u64,
) -> (Timestamp, mm_net::TcpStats) {
    let mut sim = Simulator::new();
    let ns = Namespace::root("w");
    let ids = PacketIdGen::new();
    let client = Host::new(IpAddr::new(10, 0, 0, 1), ids.clone());
    let server = Host::new_in(IpAddr::new(10, 0, 0, 2), ids, &ns);
    let server_cfg = {
        let mut c = client_cfg.clone();
        c.metrics = None;
        c
    };
    client.set_tcp_config(client_cfg);
    server.set_tcp_config(server_cfg);
    ns.add_host(
        client.ip(),
        Rc::new(DelayWire {
            next: client.sink(),
            delay: one_way,
        }),
    );
    client.set_egress(Rc::new(LossyWire {
        next: ns.router(),
        delay: one_way,
        data_seen: RefCell::new(0),
        drop_from,
        drop_to,
        dropped: RefCell::new(Vec::new()),
    }));

    let received = Rc::new(RefCell::new(Vec::new()));
    let done_at = Rc::new(RefCell::new(None));
    server.listen(
        80,
        Rc::new(Accept {
            buf: received.clone(),
            done_at: done_at.clone(),
            expect: total,
        }),
    );
    let payload: Vec<u8> = (0..total as u32).map(|i| (i % 251) as u8).collect();
    let h = client.connect(
        &mut sim,
        SocketAddr::new(server.ip(), 80),
        Rc::new(SendOnConnect {
            data: RefCell::new(Some(Bytes::from(payload.clone()))),
        }),
    );
    sim.run();
    assert_eq!(&received.borrow()[..], &payload[..], "stream corrupted");
    let finished = done_at.borrow().expect("transfer never completed");
    (finished, h.stats())
}

/// 60 KB is 42 MSS segments; the last data segment has index 41.
const SEGS_60K: u64 = 42;

#[test]
fn tail_loss_recovered_by_tlp_without_rto() {
    let one_way = SimDuration::from_millis(RTT_MS / 2);
    // Drop only the final data segment: pure tail loss, invisible to the
    // scoreboard (nothing sent after it to generate SACKs).
    let (with_rack, rack_stats) = tail_loss_transfer(
        RecoveryTier::RackTlp,
        60_000,
        one_way,
        SEGS_60K - 1,
        SEGS_60K,
    );
    let (with_sack, sack_stats) =
        tail_loss_transfer(RecoveryTier::Sack, 60_000, one_way, SEGS_60K - 1, SEGS_60K);

    // SACK alone has no answer but the RTO (RFC 6675 §5.1 route).
    assert!(sack_stats.timeouts >= 1, "{sack_stats:?}");
    // RACK-TLP probes the tail after ~2 RTT instead.
    assert_eq!(rack_stats.timeouts, 0, "{rack_stats:?}");
    assert!(rack_stats.tlp_probes >= 1, "{rack_stats:?}");
    assert!(
        with_rack < with_sack,
        "TLP should beat the RTO: rack {with_rack} vs sack {with_sack}"
    );
}

#[test]
fn tail_burst_recovered_by_probe_plus_rack_marks() {
    let one_way = SimDuration::from_millis(RTT_MS / 2);
    // Drop the last three data segments. The probe retransmits the very
    // tail; its SACK advances RACK's delivery clock past the two other
    // holes, which are then marked lost by time and repaired — all
    // without an RTO.
    let (_, rack_stats) = tail_loss_transfer(
        RecoveryTier::RackTlp,
        60_000,
        one_way,
        SEGS_60K - 3,
        SEGS_60K,
    );
    assert_eq!(rack_stats.timeouts, 0, "{rack_stats:?}");
    assert!(rack_stats.tlp_probes >= 1, "{rack_stats:?}");
    assert!(rack_stats.rack_loss_marks >= 2, "{rack_stats:?}");
}

#[test]
fn tlp_fire_counter_matches_exactly_one_probe() {
    // The pure-tail-loss scenario fires exactly one Tail Loss Probe and
    // no RTO; a registry sink on the sender must report exactly that —
    // one `tcp_tlp_fires_total`, zero `tcp_rto_total` — in agreement
    // with the socket's own stats.
    use mm_metrics::{MetricsHandle, Registry, RegistrySink};
    let registry = Registry::new();
    let sink = MetricsHandle::new(RegistrySink::new(registry.clone()));
    let one_way = SimDuration::from_millis(RTT_MS / 2);
    let (_, stats) = tail_loss_transfer_with(
        TcpConfig::builder()
            .recovery(RecoveryTier::RackTlp)
            .metrics(sink)
            .build(),
        60_000,
        one_way,
        SEGS_60K - 1,
        SEGS_60K,
    );
    assert_eq!(stats.tlp_probes, 1, "{stats:?}");
    assert_eq!(stats.timeouts, 0, "{stats:?}");
    let counter = |name: &str| registry.counter(name, "").get();
    assert_eq!(counter("tcp_tlp_fires_total"), 1);
    assert_eq!(counter("tcp_rto_total"), 0);
    assert_eq!(counter("tcp_retransmits_total"), stats.retransmissions);
}

#[test]
fn spurious_undo_counter_matches_frto_verdict() {
    // The delay-spike (no loss) scenario: the one RTO that fires is
    // declared spurious by F-RTO exactly once, and the counters agree
    // with the stats — `tcp_rto_total` counts the timeout,
    // `tcp_spurious_rto_undo_total` counts the undo.
    use mm_metrics::{MetricsHandle, Registry, RegistrySink};
    let registry = Registry::new();
    let sink = MetricsHandle::new(RegistrySink::new(registry.clone()));
    let (_, stats, _) = stalled_transfer_with(
        TcpConfig::builder()
            .recovery(RecoveryTier::RackTlp)
            .metrics(sink)
            .build(),
    );
    assert!(stats.timeouts >= 1, "{stats:?}");
    assert_eq!(stats.spurious_rtos, 1, "{stats:?}");
    let counter = |name: &str| registry.counter(name, "").get();
    assert_eq!(counter("tcp_rto_total"), stats.timeouts);
    assert_eq!(counter("tcp_spurious_rto_undo_total"), 1);
}

#[test]
fn tlp_defers_to_a_nearer_rto() {
    // With a tiny min_rto the steady-state RTO (srtt + min_rto) drops
    // below the probe timeout (2·srtt + slack), so the TLP must never be
    // armed — the tail loss is the RTO's to handle. (The converse — that
    // a fired TLP always beat any armed RTO — is a debug assertion that
    // every test in this suite exercises.)
    let one_way = SimDuration::from_millis(RTT_MS / 2);
    let (_, stats) = tail_loss_transfer_cfg(
        RecoveryTier::RackTlp,
        SimDuration::from_millis(10),
        60_000,
        one_way,
        SEGS_60K - 1,
        SEGS_60K,
    );
    assert_eq!(stats.tlp_probes, 0, "{stats:?}");
    assert!(stats.timeouts >= 1, "{stats:?}");
}

/// Transfer with a mid-flight stall (delay spike, no loss). Returns
/// (completion time, stats, per-packet sender samples).
fn stalled_transfer(tier: RecoveryTier) -> (Timestamp, mm_net::TcpStats, Vec<SenderSample>) {
    stalled_transfer_with(TcpConfig::builder().recovery(tier).build())
}

fn stalled_transfer_with(
    client_cfg: TcpConfig,
) -> (Timestamp, mm_net::TcpStats, Vec<SenderSample>) {
    let one_way = SimDuration::from_millis(20);
    let total = 1_000_000usize;
    let mut sim = Simulator::new();
    let ns = Namespace::root("w");
    let ids = PacketIdGen::new();
    let client = Host::new(IpAddr::new(10, 0, 0, 1), ids.clone());
    let server = Host::new_in(IpAddr::new(10, 0, 0, 2), ids, &ns);
    let server_cfg = {
        let mut c = client_cfg.clone();
        c.metrics = None;
        c
    };
    client.set_tcp_config(client_cfg);
    server.set_tcp_config(server_cfg);
    ns.add_host(
        client.ip(),
        Rc::new(DelayWire {
            next: client.sink(),
            delay: one_way,
        }),
    );
    let samples = Rc::new(RefCell::new(Vec::new()));
    let wire = Rc::new(StallWire {
        next: ns.router(),
        delay: one_way,
        // The stall must open after the first slow-start waves (so an RTT
        // estimate exists) and close after exactly one RTO has fired
        // (~srtt + min_rto past the last ack) but before its backed-off
        // successor (RFC 5682 applies F-RTO to the first timeout only).
        stall_from: Timestamp::from_millis(200),
        stall_until: Timestamp::from_millis(800),
        handle: RefCell::new(None),
        samples: samples.clone(),
    });
    client.set_egress(wire.clone());

    let received = Rc::new(RefCell::new(Vec::new()));
    let done_at = Rc::new(RefCell::new(None));
    server.listen(
        80,
        Rc::new(Accept {
            buf: received.clone(),
            done_at: done_at.clone(),
            expect: total,
        }),
    );
    let payload: Vec<u8> = (0..total as u32).map(|i| (i % 251) as u8).collect();
    let h = client.connect(
        &mut sim,
        SocketAddr::new(server.ip(), 80),
        Rc::new(SendOnConnect {
            data: RefCell::new(Some(Bytes::from(payload.clone()))),
        }),
    );
    *wire.handle.borrow_mut() = Some(h.clone());
    sim.run();
    assert_eq!(&received.borrow()[..], &payload[..], "stream corrupted");
    let finished = done_at.borrow().expect("transfer never completed");
    let s = samples.borrow().clone();
    (finished, h.stats(), s)
}

#[test]
fn spurious_rto_detected_and_undone() {
    let (with_rack, rack_stats, samples) = stalled_transfer(RecoveryTier::RackTlp);
    let (with_sack, sack_stats, _) = stalled_transfer(RecoveryTier::Sack);

    // The stall delays — never drops — packets, so the timeout it causes
    // is spurious. F-RTO must say so, exactly once.
    assert!(rack_stats.timeouts >= 1, "{rack_stats:?}");
    assert_eq!(rack_stats.spurious_rtos, 1, "{rack_stats:?}");
    assert_eq!(sack_stats.spurious_rtos, 0, "no F-RTO below RackTlp");

    // Timeline assertions from the per-packet samples: the undo restored
    // the pre-timeout congestion window and dropped the RTO backoff.
    let pre_timeout_cwnd = samples
        .iter()
        .filter(|s| s.0 == 0)
        .map(|s| s.2)
        .max()
        .expect("samples before the timeout");
    let during = samples
        .iter()
        .find(|s| s.0 >= 1 && s.1 == 0)
        .expect("samples between timeout and verdict");
    let after = samples
        .iter()
        .find(|s| s.1 >= 1)
        .expect("samples after the spurious verdict");
    assert!(
        during.2 < pre_timeout_cwnd,
        "timeout must first collapse cwnd: {} vs {}",
        during.2,
        pre_timeout_cwnd
    );
    assert!(
        after.2 >= pre_timeout_cwnd,
        "undo must restore cwnd: {} vs {}",
        after.2,
        pre_timeout_cwnd
    );
    // The exponential backoff is dropped: post-verdict the RTO is
    // recomputed from the estimator. (The first recomputation can sit
    // above the old backed-off value because the delayed originals just
    // fed the estimator genuine 600 ms samples — but with the backoff
    // multiplier gone it falls back below it as the variance decays,
    // which a still-backed-off timer never could without another ack.)
    assert!(
        samples.iter().any(|s| s.1 >= 1 && s.3 < during.3),
        "undo must shed the backed-off RTO: backed-off {}",
        during.3
    );

    // And the undo is worth real time: the collapsed-window SACK run
    // cannot beat the restored-window RACK run.
    assert!(
        with_rack <= with_sack,
        "spurious-RTO undo should not lose: rack {with_rack} vs sack {with_sack}"
    );
}
