//! Property test: TCP delivers arbitrary byte streams intact, in order,
//! through handshake, segmentation and reassembly.

use bytes::Bytes;
use mm_net::{
    Host, IpAddr, Listener, Namespace, PacketIdGen, SocketAddr, SocketApp, SocketEvent, TcpHandle,
};
use mm_sim::Simulator;
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

struct Collect {
    buf: Rc<RefCell<Vec<u8>>>,
}
impl SocketApp for Collect {
    fn on_event(&self, _sim: &mut Simulator, _h: &TcpHandle, ev: SocketEvent) {
        if let SocketEvent::Data(b) = ev {
            self.buf.borrow_mut().extend_from_slice(&b);
        }
    }
}

struct Sink {
    buf: Rc<RefCell<Vec<u8>>>,
}
impl Listener for Sink {
    fn on_connection(&self, _sim: &mut Simulator, _h: TcpHandle) -> Rc<dyn SocketApp> {
        Rc::new(Collect {
            buf: self.buf.clone(),
        })
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn tcp_stream_integrity(chunks in prop::collection::vec(
        prop::collection::vec(any::<u8>(), 0..5000), 1..8)) {
        let mut sim = Simulator::new();
        let ns = Namespace::root("w");
        let ids = PacketIdGen::new();
        let client = Host::new_in(IpAddr::new(10, 0, 0, 1), ids.clone(), &ns);
        let server = Host::new_in(IpAddr::new(10, 0, 0, 2), ids, &ns);
        let received = Rc::new(RefCell::new(Vec::new()));
        server.listen(80, Rc::new(Sink { buf: received.clone() }));

        struct SendAll {
            chunks: RefCell<Vec<Vec<u8>>>,
        }
        impl SocketApp for SendAll {
            fn on_event(&self, sim: &mut Simulator, h: &TcpHandle, ev: SocketEvent) {
                if matches!(ev, SocketEvent::Connected) {
                    for c in self.chunks.borrow_mut().drain(..) {
                        h.send(sim, Bytes::from(c));
                    }
                }
            }
        }
        let expected: Vec<u8> = chunks.concat();
        client.connect(
            &mut sim,
            SocketAddr::new(server.ip(), 80),
            Rc::new(SendAll { chunks: RefCell::new(chunks) }),
        );
        sim.run();
        prop_assert_eq!(&received.borrow()[..], &expected[..]);
    }
}
