//! Property tests: TCP delivers arbitrary byte streams intact, in order,
//! through handshake, segmentation and reassembly; the SACK scoreboard
//! keeps its structural invariants under arbitrary block/ack
//! interleavings; and SACK loss recovery terminates with the pipe
//! estimate bounded by the bytes in flight.

use bytes::Bytes;
use mm_net::tcp::sack::Scoreboard;
use mm_net::{
    Host, IpAddr, Listener, Namespace, Packet, PacketIdGen, PacketSink, SackBlock, SinkRef,
    SocketAddr, SocketApp, SocketEvent, TcpConfig, TcpHandle,
};
use mm_sim::{SimDuration, Simulator};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

struct Collect {
    buf: Rc<RefCell<Vec<u8>>>,
}
impl SocketApp for Collect {
    fn on_event(&self, _sim: &mut Simulator, _h: &TcpHandle, ev: SocketEvent) {
        if let SocketEvent::Data(b) = ev {
            self.buf.borrow_mut().extend_from_slice(&b);
        }
    }
}

struct Sink {
    buf: Rc<RefCell<Vec<u8>>>,
}
impl Listener for Sink {
    fn on_connection(&self, _sim: &mut Simulator, _h: TcpHandle) -> Rc<dyn SocketApp> {
        Rc::new(Collect {
            buf: self.buf.clone(),
        })
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn tcp_stream_integrity(chunks in prop::collection::vec(
        prop::collection::vec(any::<u8>(), 0..5000), 1..8)) {
        let mut sim = Simulator::new();
        let ns = Namespace::root("w");
        let ids = PacketIdGen::new();
        let client = Host::new_in(IpAddr::new(10, 0, 0, 1), ids.clone(), &ns);
        let server = Host::new_in(IpAddr::new(10, 0, 0, 2), ids, &ns);
        let received = Rc::new(RefCell::new(Vec::new()));
        server.listen(80, Rc::new(Sink { buf: received.clone() }));

        struct SendAll {
            chunks: RefCell<Vec<Vec<u8>>>,
        }
        impl SocketApp for SendAll {
            fn on_event(&self, sim: &mut Simulator, h: &TcpHandle, ev: SocketEvent) {
                if matches!(ev, SocketEvent::Connected) {
                    for c in self.chunks.borrow_mut().drain(..) {
                        h.send(sim, Bytes::from(c));
                    }
                }
            }
        }
        let expected: Vec<u8> = chunks.concat();
        client.connect(
            &mut sim,
            SocketAddr::new(server.ip(), 80),
            Rc::new(SendAll { chunks: RefCell::new(chunks) }),
        );
        sim.run();
        prop_assert_eq!(&received.borrow()[..], &expected[..]);
    }
}

/// One scoreboard operation: merge a SACK block or advance the
/// cumulative ack.
#[derive(Debug, Clone)]
enum SbOp {
    Add { start: u64, len: u64 },
    Advance { to: u64 },
}

fn sb_ops() -> impl Strategy<Value = Vec<SbOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..50_000, 1u64..5000).prop_map(|(start, len)| SbOp::Add { start, len }),
            (0u64..60_000).prop_map(|to| SbOp::Advance { to }),
        ],
        1..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn scoreboard_ranges_sorted_disjoint_nonadjacent(ops in sb_ops()) {
        let mut sb = Scoreboard::new();
        let mut una = 0u64;
        for op in ops {
            match op {
                SbOp::Add { start, len } => {
                    sb.add_blocks(&[SackBlock::new(start, start + len)], una);
                }
                SbOp::Advance { to } => {
                    una = una.max(to);
                    sb.advance(una);
                }
            }
            // Invariants after every step: sorted, disjoint, with real
            // gaps between ranges (adjacent ranges must have merged),
            // nothing below the cumulative ack.
            let ranges = sb.ranges();
            for r in ranges {
                prop_assert!(r.start < r.end);
                prop_assert!(r.start >= una);
            }
            for w in ranges.windows(2) {
                prop_assert!(w[0].end < w[1].start,
                    "ranges {:?} not disjoint/merged", ranges);
            }
            // Byte accounting agrees with the ranges.
            let total: u64 = ranges.iter().map(|r| r.end - r.start).sum();
            prop_assert_eq!(total, sb.sacked_bytes());
        }
    }

    #[test]
    fn scoreboard_add_is_idempotent_and_monotone(ops in sb_ops()) {
        let mut sb = Scoreboard::new();
        for op in &ops {
            if let SbOp::Add { start, len } = op {
                sb.add_blocks(&[SackBlock::new(*start, start + len)], 0);
            }
        }
        let bytes = sb.sacked_bytes();
        let ranges: Vec<_> = sb.ranges().to_vec();
        // Re-adding every block changes nothing.
        for op in &ops {
            if let SbOp::Add { start, len } = op {
                let newly = sb.add_blocks(&[SackBlock::new(*start, start + len)], 0);
                prop_assert_eq!(newly, 0);
            }
        }
        prop_assert_eq!(sb.sacked_bytes(), bytes);
        prop_assert_eq!(sb.ranges(), &ranges[..]);
    }
}

/// Drops the data segments whose 0-based first-transmission index is in
/// `drops`, once each; samples the sender's pipe/flight invariant on
/// every packet it forwards.
struct DropByIndex {
    next: SinkRef,
    drops: Vec<u64>,
    seen: RefCell<u64>,
    dropped_seqs: RefCell<Vec<u64>>,
    handle: RefCell<Option<TcpHandle>>,
    violations: Rc<RefCell<Vec<(u64, u64)>>>,
}

impl PacketSink for DropByIndex {
    fn deliver(&self, sim: &mut Simulator, pkt: Packet) {
        if let Some(h) = self.handle.borrow().as_ref() {
            let pipe = h.pipe_estimate();
            let flight = h.flight_bytes();
            if pipe > flight {
                self.violations.borrow_mut().push((pipe, flight));
            }
        }
        if !pkt.segment.payload.is_empty() && !self.dropped_seqs.borrow().contains(&pkt.segment.seq)
        {
            let idx = {
                let mut seen = self.seen.borrow_mut();
                let i = *seen;
                *seen += 1;
                i
            };
            if self.drops.contains(&idx) {
                self.dropped_seqs.borrow_mut().push(pkt.segment.seq);
                return;
            }
        }
        let next = self.next.clone();
        sim.schedule_in(SimDuration::from_millis(20), move |sim| {
            next.deliver(sim, pkt)
        });
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn sack_recovery_terminates_and_pipe_bounded(
        total in 10_000usize..120_000,
        drops in prop::collection::vec(0u64..60, 0..12),
    ) {
        let mut sim = Simulator::new();
        let ns = Namespace::root("w");
        let ids = PacketIdGen::new();
        let client = Host::new(IpAddr::new(10, 0, 0, 1), ids.clone());
        let server = Host::new_in(IpAddr::new(10, 0, 0, 2), ids, &ns);
        let config = TcpConfig { sack: true, ..TcpConfig::default() };
        client.set_tcp_config(config.clone());
        server.set_tcp_config(config);

        let violations = Rc::new(RefCell::new(Vec::new()));
        let wire = Rc::new(DropByIndex {
            next: ns.router(),
            drops: drops.clone(),
            seen: RefCell::new(0),
            dropped_seqs: RefCell::new(Vec::new()),
            handle: RefCell::new(None),
            violations: violations.clone(),
        });
        ns.add_host(client.ip(), client.sink());
        client.set_egress(wire.clone());

        let received = Rc::new(RefCell::new(Vec::new()));
        server.listen(80, Rc::new(Sink { buf: received.clone() }));
        let payload: Vec<u8> = (0..total as u32).map(|i| (i % 251) as u8).collect();
        struct SendAll { data: RefCell<Option<Bytes>> }
        impl SocketApp for SendAll {
            fn on_event(&self, sim: &mut Simulator, h: &TcpHandle, ev: SocketEvent) {
                if matches!(ev, SocketEvent::Connected) {
                    if let Some(d) = self.data.borrow_mut().take() {
                        h.send(sim, d);
                    }
                }
            }
        }
        let h = client.connect(
            &mut sim,
            SocketAddr::new(server.ip(), 80),
            Rc::new(SendAll { data: RefCell::new(Some(Bytes::from(payload.clone()))) }),
        );
        *wire.handle.borrow_mut() = Some(h.clone());
        sim.run();
        // Recovery terminated: the whole stream arrived intact (the
        // simulator ran out of events, so nothing is stuck retrying).
        prop_assert_eq!(&received.borrow()[..], &payload[..]);
        prop_assert!(h.sack_enabled());
        prop_assert!(
            violations.borrow().is_empty(),
            "pipe exceeded flight: {:?}", violations.borrow()
        );
    }
}
