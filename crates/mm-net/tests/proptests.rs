//! Property tests: TCP delivers arbitrary byte streams intact, in order,
//! through handshake, segmentation and reassembly; the SACK scoreboard
//! keeps its structural invariants under arbitrary block/ack
//! interleavings; SACK and RACK-TLP loss recovery terminate with the
//! incremental pipe estimate equal to the definitional walk and bounded
//! by the bytes in flight; the RACK state machine keeps its
//! reordering-window and delivery-clock invariants; and delayed-ACK ×
//! SACK interaction acks immediately, with blocks, while holes exist.

use bytes::Bytes;
use mm_net::tcp::pacing::Pacer;
use mm_net::tcp::rack::RackState;
use mm_net::tcp::rate::{MinRttFilter, RateEstimator};
use mm_net::tcp::sack::Scoreboard;
use mm_net::{
    CcAlgorithm, Host, IpAddr, Listener, Namespace, Packet, PacketIdGen, PacketSink, RecoveryTier,
    SackBlock, SinkRef, SocketAddr, SocketApp, SocketEvent, TcpConfig, TcpHandle,
};
use mm_sim::{SimDuration, Simulator, Timestamp};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

struct Collect {
    buf: Rc<RefCell<Vec<u8>>>,
}
impl SocketApp for Collect {
    fn on_event(&self, _sim: &mut Simulator, _h: &TcpHandle, ev: SocketEvent) {
        if let SocketEvent::Data(b) = ev {
            self.buf.borrow_mut().extend_from_slice(&b);
        }
    }
}

struct Sink {
    buf: Rc<RefCell<Vec<u8>>>,
}
impl Listener for Sink {
    fn on_connection(&self, _sim: &mut Simulator, _h: TcpHandle) -> Rc<dyn SocketApp> {
        Rc::new(Collect {
            buf: self.buf.clone(),
        })
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn tcp_stream_integrity(chunks in prop::collection::vec(
        prop::collection::vec(any::<u8>(), 0..5000), 1..8)) {
        let mut sim = Simulator::new();
        let ns = Namespace::root("w");
        let ids = PacketIdGen::new();
        let client = Host::new_in(IpAddr::new(10, 0, 0, 1), ids.clone(), &ns);
        let server = Host::new_in(IpAddr::new(10, 0, 0, 2), ids, &ns);
        let received = Rc::new(RefCell::new(Vec::new()));
        server.listen(80, Rc::new(Sink { buf: received.clone() }));

        struct SendAll {
            chunks: RefCell<Vec<Vec<u8>>>,
        }
        impl SocketApp for SendAll {
            fn on_event(&self, sim: &mut Simulator, h: &TcpHandle, ev: SocketEvent) {
                if matches!(ev, SocketEvent::Connected) {
                    for c in self.chunks.borrow_mut().drain(..) {
                        h.send(sim, Bytes::from(c));
                    }
                }
            }
        }
        let expected: Vec<u8> = chunks.concat();
        client.connect(
            &mut sim,
            SocketAddr::new(server.ip(), 80),
            Rc::new(SendAll { chunks: RefCell::new(chunks) }),
        );
        sim.run();
        prop_assert_eq!(&received.borrow()[..], &expected[..]);
    }
}

/// One scoreboard operation: merge a SACK block or advance the
/// cumulative ack.
#[derive(Debug, Clone)]
enum SbOp {
    Add { start: u64, len: u64 },
    Advance { to: u64 },
}

fn sb_ops() -> impl Strategy<Value = Vec<SbOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..50_000, 1u64..5000).prop_map(|(start, len)| SbOp::Add { start, len }),
            (0u64..60_000).prop_map(|to| SbOp::Advance { to }),
        ],
        1..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn scoreboard_ranges_sorted_disjoint_nonadjacent(ops in sb_ops()) {
        let mut sb = Scoreboard::new();
        let mut una = 0u64;
        for op in ops {
            match op {
                SbOp::Add { start, len } => {
                    sb.add_blocks(&[SackBlock::new(start, start + len)], una);
                }
                SbOp::Advance { to } => {
                    una = una.max(to);
                    sb.advance(una);
                }
            }
            // Invariants after every step: sorted, disjoint, with real
            // gaps between ranges (adjacent ranges must have merged),
            // nothing below the cumulative ack.
            let ranges = sb.ranges();
            for r in ranges {
                prop_assert!(r.start < r.end);
                prop_assert!(r.start >= una);
            }
            for w in ranges.windows(2) {
                prop_assert!(w[0].end < w[1].start,
                    "ranges {:?} not disjoint/merged", ranges);
            }
            // Byte accounting agrees with the ranges.
            let total: u64 = ranges.iter().map(|r| r.end - r.start).sum();
            prop_assert_eq!(total, sb.sacked_bytes());
        }
    }

    #[test]
    fn scoreboard_add_is_idempotent_and_monotone(ops in sb_ops()) {
        let mut sb = Scoreboard::new();
        for op in &ops {
            if let SbOp::Add { start, len } = op {
                sb.add_blocks(&[SackBlock::new(*start, start + len)], 0);
            }
        }
        let bytes = sb.sacked_bytes();
        let ranges: Vec<_> = sb.ranges().to_vec();
        // Re-adding every block changes nothing.
        for op in &ops {
            if let SbOp::Add { start, len } = op {
                let newly = sb.add_blocks(&[SackBlock::new(*start, start + len)], 0);
                prop_assert_eq!(newly, 0);
            }
        }
        prop_assert_eq!(sb.sacked_bytes(), bytes);
        prop_assert_eq!(sb.ranges(), &ranges[..]);
    }
}

/// Drops the data segments whose 0-based first-transmission index is in
/// `drops`, once each; samples the sender's pipe/flight invariant — and
/// the incremental-pipe-equals-walk invariant — on every packet it
/// forwards.
struct DropByIndex {
    next: SinkRef,
    drops: Vec<u64>,
    seen: RefCell<u64>,
    dropped_seqs: RefCell<Vec<u64>>,
    handle: RefCell<Option<TcpHandle>>,
    violations: Rc<RefCell<Vec<(u64, u64)>>>,
}

impl PacketSink for DropByIndex {
    fn deliver(&self, sim: &mut Simulator, pkt: Packet) {
        if let Some(h) = self.handle.borrow().as_ref() {
            let pipe = h.pipe_estimate();
            let flight = h.flight_bytes();
            if pipe > flight {
                self.violations.borrow_mut().push((pipe, flight));
            }
            let walk = h.pipe_estimate_walk();
            if pipe != walk {
                self.violations.borrow_mut().push((pipe, walk));
            }
        }
        if !pkt.segment.payload.is_empty() && !self.dropped_seqs.borrow().contains(&pkt.segment.seq)
        {
            let idx = {
                let mut seen = self.seen.borrow_mut();
                let i = *seen;
                *seen += 1;
                i
            };
            if self.drops.contains(&idx) {
                self.dropped_seqs.borrow_mut().push(pkt.segment.seq);
                return;
            }
        }
        let next = self.next.clone();
        sim.schedule_in(SimDuration::from_millis(20), move |sim| {
            next.deliver(sim, pkt)
        });
    }
}

/// Shared body: transfer `total` bytes under `config` dropping data
/// segments by first-transmission index, asserting stream integrity,
/// recovery termination, and the pipe invariants sampled on every
/// packet.
fn recovery_terminates(config: TcpConfig, total: usize, drops: &[u64]) {
    let mut sim = Simulator::new();
    let ns = Namespace::root("w");
    let ids = PacketIdGen::new();
    let client = Host::new(IpAddr::new(10, 0, 0, 1), ids.clone());
    let server = Host::new_in(IpAddr::new(10, 0, 0, 2), ids, &ns);
    client.set_tcp_config(config.clone());
    server.set_tcp_config(config);

    let violations = Rc::new(RefCell::new(Vec::new()));
    let wire = Rc::new(DropByIndex {
        next: ns.router(),
        drops: drops.to_vec(),
        seen: RefCell::new(0),
        dropped_seqs: RefCell::new(Vec::new()),
        handle: RefCell::new(None),
        violations: violations.clone(),
    });
    ns.add_host(client.ip(), client.sink());
    client.set_egress(wire.clone());

    let received = Rc::new(RefCell::new(Vec::new()));
    server.listen(
        80,
        Rc::new(Sink {
            buf: received.clone(),
        }),
    );
    let payload: Vec<u8> = (0..total as u32).map(|i| (i % 251) as u8).collect();
    struct SendAll {
        data: RefCell<Option<Bytes>>,
    }
    impl SocketApp for SendAll {
        fn on_event(&self, sim: &mut Simulator, h: &TcpHandle, ev: SocketEvent) {
            if matches!(ev, SocketEvent::Connected) {
                if let Some(d) = self.data.borrow_mut().take() {
                    h.send(sim, d);
                }
            }
        }
    }
    let h = client.connect(
        &mut sim,
        SocketAddr::new(server.ip(), 80),
        Rc::new(SendAll {
            data: RefCell::new(Some(Bytes::from(payload.clone()))),
        }),
    );
    *wire.handle.borrow_mut() = Some(h.clone());
    sim.run();
    // Recovery terminated: the whole stream arrived intact (the
    // simulator ran out of events, so nothing is stuck retrying).
    assert_eq!(&received.borrow()[..], &payload[..]);
    assert!(h.sack_enabled());
    assert!(
        violations.borrow().is_empty(),
        "pipe violated flight bound or walk equality: {:?}",
        violations.borrow()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn sack_recovery_terminates_and_pipe_bounded(
        total in 10_000usize..120_000,
        drops in prop::collection::vec(0u64..60, 0..12),
    ) {
        recovery_terminates(
            TcpConfig::builder().recovery(RecoveryTier::Sack).build(),
            total,
            &drops,
        );
    }

    #[test]
    fn racktlp_recovery_terminates_and_pipe_bounded(
        total in 10_000usize..120_000,
        drops in prop::collection::vec(0u64..60, 0..12),
    ) {
        // Same invariants with the time-based machinery live: RACK marks,
        // TLP probes and F-RTO must never corrupt the stream, stall the
        // transfer, or desynchronize the incremental pipe. (The
        // TLP-never-fires-past-a-nearer-RTO invariant is a debug
        // assertion exercised by every one of these cases.)
        recovery_terminates(
            TcpConfig::builder().recovery(RecoveryTier::RackTlp).build(),
            total,
            &drops,
        );
    }

    #[test]
    fn bbr_paced_recovery_terminates_and_pipe_bounded(
        total in 10_000usize..120_000,
        drops in prop::collection::vec(0u64..60, 0..12),
    ) {
        // The rate-control subsystem live end to end: BBR's model, the
        // pacer's release timer, rate samples from both cumulative and
        // SACK deliveries — under arbitrary drop sets the stream must
        // still arrive intact with the pipe invariants holding on every
        // packet.
        recovery_terminates(
            TcpConfig::builder()
                .cc(CcAlgorithm::Bbr)
                .recovery(RecoveryTier::RackTlp)
                .build(),
            total,
            &drops,
        );
    }
}

/// Mirror of the receiver's reassembly state, maintained by the wires on
/// either side of the server, used to check the delayed-ACK × SACK
/// contract: while holes exist, every ACK leaves immediately (no
/// delayed-ACK batching) and carries SACK blocks.
#[derive(Default)]
struct ReceiverModel {
    rcv_nxt: u64,
    ooo: std::collections::BTreeMap<u64, u64>,
    /// 1 while a data arrival that demanded an immediate ACK is still
    /// unacked; the next data arrival finding it set is a violation.
    pending_immediate: u32,
    /// Whether any hole ever existed (guards tests against vacuity).
    holes_seen: bool,
    violations: Vec<String>,
}

impl ReceiverModel {
    fn holes(&self) -> bool {
        !self.ooo.is_empty()
    }

    fn on_data(&mut self, seq: u64, len: u64) {
        if self.pending_immediate > 0 {
            self.violations.push(format!(
                "data at seq {seq} arrived before the previous in-hole arrival was acked"
            ));
        }
        let end = seq + len;
        if end > self.rcv_nxt {
            let start = seq.max(self.rcv_nxt);
            if start == self.rcv_nxt {
                self.rcv_nxt = end;
                // Drain contiguous out-of-order coverage.
                while let Some((&oseq, &olen)) = self.ooo.iter().next() {
                    if oseq > self.rcv_nxt {
                        break;
                    }
                    self.ooo.pop_first();
                    self.rcv_nxt = self.rcv_nxt.max(oseq + olen);
                }
            } else {
                self.ooo.entry(start).or_insert(end - start);
            }
        }
        // Any arrival while holes remain — out-of-order, duplicate, or
        // in-order below the holes — must be acked before the next data
        // segment is processed.
        self.pending_immediate = if self.holes() { 1 } else { 0 };
        self.holes_seen |= self.holes();
    }

    fn on_ack(&mut self, blocks_len: usize) {
        if self.holes() && blocks_len == 0 {
            self.violations
                .push("ACK without SACK blocks while holes exist".to_string());
        }
        self.pending_immediate = 0;
    }
}

/// Client→server wire: drops by first-transmission index, then delivers
/// after a fixed delay, updating the shared model in the same event as
/// the server's dispatch (scheduled just before it, so the ACK the
/// server emits observes the updated model).
struct ModelledDataWire {
    next: SinkRef,
    delay: SimDuration,
    drops: Vec<u64>,
    seen: RefCell<u64>,
    dropped_seqs: RefCell<Vec<u64>>,
    model: Rc<RefCell<ReceiverModel>>,
}

impl PacketSink for ModelledDataWire {
    fn deliver(&self, sim: &mut Simulator, pkt: Packet) {
        if !pkt.segment.payload.is_empty() && !self.dropped_seqs.borrow().contains(&pkt.segment.seq)
        {
            let idx = {
                let mut seen = self.seen.borrow_mut();
                let i = *seen;
                *seen += 1;
                i
            };
            if self.drops.contains(&idx) {
                self.dropped_seqs.borrow_mut().push(pkt.segment.seq);
                return;
            }
        }
        let next = self.next.clone();
        let model = self.model.clone();
        sim.schedule_in(self.delay, move |sim| {
            if !pkt.segment.payload.is_empty() {
                let (seq, len) = (pkt.segment.seq, pkt.segment.payload.len() as u64);
                let m = model.clone();
                // Runs before the host's same-timestamp dispatch of this
                // packet, and after the dispatch of every earlier one.
                sim.schedule_at(sim.now(), move |_| m.borrow_mut().on_data(seq, len));
            }
            next.deliver(sim, pkt);
        });
    }
}

/// Server→client wire: checks each ACK against the model synchronously
/// (it is invoked inside the server's dispatch, after the model update
/// for the triggering data segment), then delivers after the delay.
struct AckCheckWire {
    next: SinkRef,
    delay: SimDuration,
    model: Rc<RefCell<ReceiverModel>>,
}

impl PacketSink for AckCheckWire {
    fn deliver(&self, sim: &mut Simulator, pkt: Packet) {
        if pkt.segment.payload.is_empty() && !pkt.segment.flags.syn {
            self.model
                .borrow_mut()
                .on_ack(pkt.segment.sack.blocks.len());
        }
        let next = self.next.clone();
        sim.schedule_in(self.delay, move |sim| next.deliver(sim, pkt));
    }
}

/// Transfer with delayed ACKs + the given recovery tier under arbitrary
/// drops, returning the model's violations.
fn delayed_ack_sack_transfer(
    tier: RecoveryTier,
    total: usize,
    drops: &[u64],
) -> (Vec<u8>, Vec<u8>, Vec<String>, bool) {
    let mut sim = Simulator::new();
    let ns = Namespace::root("w");
    let ids = PacketIdGen::new();
    let client = Host::new(IpAddr::new(10, 0, 0, 1), ids.clone());
    let server = Host::new(IpAddr::new(10, 0, 0, 2), ids);
    let config = TcpConfig::builder()
        .recovery(tier)
        .delayed_ack(SimDuration::from_millis(40))
        .build();
    client.set_tcp_config(config.clone());
    server.set_tcp_config(config);

    let model = Rc::new(RefCell::new(ReceiverModel {
        // The client's SYN consumes sequence number 0; its data stream
        // starts at 1.
        rcv_nxt: 1,
        ..ReceiverModel::default()
    }));
    let delay = SimDuration::from_millis(20);
    // Server reachable through the namespace; its ACKs flow back through
    // the checking wire straight to the client's sink.
    ns.add_host(server.ip(), server.sink());
    server.set_egress(Rc::new(AckCheckWire {
        next: client.sink(),
        delay,
        model: model.clone(),
    }));
    client.set_egress(Rc::new(ModelledDataWire {
        next: ns.router(),
        delay,
        drops: drops.to_vec(),
        seen: RefCell::new(0),
        dropped_seqs: RefCell::new(Vec::new()),
        model: model.clone(),
    }));

    let received = Rc::new(RefCell::new(Vec::new()));
    server.listen(
        80,
        Rc::new(Sink {
            buf: received.clone(),
        }),
    );
    let payload: Vec<u8> = (0..total as u32).map(|i| (i % 251) as u8).collect();
    struct SendAll {
        data: RefCell<Option<Bytes>>,
    }
    impl SocketApp for SendAll {
        fn on_event(&self, sim: &mut Simulator, h: &TcpHandle, ev: SocketEvent) {
            if matches!(ev, SocketEvent::Connected) {
                if let Some(d) = self.data.borrow_mut().take() {
                    h.send(sim, d);
                }
            }
        }
    }
    client.connect(
        &mut sim,
        SocketAddr::new(server.ip(), 80),
        Rc::new(SendAll {
            data: RefCell::new(Some(Bytes::from(payload.clone()))),
        }),
    );
    sim.run();
    let violations = model.borrow().violations.clone();
    let holes_seen = model.borrow().holes_seen;
    let got = received.borrow().clone();
    (payload, got, violations, holes_seen)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn delayed_ack_sack_acks_immediately_with_blocks_while_holes(
        total in 10_000usize..100_000,
        drops in prop::collection::vec(0u64..50, 0..10),
    ) {
        let (payload, got, violations, _) =
            delayed_ack_sack_transfer(RecoveryTier::Sack, total, &drops);
        prop_assert_eq!(&got[..], &payload[..]);
        prop_assert!(violations.is_empty(), "{:?}", violations);
    }
}

/// Deterministic end-to-end pin of the same contract: one mid-stream
/// drop under delayed ACKs, holes provably existed, every in-hole ACK
/// left immediately and carried blocks, and the stream arrived intact.
#[test]
fn delayed_ack_sack_single_drop_e2e() {
    let (payload, got, violations, holes_seen) =
        delayed_ack_sack_transfer(RecoveryTier::Sack, 60_000, &[12]);
    assert_eq!(&got[..], &payload[..]);
    assert!(holes_seen, "the dropped segment must have opened a hole");
    assert!(violations.is_empty(), "{violations:?}");
}

/// One operation against the RACK state machine.
#[derive(Debug, Clone)]
enum RackOp {
    /// A delivery observed `rtt_ms` after its transmission.
    Deliver {
        sent_ms: u64,
        end_seq: u64,
        rtt_ms: u64,
        retransmitted: bool,
    },
    /// A RACK loss mark was disproven.
    SpuriousMark,
}

fn rack_ops() -> impl Strategy<Value = Vec<RackOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..10_000, 1u64..1 << 20, 5u64..500, any::<bool>()).prop_map(
                |(sent_ms, end_seq, rtt_ms, retransmitted)| RackOp::Deliver {
                    sent_ms,
                    end_seq,
                    rtt_ms,
                    retransmitted,
                }
            ),
            Just(RackOp::SpuriousMark),
        ],
        1..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn rack_reo_window_monotone_under_fixed_min_rtt(ops in rack_ops()) {
        let mut r = RackState::new();
        // Pin min_rtt below every generated sample so the window base is
        // fixed and the adaptive multiplier's monotonicity is observable.
        r.on_delivered(Timestamp::ZERO, 1, false, Timestamp::from_millis(5));
        let mut prev = r.reo_wnd();
        for op in ops {
            match op {
                RackOp::Deliver { sent_ms, end_seq, rtt_ms, retransmitted } => {
                    let sent = Timestamp::from_millis(sent_ms);
                    r.on_delivered(sent, end_seq, retransmitted,
                        sent + SimDuration::from_millis(rtt_ms));
                }
                RackOp::SpuriousMark => r.on_spurious_mark(),
            }
            let w = r.reo_wnd();
            prop_assert!(w >= prev, "reordering window narrowed: {} -> {}", prev, w);
            prev = w;
        }
    }

    #[test]
    fn rack_never_marks_segments_sent_after_the_clock(
        ops in rack_ops(),
        probe_dt_ms in 0u64..100_000,
        probe_end in 1u64..1 << 20,
        now_ms in 0u64..1_000_000,
    ) {
        let mut r = RackState::new();
        for op in ops {
            match op {
                RackOp::Deliver { sent_ms, end_seq, rtt_ms, retransmitted } => {
                    let sent = Timestamp::from_millis(sent_ms);
                    r.on_delivered(sent, end_seq, retransmitted,
                        sent + SimDuration::from_millis(rtt_ms));
                }
                RackOp::SpuriousMark => r.on_spurious_mark(),
            }
            // Whatever the history, nothing transmitted at or after the
            // delivery clock is ever deemed lost, at any observation
            // time: it has had no chance to be overtaken.
            if let Some((clock_ts, clock_end)) = r.clock() {
                let later = clock_ts + SimDuration::from_millis(probe_dt_ms);
                let now = Timestamp::from_millis(now_ms);
                prop_assert!(!r.is_lost(later + SimDuration::from_nanos(1), probe_end, now));
                prop_assert!(!r.is_lost(clock_ts, clock_end + probe_end, now));
            }
        }
    }
}

/// One sender burst in the fixed-rate-world rate-sample property: wait
/// `gap_ms`, then hand `burst` segments to the link queue at once.
#[derive(Debug, Clone)]
struct Burst {
    gap_ms: u64,
    burst: usize,
}

fn bursts() -> impl Strategy<Value = Vec<Burst>> {
    prop::collection::vec(
        (0u64..80, 1usize..16).prop_map(|(gap_ms, burst)| Burst { gap_ms, burst }),
        1..20,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    /// Delivery-rate samples in a fixed-rate world never exceed the
    /// link rate, no matter how the sender bursts: the max(send-elapsed,
    /// ack-elapsed) interval rule is exactly what prevents a burst from
    /// reading as bandwidth. (Samples are u64 — "never negative" holds
    /// by construction; the substantive bound is the link rate.)
    #[test]
    fn rate_samples_bounded_by_fixed_link_rate(sends in bursts()) {
        const SEG: u64 = 1000;
        const GAP_MS: u64 = 10; // one segment per 10 ms = 100 kB/s
        const RATE: u64 = SEG * 1000 / GAP_MS;
        let mut e = RateEstimator::new();
        // FIFO of segments on the wire: (stamped record, send time).
        let mut wire: std::collections::VecDeque<(mm_net::tcp::rate::TxRecord, Timestamp)> =
            std::collections::VecDeque::new();
        let mut now = Timestamp::ZERO;
        // The link's next free delivery slot.
        let mut next_slot = Timestamp::ZERO;
        for b in sends {
            now += SimDuration::from_millis(b.gap_ms);
            // Deliver everything whose slot has passed. Store-and-forward:
            // every segment, including one meeting an idle link, takes a
            // full serialization interval — the property is a statement
            // about links that actually rate-limit, and a zero-cost first
            // hop would legitimately deliver two segments within one gap.
            while let Some(&(rec, sent_at)) = wire.front() {
                let slot = next_slot.max(sent_at) + SimDuration::from_millis(GAP_MS);
                if slot > now {
                    break;
                }
                wire.pop_front();
                next_slot = slot;
                e.on_delivery(SEG, slot);
                if let Some(s) = e.sample(&rec, sent_at, slot) {
                    // +1 absorbs integer rounding in the division.
                    prop_assert!(
                        s.bw <= RATE + 1,
                        "sample {} exceeds link rate {}",
                        s.bw,
                        RATE
                    );
                }
            }
            for _ in 0..b.burst {
                let rec = e.on_send(now, wire.is_empty());
                wire.push_back((rec, now));
            }
        }
    }

    /// The pacer's release schedule is a hard rate bound: over any
    /// horizon, released bytes never exceed rate × elapsed plus the one
    /// immediately-released segment, however erratically the sender
    /// polls.
    #[test]
    fn pacer_releases_bounded_by_rate(
        polls in prop::collection::vec(1u64..20_000, 1..120),
        rate in 10_000u64..10_000_000,
        seg in 100u64..1500,
    ) {
        let mut p = Pacer::new();
        let mut sent = 0u64;
        let mut now_ns = 0u64;
        for dt_us in polls {
            now_ns += dt_us * 1000;
            let now = Timestamp::from_nanos(now_ns);
            while p.can_send(now) {
                p.on_sent(now, seg, rate);
                sent += seg;
            }
            let budget = (rate as u128 * now_ns as u128 / 1_000_000_000) as u64 + seg;
            prop_assert!(
                sent <= budget,
                "released {} > budget {} at t={}ns",
                sent,
                budget,
                now_ns
            );
        }
    }

    /// The windowed min-RTT filter equals a brute-force oracle after
    /// every update, and is monotone non-increasing between expiries:
    /// within a window, new samples can only lower (or hold) the
    /// minimum.
    #[test]
    fn min_rtt_filter_matches_oracle_and_is_monotone_within_window(
        samples in prop::collection::vec((0u64..3000, 1u64..500), 1..80),
    ) {
        const WINDOW_MS: u64 = 5000;
        let mut f = MinRttFilter::new(SimDuration::from_millis(WINDOW_MS));
        let mut oracle: Vec<(u64, u64)> = Vec::new(); // (time ms, rtt ms)
        let mut now_ms = 0u64;
        let mut prev_min: Option<u64> = None;
        for (dt_ms, rtt_ms) in samples {
            now_ms += dt_ms;
            let expired = oracle
                .iter()
                .any(|&(t, _)| now_ms.saturating_sub(t) > WINDOW_MS);
            oracle.retain(|&(t, _)| now_ms.saturating_sub(t) <= WINDOW_MS);
            oracle.push((now_ms, rtt_ms));
            f.update(SimDuration::from_millis(rtt_ms), Timestamp::from_millis(now_ms));
            let min = oracle.iter().map(|&(_, r)| r).min().unwrap();
            prop_assert_eq!(f.min(), Some(SimDuration::from_millis(min)));
            if let Some(prev) = prev_min {
                if !expired {
                    prop_assert!(
                        min <= prev,
                        "minimum rose from {} to {} with nothing expired",
                        prev,
                        min
                    );
                }
            }
            prev_min = Some(min);
        }
    }
}

/// Every new-data transmission is window-gated *before* the pacer sees
/// it, so pacing can delay — never expand — what cwnd permits: on a
/// clean paced BBR transfer, flight ≤ cwnd holds at every forwarded
/// packet.
struct FlightVsCwnd {
    next: SinkRef,
    delay: SimDuration,
    handle: RefCell<Option<TcpHandle>>,
    violations: Rc<RefCell<Vec<(u64, u64)>>>,
}

impl PacketSink for FlightVsCwnd {
    fn deliver(&self, sim: &mut Simulator, pkt: Packet) {
        if let Some(h) = self.handle.borrow().as_ref() {
            let (flight, cwnd) = (h.flight_bytes(), h.cwnd());
            if flight > cwnd {
                self.violations.borrow_mut().push((flight, cwnd));
            }
        }
        let next = self.next.clone();
        sim.schedule_in(self.delay, move |sim| next.deliver(sim, pkt));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn paced_flight_never_exceeds_cwnd(
        total in 5_000usize..200_000,
        delay_ms in 1u64..60,
    ) {
        let mut sim = Simulator::new();
        let ns = Namespace::root("w");
        let ids = PacketIdGen::new();
        let client = Host::new(IpAddr::new(10, 0, 0, 1), ids.clone());
        let server = Host::new_in(IpAddr::new(10, 0, 0, 2), ids, &ns);
        let config = TcpConfig::builder()
            .cc(CcAlgorithm::Bbr)
            .recovery(RecoveryTier::RackTlp)
            .build();
        client.set_tcp_config(config.clone());
        server.set_tcp_config(config);
        let violations = Rc::new(RefCell::new(Vec::new()));
        let wire = Rc::new(FlightVsCwnd {
            next: ns.router(),
            delay: SimDuration::from_millis(delay_ms),
            handle: RefCell::new(None),
            violations: violations.clone(),
        });
        ns.add_host(client.ip(), client.sink());
        client.set_egress(wire.clone());
        let received = Rc::new(RefCell::new(Vec::new()));
        server.listen(80, Rc::new(Sink { buf: received.clone() }));
        let payload: Vec<u8> = (0..total as u32).map(|i| (i % 251) as u8).collect();
        struct SendAll {
            data: RefCell<Option<Bytes>>,
        }
        impl SocketApp for SendAll {
            fn on_event(&self, sim: &mut Simulator, h: &TcpHandle, ev: SocketEvent) {
                if matches!(ev, SocketEvent::Connected) {
                    if let Some(d) = self.data.borrow_mut().take() {
                        h.send(sim, d);
                    }
                }
            }
        }
        let h = client.connect(
            &mut sim,
            SocketAddr::new(server.ip(), 80),
            Rc::new(SendAll { data: RefCell::new(Some(Bytes::from(payload.clone()))) }),
        );
        *wire.handle.borrow_mut() = Some(h.clone());
        sim.run();
        prop_assert_eq!(&received.borrow()[..], &payload[..]);
        prop_assert!(
            violations.borrow().is_empty(),
            "flight exceeded cwnd on a clean paced transfer: {:?}",
            violations.borrow()
        );
    }
}
