//! End-to-end SACK loss recovery: a burst of lost data segments recovers
//! in about one extra RTT with SACK, versus one hole per RTT (go-back-N
//! NewReno) without — the mechanism the figcell experiment measures at
//! page-load scale.

use bytes::Bytes;
use mm_net::{
    Host, IpAddr, Listener, Namespace, Packet, PacketIdGen, PacketSink, RecoveryTier, SinkRef,
    SocketAddr, SocketApp, SocketEvent, TcpConfig, TcpHandle,
};
use mm_sim::{SimDuration, Simulator, Timestamp};
use std::cell::RefCell;
use std::rc::Rc;

/// A symmetric-delay "wire" that drops a chosen contiguous run of the
/// sender's data segments on their first transmission only.
struct LossyWire {
    next: SinkRef,
    delay: SimDuration,
    /// Data segments (non-empty payload) seen so far from the sender.
    data_seen: RefCell<u64>,
    /// Drop data segments with 0-based index in `[from, to)` once.
    drop_from: u64,
    drop_to: u64,
    dropped: RefCell<Vec<u64>>,
}

impl LossyWire {
    fn new(next: SinkRef, delay: SimDuration, drop_from: u64, drop_to: u64) -> Rc<Self> {
        Rc::new(LossyWire {
            next,
            delay,
            data_seen: RefCell::new(0),
            drop_from,
            drop_to,
            dropped: RefCell::new(Vec::new()),
        })
    }
}

impl PacketSink for LossyWire {
    fn deliver(&self, sim: &mut Simulator, pkt: Packet) {
        if !pkt.segment.payload.is_empty() {
            let mut seen = self.data_seen.borrow_mut();
            let idx = *seen;
            *seen += 1;
            // First transmissions arrive in seq order; a retransmission
            // revisits an already-counted seq and is never dropped here.
            let first_transmission = self.dropped.borrow().iter().all(|&s| s != pkt.segment.seq)
                && idx < self.drop_to + 1000; // indices only grow
            if first_transmission && idx >= self.drop_from && idx < self.drop_to {
                self.dropped.borrow_mut().push(pkt.segment.seq);
                return;
            }
        }
        let next = self.next.clone();
        let delay = self.delay;
        sim.schedule_in(delay, move |sim| next.deliver(sim, pkt));
    }
}

/// A plain fixed-delay wire (the reverse path).
struct DelayWire {
    next: SinkRef,
    delay: SimDuration,
}

impl PacketSink for DelayWire {
    fn deliver(&self, sim: &mut Simulator, pkt: Packet) {
        let next = self.next.clone();
        sim.schedule_in(self.delay, move |sim| next.deliver(sim, pkt));
    }
}

struct Collect {
    buf: Rc<RefCell<Vec<u8>>>,
    done_at: Rc<RefCell<Option<Timestamp>>>,
    expect: usize,
}
impl SocketApp for Collect {
    fn on_event(&self, sim: &mut Simulator, _h: &TcpHandle, ev: SocketEvent) {
        if let SocketEvent::Data(b) = ev {
            self.buf.borrow_mut().extend_from_slice(&b);
            if self.buf.borrow().len() >= self.expect {
                *self.done_at.borrow_mut() = Some(sim.now());
            }
        }
    }
}

struct Accept {
    buf: Rc<RefCell<Vec<u8>>>,
    done_at: Rc<RefCell<Option<Timestamp>>>,
    expect: usize,
}
impl Listener for Accept {
    fn on_connection(&self, _sim: &mut Simulator, _h: TcpHandle) -> Rc<dyn SocketApp> {
        Rc::new(Collect {
            buf: self.buf.clone(),
            done_at: self.done_at.clone(),
            expect: self.expect,
        })
    }
}

struct SendOnConnect {
    data: RefCell<Option<Bytes>>,
}
impl SocketApp for SendOnConnect {
    fn on_event(&self, sim: &mut Simulator, h: &TcpHandle, ev: SocketEvent) {
        if matches!(ev, SocketEvent::Connected) {
            if let Some(d) = self.data.borrow_mut().take() {
                h.send(sim, d);
            }
        }
    }
}

/// Transfer `total` bytes over an RTT of `2 * one_way`, dropping data
/// segments `[drop_from, drop_to)` once. Returns (completion time,
/// client-side TCP stats).
fn lossy_transfer(
    sack: bool,
    total: usize,
    one_way: SimDuration,
    drop_from: u64,
    drop_to: u64,
) -> (Timestamp, mm_net::TcpStats) {
    lossy_transfer_cfg(sack, sack, total, one_way, drop_from, drop_to)
}

fn lossy_transfer_cfg(
    client_sack: bool,
    server_sack: bool,
    total: usize,
    one_way: SimDuration,
    drop_from: u64,
    drop_to: u64,
) -> (Timestamp, mm_net::TcpStats) {
    let tier = |sack| {
        if sack {
            RecoveryTier::Sack
        } else {
            RecoveryTier::Reno
        }
    };
    lossy_transfer_with(
        TcpConfig::builder().recovery(tier(client_sack)).build(),
        TcpConfig::builder().recovery(tier(server_sack)).build(),
        total,
        one_way,
        drop_from,
        drop_to,
    )
}

fn lossy_transfer_with(
    client_cfg: TcpConfig,
    server_cfg: TcpConfig,
    total: usize,
    one_way: SimDuration,
    drop_from: u64,
    drop_to: u64,
) -> (Timestamp, mm_net::TcpStats) {
    let mut sim = Simulator::new();
    let ns = Namespace::root("w");
    let ids = PacketIdGen::new();
    let client = Host::new(IpAddr::new(10, 0, 0, 1), ids.clone());
    let server = Host::new_in(IpAddr::new(10, 0, 0, 2), ids, &ns);
    client.set_tcp_config(client_cfg);
    server.set_tcp_config(server_cfg);
    // Client → (lossy delayed wire) → namespace; namespace → (delayed
    // wire) → client.
    ns.add_host(
        client.ip(),
        Rc::new(DelayWire {
            next: client.sink(),
            delay: one_way,
        }),
    );
    client.set_egress(LossyWire::new(ns.router(), one_way, drop_from, drop_to));

    let received = Rc::new(RefCell::new(Vec::new()));
    let done_at = Rc::new(RefCell::new(None));
    server.listen(
        80,
        Rc::new(Accept {
            buf: received.clone(),
            done_at: done_at.clone(),
            expect: total,
        }),
    );
    let payload: Vec<u8> = (0..total as u32).map(|i| (i % 251) as u8).collect();
    let h = client.connect(
        &mut sim,
        SocketAddr::new(server.ip(), 80),
        Rc::new(SendOnConnect {
            data: RefCell::new(Some(Bytes::from(payload.clone()))),
        }),
    );
    sim.run();
    assert_eq!(&received.borrow()[..], &payload[..], "stream corrupted");
    let finished = done_at.borrow().expect("transfer never completed");
    (finished, h.stats())
}

const RTT_MS: u64 = 80;

#[test]
fn sack_negotiated_on_handshake() {
    // Handshake-only probe: both ends configured, connection established.
    let (_, stats) = lossy_transfer(true, 2000, SimDuration::from_millis(RTT_MS / 2), 999, 999);
    assert_eq!(stats.retransmissions, 0);
    assert_eq!(stats.sack_recoveries, 0);
}

#[test]
fn burst_loss_recovers_in_about_one_rtt_with_sack() {
    let one_way = SimDuration::from_millis(RTT_MS / 2);
    // 60 KB ≈ 42 segments; drop segments 12..17 (a 5-segment burst well
    // inside the window, with plenty of data after to generate dup acks).
    let (clean, _) = lossy_transfer(true, 60_000, one_way, 999, 999);
    let (with_sack, sack_stats) = lossy_transfer(true, 60_000, one_way, 12, 17);
    let (without, newreno_stats) = lossy_transfer(false, 60_000, one_way, 12, 17);

    // SACK entered recovery, retransmitted selectively, never timed out.
    assert!(sack_stats.sack_recoveries >= 1, "{sack_stats:?}");
    assert_eq!(sack_stats.timeouts, 0, "{sack_stats:?}");
    assert_eq!(newreno_stats.timeouts, 0, "{newreno_stats:?}");

    // The whole 5-segment burst recovers within ~2 RTT of the clean run
    // (one to learn of the loss, the retransmissions ride one wave).
    let rtt = SimDuration::from_millis(RTT_MS);
    assert!(
        with_sack <= clean + rtt + rtt,
        "sack recovery too slow: clean {clean}, sack {with_sack}"
    );
    // NewReno goes back one hole per RTT: five holes cost several RTTs
    // more. Require at least 2 RTTs of separation so the test is robust.
    assert!(
        without >= with_sack + rtt + rtt,
        "expected NewReno ({without}) to trail SACK ({with_sack}) by >= 2 RTTs"
    );
}

#[test]
fn single_loss_equivalent_under_both() {
    // One lost segment: NewReno's fast retransmit already handles this in
    // one RTT; SACK must not be slower.
    let one_way = SimDuration::from_millis(RTT_MS / 2);
    let (with_sack, s) = lossy_transfer(true, 60_000, one_way, 12, 13);
    let (without, _) = lossy_transfer(false, 60_000, one_way, 12, 13);
    assert_eq!(s.timeouts, 0);
    assert!(
        with_sack <= without + SimDuration::from_millis(5),
        "sack {with_sack} vs newreno {without}"
    );
}

#[test]
fn metrics_counters_match_stats_ground_truth() {
    // Attach a registry sink to the sender and rerun the burst-loss
    // transfer: every exported counter must agree exactly with the
    // socket's own `TcpStats` — the sink observes the same events, one
    // increment per event, nothing double-counted. (The receiver runs
    // unsinked, so the registry holds sender-side events only.)
    use mm_metrics::{MetricsHandle, Registry, RegistrySink};
    let registry = Registry::new();
    let sink = MetricsHandle::new(RegistrySink::new(registry.clone()));
    let one_way = SimDuration::from_millis(RTT_MS / 2);
    let (_, stats) = lossy_transfer_with(
        TcpConfig::builder()
            .recovery(RecoveryTier::Sack)
            .metrics(sink)
            .build(),
        TcpConfig::builder().recovery(RecoveryTier::Sack).build(),
        60_000,
        one_way,
        12,
        17,
    );
    assert!(stats.retransmissions >= 5, "{stats:?}");
    let counter = |name: &str| registry.counter(name, "").get();
    assert_eq!(counter("tcp_retransmits_total"), stats.retransmissions);
    assert_eq!(counter("tcp_fast_retransmits_total"), stats.sack_recoveries);
    assert_eq!(counter("tcp_rto_total"), stats.timeouts);
    assert_eq!(counter("tcp_tlp_fires_total"), 0);
    assert_eq!(counter("tcp_spurious_rto_undo_total"), 0);
    // The sink also samples cwnd/srtt gauges on every ack.
    let text = registry.encode();
    assert!(text.contains("tcp_cwnd_bytes"), "{text}");
    assert!(text.contains("tcp_srtt_seconds"), "{text}");
}

#[test]
fn metrics_sink_does_not_change_timing() {
    // The byte-identical-when-off guarantee, from the other side: a
    // transfer with a sink attached completes at exactly the same
    // virtual time as one without (sinks observe, never schedule).
    use mm_metrics::{MetricsHandle, Registry, RegistrySink};
    let one_way = SimDuration::from_millis(RTT_MS / 2);
    let plain = TcpConfig::builder().recovery(RecoveryTier::Sack).build();
    let sinked = plain
        .to_builder()
        .metrics(MetricsHandle::new(RegistrySink::new(Registry::new())))
        .build();
    let (without, _) = lossy_transfer_with(plain.clone(), plain.clone(), 60_000, one_way, 12, 17);
    let (with, _) = lossy_transfer_with(sinked, plain, 60_000, one_way, 12, 17);
    assert_eq!(with, without, "metrics sink altered the simulation");
}

#[test]
fn asymmetric_config_falls_back_to_newreno() {
    // Only the client asks for SACK: negotiation must fall back to
    // NewReno (no SACK recoveries even under burst loss), and the
    // transfer must still complete intact and match the no-SACK timing.
    let one_way = SimDuration::from_millis(RTT_MS / 2);
    let (mixed, stats) = lossy_transfer_cfg(true, false, 60_000, one_way, 12, 17);
    let (off, _) = lossy_transfer_cfg(false, false, 60_000, one_way, 12, 17);
    assert_eq!(stats.sack_recoveries, 0, "{stats:?}");
    assert_eq!(mixed, off, "un-negotiated SACK must not change timing");
}
