//! The slab connection table: flat, index-stable storage for a host's
//! live sockets.
//!
//! A population-scale world holds thousands of concurrent connections per
//! server host. Keying every socket operation off a
//! `HashMap<(SocketAddr, SocketAddr), TcpHandle>` means rehash churn on
//! every accept/reap cycle and no stable identity a diagnostic can hold
//! across the socket's life. The slab fixes both: sockets live in a flat
//! `Vec` of slots reused through a free list, addressed by a [`ConnId`]
//! — a `(index, generation)` pair. The generation increments on every
//! slot reuse, so a stale `ConnId` held across a reap can never alias a
//! newer connection: lookups on dead ids return `None` instead of the
//! wrong socket.
//!
//! Wire demultiplexing still needs address-pair lookup, so the table
//! keeps a side map from `(local, remote)` to `ConnId`; that map is only
//! ever point-queried and its iteration order is never observed, keeping
//! the slab refactor invisible to simulation event ordering.

use std::collections::HashMap;

use crate::addr::SocketAddr;
use crate::tcp::socket::TcpHandle;

/// Stable, generation-checked identity of one connection slot in a
/// [`ConnTable`]. Copyable and cheap; safe to hold across reaps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConnId {
    index: u32,
    generation: u32,
}

impl ConnId {
    /// The slot index (diagnostics; reused across generations).
    pub fn index(self) -> u32 {
        self.index
    }
}

struct Slot {
    generation: u32,
    /// The connection occupying the slot, or `None` while on the free
    /// list. The address pair is kept alongside so removal can clean the
    /// demux map without borrowing the handle.
    entry: Option<((SocketAddr, SocketAddr), TcpHandle)>,
}

/// Flat slab of live connections with `(local, remote)` demultiplexing.
#[derive(Default)]
pub struct ConnTable {
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: usize,
    demux: HashMap<(SocketAddr, SocketAddr), ConnId>,
}

impl ConnTable {
    /// Empty table.
    pub fn new() -> Self {
        ConnTable::default()
    }

    /// Number of live connections.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no connections are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Insert a connection under its address pair, returning its id.
    /// Panics if the pair is already present — two live sockets on one
    /// four-tuple is a demux bug.
    pub fn insert(&mut self, key: (SocketAddr, SocketAddr), handle: TcpHandle) -> ConnId {
        let index = match self.free.pop() {
            Some(i) => i,
            None => {
                let i = u32::try_from(self.slots.len()).expect("connection slab overflow");
                self.slots.push(Slot {
                    generation: 0,
                    entry: None,
                });
                i
            }
        };
        let slot = &mut self.slots[index as usize];
        debug_assert!(slot.entry.is_none());
        slot.entry = Some((key, handle));
        let id = ConnId {
            index,
            generation: slot.generation,
        };
        let prev = self.demux.insert(key, id);
        assert!(prev.is_none(), "duplicate connection {key:?}");
        self.live += 1;
        id
    }

    /// The connection for `id`, if that exact incarnation is still live.
    pub fn get(&self, id: ConnId) -> Option<&TcpHandle> {
        let slot = self.slots.get(id.index as usize)?;
        if slot.generation != id.generation {
            return None;
        }
        slot.entry.as_ref().map(|(_, h)| h)
    }

    /// The id currently bound to an address pair.
    pub fn lookup(&self, key: &(SocketAddr, SocketAddr)) -> Option<ConnId> {
        self.demux.get(key).copied()
    }

    /// The connection bound to an address pair.
    pub fn get_by_addr(&self, key: &(SocketAddr, SocketAddr)) -> Option<&TcpHandle> {
        self.lookup(key).and_then(|id| self.get(id))
    }

    /// True if an address pair is bound.
    pub fn contains_addr(&self, key: &(SocketAddr, SocketAddr)) -> bool {
        self.demux.contains_key(key)
    }

    /// Remove a connection by id, returning its handle. The slot's
    /// generation bumps so the id (and any copies) go permanently stale.
    pub fn remove(&mut self, id: ConnId) -> Option<TcpHandle> {
        let slot = self.slots.get_mut(id.index as usize)?;
        if slot.generation != id.generation || slot.entry.is_none() {
            return None;
        }
        let (key, handle) = slot.entry.take().expect("checked above");
        slot.generation += 1;
        self.free.push(id.index);
        self.demux.remove(&key);
        self.live -= 1;
        Some(handle)
    }

    /// Drop every connection failing the predicate (slab `retain`). Slots
    /// are scanned in index order; the predicate must not call back into
    /// the table.
    pub fn retain(&mut self, mut keep: impl FnMut(&TcpHandle) -> bool) {
        for index in 0..self.slots.len() {
            let dead = match &self.slots[index].entry {
                Some((_, h)) => !keep(h),
                None => false,
            };
            if dead {
                let slot = &mut self.slots[index];
                let generation = slot.generation;
                let id = ConnId {
                    index: index as u32,
                    generation,
                };
                self.remove(id);
            }
        }
    }

    /// Iterate live connection ids in slot order (diagnostics).
    pub fn ids(&self) -> impl Iterator<Item = ConnId> + '_ {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            s.entry.as_ref().map(|_| ConnId {
                index: i as u32,
                generation: s.generation,
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::IpAddr;
    use crate::sink::BlackHole;
    use crate::tcp::socket::{SocketApp, SocketEvent, TcpConfig};
    use mm_sim::Simulator;
    use std::rc::Rc;

    struct NoApp;
    impl SocketApp for NoApp {
        fn on_event(&self, _: &mut Simulator, _: &TcpHandle, _: SocketEvent) {}
    }

    fn addr(last: u8, port: u16) -> SocketAddr {
        SocketAddr::new(IpAddr::new(10, 0, 0, last), port)
    }

    fn handle(sim: &mut Simulator, port: u16) -> ((SocketAddr, SocketAddr), TcpHandle) {
        let key = (addr(1, port), addr(2, 80));
        let h = TcpHandle::connect(
            sim,
            key.0,
            key.1,
            TcpConfig::default(),
            BlackHole::new(),
            Rc::new(std::cell::Cell::new(0)),
            Rc::new(NoApp),
            None,
        );
        (key, h)
    }

    #[test]
    fn insert_lookup_remove_roundtrip() {
        let mut sim = Simulator::new();
        let mut table = ConnTable::new();
        let (key, h) = handle(&mut sim, 1000);
        let id = table.insert(key, h);
        assert_eq!(table.len(), 1);
        assert!(table.get(id).is_some());
        assert_eq!(table.lookup(&key), Some(id));
        assert!(table.contains_addr(&key));
        assert!(table.remove(id).is_some());
        assert_eq!(table.len(), 0);
        assert!(table.get(id).is_none());
        assert!(!table.contains_addr(&key));
    }

    #[test]
    fn stale_id_never_aliases_reused_slot() {
        let mut sim = Simulator::new();
        let mut table = ConnTable::new();
        let (k1, h1) = handle(&mut sim, 1000);
        let old = table.insert(k1, h1);
        table.remove(old);
        // The slot is reused for a different connection...
        let (k2, h2) = handle(&mut sim, 1001);
        let new = table.insert(k2, h2);
        assert_eq!(new.index(), old.index());
        // ...but the stale id stays dead: generation check.
        assert!(table.get(old).is_none());
        assert!(table.remove(old).is_none());
        assert!(table.get(new).is_some());
    }

    #[test]
    fn retain_reaps_and_frees_slots() {
        let mut sim = Simulator::new();
        let mut table = ConnTable::new();
        let ids: Vec<ConnId> = (0..4)
            .map(|i| {
                let (k, h) = handle(&mut sim, 1000 + i);
                table.insert(k, h)
            })
            .collect();
        let victim = table.get(ids[1]).unwrap().clone();
        table.retain(|h| h.local_addr() != victim.local_addr());
        assert_eq!(table.len(), 3);
        assert!(table.get(ids[1]).is_none());
        assert!(table.get(ids[0]).is_some() && table.get(ids[3]).is_some());
        assert_eq!(table.ids().count(), 3);
    }

    #[test]
    #[should_panic(expected = "duplicate connection")]
    fn duplicate_addr_pair_panics() {
        let mut sim = Simulator::new();
        let mut table = ConnTable::new();
        let (k, h) = handle(&mut sim, 1000);
        let h2 = h.clone();
        table.insert(k, h);
        table.insert(k, h2);
    }
}
