//! # mm-net — the virtual network substrate
//!
//! Everything Mahimahi gets from the Linux kernel, rebuilt inside the
//! deterministic simulator: addressing ([`addr`]), packets ([`packet`]),
//! composable forwarding elements ([`sink`]), network namespaces with
//! isolation counters ([`fabric`]), fault injection ([`fault`]), virtual
//! hosts ([`host`]) and a TCP implementation ([`tcp`]).
//!
//! The namespace tree mirrors Mahimahi's nested-shell structure: each shell
//! owns a namespace attached to its parent through the shell's packet
//! processors, and per-namespace counters make the paper's isolation claims
//! directly testable.

pub mod addr;
pub mod conn;
pub mod fabric;
pub mod fault;
pub mod host;
pub mod packet;
pub mod sink;
pub mod tcp;

pub use addr::{IpAddr, Origin, SocketAddr};
pub use conn::{ConnId, ConnTable};
pub use fabric::{Namespace, NsCounters};
pub use host::{Host, HostNoise, HostStats, Listener, PacketIdGen};
pub use packet::{Packet, SackBlock, SackOption, TcpFlags, TcpSegment, HEADER_BYTES, MSS, MTU};
pub use sink::{BlackHole, Capture, FnSink, PacketSink, SinkRef, Tap};
pub use tcp::{
    CcAlgorithm, RecoveryTier, SocketApp, SocketEvent, TcpConfig, TcpConfigBuilder, TcpHandle,
    TcpState, TcpStats,
};
