//! Selective acknowledgment (RFC 2018) and SACK-based loss recovery
//! (RFC 6675), split into the two halves a real stack has:
//!
//! * [`ReceiverSack`] — the receiver's block generator: folds the
//!   out-of-order reassembly queue into at most
//!   [`MAX_SACK_BLOCKS`](crate::packet::MAX_SACK_BLOCKS) disjoint ranges,
//!   with the block containing the most recently arrived segment first
//!   (RFC 2018 §4's ordering rule, which is what lets a sender survive
//!   option-space truncation).
//! * [`Scoreboard`] — the sender's view of which bytes above `snd_una`
//!   the peer holds. Implements the RFC 6675 primitives the socket's
//!   recovery loop is built from: `IsLost` (the DupThresh rule), pipe
//!   accounting (how many bytes are estimated to still be in the
//!   network), and the block bookkeeping they both need.
//!
//! The scoreboard stores sacked coverage as a sorted, disjoint,
//! non-adjacent list of `[start, end)` ranges — the invariants the
//! property tests in `tests/proptests.rs` pin down. The receiver never
//! reneges in this model (delivered bytes are never dropped), so the
//! sender may safely treat sacked ranges as delivered.

use crate::packet::{SackBlock, MAX_SACK_BLOCKS, MSS};

/// RFC 6675's DupThresh: the classic three duplicate ACKs.
pub const DUP_THRESH: u64 = 3;

/// The receiver half: generates SACK blocks describing the out-of-order
/// queue. Kept as its own small state machine because RFC 2018's ordering
/// rule needs memory of which range changed most recently.
#[derive(Debug, Default)]
pub struct ReceiverSack {
    /// The range most recently extended by an arriving segment; reported
    /// first so a sender with truncated option space still learns about
    /// the newest hole edge.
    recent: Option<SackBlock>,
}

impl ReceiverSack {
    pub fn new() -> ReceiverSack {
        ReceiverSack::default()
    }

    /// Record an out-of-order arrival covering `[seq, seq_end)`.
    pub fn on_arrival(&mut self, seq: u64, seq_end: u64) {
        if seq < seq_end {
            self.recent = Some(SackBlock::new(seq, seq_end));
        }
    }

    /// Everything below `rcv_nxt` is cumulatively acked; forget a recent
    /// block the cumulative ACK has swallowed.
    pub fn on_advance(&mut self, rcv_nxt: u64) {
        if let Some(r) = self.recent {
            if r.end <= rcv_nxt {
                self.recent = None;
            }
        }
    }

    /// Build the option's block list from the out-of-order queue
    /// (`ooo` iterates `(seq, len)` in ascending seq order). Contiguous
    /// and overlapping entries coalesce; the block containing the most
    /// recent arrival goes first; at most `MAX_SACK_BLOCKS` are reported.
    pub fn blocks(&self, ooo: impl Iterator<Item = (u64, u64)>, rcv_nxt: u64) -> Vec<SackBlock> {
        let mut ranges: Vec<SackBlock> = Vec::new();
        for (seq, len) in ooo {
            let start = seq.max(rcv_nxt);
            let end = seq + len;
            if start >= end {
                continue;
            }
            match ranges.last_mut() {
                Some(last) if start <= last.end => last.end = last.end.max(end),
                _ => ranges.push(SackBlock::new(start, end)),
            }
        }
        if ranges.is_empty() {
            return ranges;
        }
        // Most-recent block first.
        if let Some(recent) = self.recent {
            if let Some(i) = ranges
                .iter()
                .position(|r| r.start <= recent.start && recent.end <= r.end)
            {
                let r = ranges.remove(i);
                ranges.insert(0, r);
            }
        }
        ranges.truncate(MAX_SACK_BLOCKS);
        ranges
    }
}

/// The sender half: sacked coverage above the cumulative ACK, as a
/// sorted, disjoint, non-adjacent range list.
#[derive(Debug, Default)]
pub struct Scoreboard {
    /// Sorted, disjoint, non-adjacent `[start, end)` sacked ranges, all
    /// at or above the last `advance()` point.
    ranges: Vec<SackBlock>,
}

impl Scoreboard {
    pub fn new() -> Scoreboard {
        Scoreboard::default()
    }

    /// Merge the blocks of an incoming ACK. Returns the number of newly
    /// sacked bytes (the "delivered" increment PRR feeds on).
    pub fn add_blocks(&mut self, blocks: &[SackBlock], snd_una: u64) -> u64 {
        let mut scratch = Vec::new();
        self.add_blocks_delta(blocks, snd_una, &mut scratch)
    }

    /// Like [`add_blocks`](Scoreboard::add_blocks), additionally pushing
    /// the *newly covered* sub-ranges onto `delta` (not cleared first).
    /// The deltas are what incremental consumers — the socket's pipe
    /// counter and RACK's delivery clock — feed on: re-reported coverage
    /// costs nothing, so per-ack work is bounded by newly sacked bytes,
    /// not by how much old coverage the peer repeats.
    pub fn add_blocks_delta(
        &mut self,
        blocks: &[SackBlock],
        snd_una: u64,
        delta: &mut Vec<SackBlock>,
    ) -> u64 {
        let mut newly = 0;
        for b in blocks {
            let start = b.start.max(snd_una);
            if start >= b.end {
                continue;
            }
            newly += self.insert(SackBlock::new(start, b.end), delta);
        }
        newly
    }

    /// Insert one block, pushing newly covered sub-ranges onto `delta`
    /// and returning the newly covered byte count.
    fn insert(&mut self, b: SackBlock, delta: &mut Vec<SackBlock>) -> u64 {
        // Find the insertion window of ranges overlapping or adjacent to b.
        let lo = self.ranges.partition_point(|r| r.end < b.start);
        let hi = self.ranges.partition_point(|r| r.start <= b.end);
        // The gaps of [b.start, b.end) not covered by existing ranges.
        let mut newly = 0;
        let mut cursor = b.start;
        for r in &self.ranges[lo..hi] {
            if r.start > cursor {
                let gap_end = r.start.min(b.end);
                if cursor < gap_end {
                    delta.push(SackBlock::new(cursor, gap_end));
                    newly += gap_end - cursor;
                }
            }
            cursor = cursor.max(r.end);
        }
        if cursor < b.end {
            delta.push(SackBlock::new(cursor, b.end));
            newly += b.end - cursor;
        }
        if lo == hi {
            self.ranges.insert(lo, b);
            return newly;
        }
        let start = self.ranges[lo].start.min(b.start);
        let end = self.ranges[hi - 1].end.max(b.end);
        self.ranges.drain(lo..hi);
        self.ranges.insert(lo, SackBlock::new(start, end));
        newly
    }

    /// The cumulative ACK advanced: drop coverage below `snd_una`.
    pub fn advance(&mut self, snd_una: u64) {
        self.ranges.retain_mut(|r| {
            if r.end <= snd_una {
                return false;
            }
            if r.start < snd_una {
                r.start = snd_una;
            }
            true
        });
    }

    /// Forget everything (connection teardown or full recovery exit).
    pub fn clear(&mut self) {
        self.ranges.clear();
    }

    /// Total sacked bytes currently tracked.
    pub fn sacked_bytes(&self) -> u64 {
        self.ranges.iter().map(|r| r.len()).sum()
    }

    /// True when no coverage is tracked.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// The current ranges (tests and diagnostics).
    pub fn ranges(&self) -> &[SackBlock] {
        &self.ranges
    }

    /// Is `[start, end)` entirely sacked?
    pub fn is_sacked(&self, start: u64, end: u64) -> bool {
        let i = self.ranges.partition_point(|r| r.end < end);
        match self.ranges.get(i) {
            Some(r) => r.start <= start && end <= r.end,
            None => false,
        }
    }

    /// Highest sacked sequence number plus one, if anything is sacked
    /// ("FACK" in the literature).
    pub fn highest_sacked(&self) -> Option<u64> {
        self.ranges.last().map(|r| r.end)
    }

    /// Bytes sacked strictly above `seq`.
    pub fn sacked_above(&self, seq: u64) -> u64 {
        let i = self.ranges.partition_point(|r| r.end <= seq);
        self.ranges[i..]
            .iter()
            .map(|r| r.end - r.start.max(seq))
            .sum()
    }

    /// Discontiguous sacked ranges lying entirely above `seq`.
    pub fn ranges_above(&self, seq: u64) -> u64 {
        (self.ranges.len() - self.ranges.partition_point(|r| r.start <= seq)) as u64
    }

    /// RFC 6675 `IsLost`: the segment `[start, end)` is presumed lost
    /// when DupThresh discontiguous sacked ranges sit entirely above it,
    /// or when more than `(DupThresh - 1) * MSS` bytes are sacked above
    /// it. Already-sacked segments are never lost.
    pub fn is_lost(&self, start: u64, end: u64) -> bool {
        if self.is_sacked(start, end) {
            return false;
        }
        self.ranges_above(end - 1) >= DUP_THRESH
            || self.sacked_above(end - 1) > (DUP_THRESH - 1) * MSS as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sb(start: u64, end: u64) -> SackBlock {
        SackBlock::new(start, end)
    }

    #[test]
    fn insert_merges_overlaps_and_adjacency() {
        let mut s = Scoreboard::new();
        s.add_blocks(&[sb(10, 20)], 0);
        s.add_blocks(&[sb(30, 40)], 0);
        s.add_blocks(&[sb(20, 30)], 0); // bridges the gap
        assert_eq!(s.ranges(), &[sb(10, 40)]);
        assert_eq!(s.sacked_bytes(), 30);
    }

    #[test]
    fn add_blocks_returns_newly_sacked() {
        let mut s = Scoreboard::new();
        assert_eq!(s.add_blocks(&[sb(10, 20)], 0), 10);
        assert_eq!(s.add_blocks(&[sb(10, 20)], 0), 0, "duplicate adds none");
        assert_eq!(s.add_blocks(&[sb(15, 25)], 0), 5);
    }

    #[test]
    fn add_blocks_delta_reports_new_coverage() {
        let mut s = Scoreboard::new();
        let mut delta = Vec::new();
        s.add_blocks_delta(&[sb(10, 20), sb(40, 50)], 0, &mut delta);
        assert_eq!(delta, vec![sb(10, 20), sb(40, 50)]);
        // A block bridging both: only the gap is new.
        delta.clear();
        let newly = s.add_blocks_delta(&[sb(15, 45)], 0, &mut delta);
        assert_eq!(delta, vec![sb(20, 40)]);
        assert_eq!(newly, 20);
        assert_eq!(s.ranges(), &[sb(10, 50)]);
        // Fully re-reported coverage yields no delta.
        delta.clear();
        assert_eq!(s.add_blocks_delta(&[sb(10, 50)], 0, &mut delta), 0);
        assert!(delta.is_empty());
    }

    #[test]
    fn advance_trims_below_una() {
        let mut s = Scoreboard::new();
        s.add_blocks(&[sb(10, 20), sb(30, 40)], 0);
        s.advance(15);
        assert_eq!(s.ranges(), &[sb(15, 20), sb(30, 40)]);
        s.advance(25);
        assert_eq!(s.ranges(), &[sb(30, 40)]);
        s.advance(100);
        assert!(s.is_empty());
    }

    #[test]
    fn blocks_below_una_ignored() {
        let mut s = Scoreboard::new();
        assert_eq!(s.add_blocks(&[sb(10, 20)], 20), 0);
        assert!(s.is_empty());
        assert_eq!(s.add_blocks(&[sb(10, 30)], 20), 10);
        assert_eq!(s.ranges(), &[sb(20, 30)]);
    }

    #[test]
    fn is_sacked_containment() {
        let mut s = Scoreboard::new();
        s.add_blocks(&[sb(10, 20), sb(40, 60)], 0);
        assert!(s.is_sacked(10, 20));
        assert!(s.is_sacked(45, 50));
        assert!(!s.is_sacked(5, 15));
        assert!(!s.is_sacked(20, 40));
        assert!(!s.is_sacked(55, 65));
    }

    #[test]
    fn is_lost_by_range_count() {
        let mut s = Scoreboard::new();
        // Three discontiguous sacked ranges above [0, 10).
        s.add_blocks(&[sb(20, 30), sb(40, 50), sb(60, 70)], 0);
        assert!(s.is_lost(0, 10));
        // Only two above [30, 40).
        let mss = MSS as u64;
        assert_eq!(s.sacked_above(39), 20);
        assert!(20 <= (DUP_THRESH - 1) * mss);
        assert!(!s.is_lost(30, 40));
    }

    #[test]
    fn is_lost_by_byte_count() {
        let mut s = Scoreboard::new();
        let mss = MSS as u64;
        // One huge sacked range above: more than (DupThresh-1)*MSS bytes.
        s.add_blocks(&[sb(10 * mss, 13 * mss + 1)], 0);
        assert!(s.is_lost(0, mss));
        // Exactly (DupThresh-1)*MSS above is NOT enough (strict >).
        let mut s2 = Scoreboard::new();
        s2.add_blocks(&[sb(10 * mss, 12 * mss)], 0);
        assert!(!s2.is_lost(0, mss));
    }

    #[test]
    fn sacked_segment_never_lost() {
        let mut s = Scoreboard::new();
        s.add_blocks(&[sb(0, 100), sb(200, 300), sb(400, 500), sb(600, 700)], 0);
        assert!(!s.is_lost(0, 100));
        assert!(s.is_lost(100, 200));
    }

    #[test]
    fn receiver_blocks_coalesce_and_order() {
        let mut r = ReceiverSack::new();
        let ooo = [(10u64, 10u64), (20, 10), (50, 5)];
        r.on_arrival(50, 55);
        let blocks = r.blocks(ooo.iter().copied(), 0);
        // [10,30) coalesced, [50,55) first because it arrived last.
        assert_eq!(blocks, vec![sb(50, 55), sb(10, 30)]);
    }

    #[test]
    fn receiver_blocks_respect_limit() {
        let r = ReceiverSack::new();
        let ooo = [(10u64, 1u64), (20, 1), (30, 1), (40, 1), (50, 1)];
        let blocks = r.blocks(ooo.iter().copied(), 0);
        assert_eq!(blocks.len(), MAX_SACK_BLOCKS);
    }

    #[test]
    fn receiver_trims_below_rcv_nxt() {
        let r = ReceiverSack::new();
        let ooo = [(10u64, 20u64)];
        let blocks = r.blocks(ooo.iter().copied(), 15);
        assert_eq!(blocks, vec![sb(15, 30)]);
    }
}
