//! Per-connection delivery-rate estimation (the model behind
//! [`TcpConfig::pacing`](crate::tcp::socket::TcpConfig) and the
//! [`Bbr`](crate::tcp::cc::Bbr) congestion controller).
//!
//! Implements the sampler of draft-cheng-iccrg-delivery-rate-estimation
//! (the algorithm Linux ships as `tcp_rate.c`, and the measurement layer
//! BBR is built on): every transmitted segment is stamped with a
//! [`TxRecord`] — the connection's `delivered` count, the time of the
//! most recent delivery, and the send time of the first packet of the
//! current flight — and every ACK or SACK that delivers data closes the
//! loop into a [`RateSample`]:
//!
//! ```text
//!   send_elapsed = P.sent_at        − P.first_sent_time
//!   ack_elapsed  = C.delivered_time − P.delivered_time
//!   bw sample    = (C.delivered − P.delivered) / max(send_elapsed, ack_elapsed)
//! ```
//!
//! Taking the *max* of the two elapsed intervals is the load-bearing
//! subtlety: using only the ACK interval over-estimates bandwidth when
//! the sender bursts (many sends share one delivery interval), and using
//! only the send interval over-estimates it when ACKs are compressed.
//! With the max, a sample can never exceed the true bottleneck rate in a
//! fixed-rate world — the property test pins this.
//!
//! Samples taken while the sender was **application-limited** (it ran
//! out of data before filling the window) measure the app, not the
//! network; they are marked so consumers (the windowed-max bandwidth
//! filters here and in BBR) only let them *raise* the estimate, never
//! drag it down.
//!
//! The module also owns the **windowed min-RTT filter** (monotone-deque
//! minimum over a sliding time window, default 10 s — BBR's min-RTT
//! horizon) used for BDP computation and pacing.

use std::collections::VecDeque;

use mm_sim::{SimDuration, Timestamp};

/// Sliding window of the min-RTT filter (BBR's 10 s horizon).
pub const MIN_RTT_WINDOW: SimDuration = SimDuration::from_secs(10);

/// Sliding window of the estimator's own bandwidth filter, used for the
/// generic (non-BBR) pacing-rate fallback.
pub const BW_WINDOW: SimDuration = SimDuration::from_secs(10);

/// Per-segment state stamped at transmission time (draft-cheng §3.1:
/// `P.delivered`, `P.delivered_time`, `P.first_sent_time`,
/// `P.is_app_limited`).
#[derive(Debug, Clone, Copy, Default)]
pub struct TxRecord {
    /// Connection `delivered` count when this segment was sent.
    pub delivered: u64,
    /// Time of the most recent delivery when this segment was sent.
    pub delivered_time: Timestamp,
    /// Send time of the first segment of the current flight (equals the
    /// segment's own send time when it starts a flight).
    pub first_sent_time: Timestamp,
    /// Whether the sender was application-limited at send time.
    pub is_app_limited: bool,
}

/// One delivery-rate sample, generated per ACK/SACK that delivered data.
#[derive(Debug, Clone, Copy)]
pub struct RateSample {
    /// Estimated delivery rate, bytes per second.
    pub bw: u64,
    /// Bytes delivered over the sample interval.
    pub delivered_delta: u64,
    /// The sample interval (max of send- and ack-elapsed).
    pub interval: SimDuration,
    /// Connection total delivered bytes after this delivery.
    pub delivered: u64,
    /// `delivered` count when the sampled segment was sent (BBR's
    /// round-trip accounting keys off this).
    pub prior_delivered: u64,
    /// RTT of the sampled segment (now − its send time).
    pub rtt: SimDuration,
    /// Windowed minimum RTT at sample time.
    pub min_rtt: Option<SimDuration>,
    /// The sampled segment was sent while application-limited: the
    /// sample is a lower bound on the path, not a measurement of it.
    pub is_app_limited: bool,
}

/// Windowed minimum filter over RTT samples: a monotone deque keyed by
/// sample time. Within a window the reported minimum is non-increasing
/// as samples arrive (property-tested); old minima expire after
/// [`MIN_RTT_WINDOW`] so a route change eventually shows through.
#[derive(Debug, Clone)]
pub struct MinRttFilter {
    window: SimDuration,
    /// (sample time, rtt), increasing in both fields: front is the
    /// current minimum, later entries are successors-in-waiting.
    samples: VecDeque<(Timestamp, SimDuration)>,
}

impl MinRttFilter {
    /// Filter with an explicit window.
    pub fn new(window: SimDuration) -> Self {
        MinRttFilter {
            window,
            samples: VecDeque::new(),
        }
    }

    /// Feed one RTT sample taken at `now`.
    pub fn update(&mut self, rtt: SimDuration, now: Timestamp) {
        self.expire(now);
        // Anything ≥ the new sample can never be the minimum again
        // (it is both older and larger).
        while self.samples.back().is_some_and(|&(_, r)| r >= rtt) {
            self.samples.pop_back();
        }
        self.samples.push_back((now, rtt));
    }

    /// Drop samples that fell out of the window.
    fn expire(&mut self, now: Timestamp) {
        while self
            .samples
            .front()
            .is_some_and(|&(t, _)| now.saturating_duration_since(t) > self.window)
        {
            self.samples.pop_front();
        }
    }

    /// The windowed minimum, if any in-window sample exists. (Read-only:
    /// expiry happens on `update`, so between updates the reported
    /// minimum is stable — deterministic regardless of when it is read.)
    pub fn min(&self) -> Option<SimDuration> {
        self.samples.front().map(|&(_, r)| r)
    }
}

impl Default for MinRttFilter {
    fn default() -> Self {
        MinRttFilter::new(MIN_RTT_WINDOW)
    }
}

/// Windowed-maximum filter over bandwidth samples — the same monotone-
/// deque structure as [`MinRttFilter`] with the ordering flipped,
/// generic over the window key so it serves both the estimator's
/// time-keyed window and BBR's round-trip-keyed one. Expiry is the
/// caller's floor (keys are not all subtractable), and the app-limited
/// admission rule lives here so both consumers share it: an app-limited
/// sample measures the app, not the path, and may only *raise* the
/// maximum.
#[derive(Debug, Clone, Default)]
pub struct WindowedMaxBw<K> {
    /// (key, bw), increasing in key, decreasing in bw: front is the max.
    samples: VecDeque<(K, u64)>,
}

impl<K: Copy + PartialOrd> WindowedMaxBw<K> {
    pub fn new() -> Self {
        WindowedMaxBw {
            samples: VecDeque::new(),
        }
    }

    /// Admit one sample at `key`.
    pub fn update(&mut self, key: K, bw: u64, is_app_limited: bool) {
        if is_app_limited && Some(bw) <= self.max() {
            return;
        }
        // Anything ≤ the new sample can never be the maximum again.
        while self.samples.back().is_some_and(|&(_, b)| b <= bw) {
            self.samples.pop_back();
        }
        self.samples.push_back((key, bw));
    }

    /// Drop samples whose key fell below `floor`.
    pub fn expire_before(&mut self, floor: K) {
        while self.samples.front().is_some_and(|&(k, _)| k < floor) {
            self.samples.pop_front();
        }
    }

    /// The windowed maximum, if any in-window sample exists.
    pub fn max(&self) -> Option<u64> {
        self.samples.front().map(|&(_, b)| b)
    }
}

/// The per-connection delivery-rate estimator (draft-cheng's connection
/// state `C.*`), plus the windowed min-RTT filter and a windowed-max
/// bandwidth estimate for the generic pacing fallback.
#[derive(Debug)]
pub struct RateEstimator {
    /// Total bytes delivered (cumulatively acked + newly sacked).
    delivered: u64,
    /// When `delivered` last advanced.
    delivered_time: Timestamp,
    /// Send time of the first segment of the current flight.
    first_sent_time: Timestamp,
    /// Delivered count up to which samples are app-limited; 0 = not
    /// app-limited (draft-cheng's `C.app_limited`).
    app_limited_until: u64,
    min_rtt: MinRttFilter,
    /// Windowed-max bandwidth over sample time.
    bw: WindowedMaxBw<Timestamp>,
    /// Total rate samples generated (diagnostics).
    samples: u64,
}

impl RateEstimator {
    pub fn new() -> Self {
        RateEstimator {
            delivered: 0,
            delivered_time: Timestamp::ZERO,
            first_sent_time: Timestamp::ZERO,
            app_limited_until: 0,
            min_rtt: MinRttFilter::default(),
            bw: WindowedMaxBw::new(),
            samples: 0,
        }
    }

    /// Stamp a freshly transmitted segment. `flight_empty` must be true
    /// when nothing was outstanding before this send: the sample window
    /// restarts (a connection idle period must not count as elapsed
    /// time, or the first sample after idle would be absurdly low).
    pub fn on_send(&mut self, now: Timestamp, flight_empty: bool) -> TxRecord {
        if flight_empty {
            self.first_sent_time = now;
            self.delivered_time = now;
        }
        TxRecord {
            delivered: self.delivered,
            delivered_time: self.delivered_time,
            first_sent_time: self.first_sent_time,
            is_app_limited: self.app_limited_until > self.delivered,
        }
    }

    /// The sender ran out of application data with window to spare:
    /// every sample taken until the current flight is fully delivered
    /// measures the app, not the path (draft-cheng §3.4).
    pub fn on_app_limited(&mut self, inflight: u64) {
        self.app_limited_until = (self.delivered + inflight).max(1);
    }

    /// Record `bytes` newly delivered (cumulative ack advance or new
    /// SACK coverage) at `now`.
    pub fn on_delivery(&mut self, bytes: u64, now: Timestamp) {
        if bytes == 0 {
            return;
        }
        self.delivered += bytes;
        self.delivered_time = now;
    }

    /// Feed one RTT measurement into the windowed min filter.
    pub fn on_rtt(&mut self, rtt: SimDuration, now: Timestamp) {
        self.min_rtt.update(rtt, now);
    }

    /// Generate the rate sample for an ACK that delivered the segment
    /// stamped with `rec`, last sent at `sent_at`. Call after
    /// [`on_delivery`](Self::on_delivery) for every byte the ACK
    /// delivered. Returns `None` when the interval is degenerate (zero —
    /// e.g. a zero-latency test world) or nothing was delivered.
    pub fn sample(
        &mut self,
        rec: &TxRecord,
        sent_at: Timestamp,
        now: Timestamp,
    ) -> Option<RateSample> {
        // Passing `delivered` clears a stale app-limited mark: once the
        // whole app-limited flight is delivered, fresh samples measure
        // the network again.
        if self.app_limited_until != 0 && self.delivered > self.app_limited_until {
            self.app_limited_until = 0;
        }
        let delivered_delta = self.delivered.saturating_sub(rec.delivered);
        if delivered_delta == 0 {
            return None;
        }
        let send_elapsed = sent_at.saturating_duration_since(rec.first_sent_time);
        let ack_elapsed = self
            .delivered_time
            .saturating_duration_since(rec.delivered_time);
        let interval = send_elapsed.max(ack_elapsed);
        // Slide the send-side window forward: future samples measure
        // their send interval from the newest *delivered* packet's send
        // time (Linux `tcp_rate_skb_delivered` advancing
        // `first_tx_mstamp`). Without this the window stays pinned at
        // the flight start and every later sample decays toward the
        // first round's cwnd/RTT — the estimator could never learn a
        // rate above its first guess.
        self.first_sent_time = sent_at;
        if interval.is_zero() {
            return None;
        }
        let bw = ((delivered_delta as u128 * 1_000_000_000) / interval.as_nanos() as u128) as u64;
        let is_app_limited = rec.is_app_limited;
        // The estimator's own windowed-max bandwidth (pacing fallback).
        self.bw.update(now, bw, is_app_limited);
        self.bw.expire_before(Timestamp::from_nanos(
            now.as_nanos().saturating_sub(BW_WINDOW.as_nanos()),
        ));
        self.samples += 1;
        Some(RateSample {
            bw,
            delivered_delta,
            interval,
            delivered: self.delivered,
            prior_delivered: rec.delivered,
            rtt: now.saturating_duration_since(sent_at),
            min_rtt: self.min_rtt.min(),
            is_app_limited,
        })
    }

    /// Windowed-max delivery-rate estimate, bytes per second.
    pub fn bw_estimate(&self) -> Option<u64> {
        self.bw.max()
    }

    /// Windowed minimum RTT.
    pub fn min_rtt(&self) -> Option<SimDuration> {
        self.min_rtt.min()
    }

    /// Total bytes delivered on this connection.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Whether the estimator currently considers the sender app-limited.
    pub fn app_limited(&self) -> bool {
        self.app_limited_until > self.delivered
    }

    /// Rate samples generated so far (diagnostics/tests).
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

impl Default for RateEstimator {
    fn default() -> Self {
        RateEstimator::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Timestamp {
        Timestamp::from_millis(v)
    }

    #[test]
    fn sample_uses_max_of_send_and_ack_elapsed() {
        let mut e = RateEstimator::new();
        // Flight starts at t=0; two 1000-byte segments sent back to back.
        let r0 = e.on_send(ms(0), true);
        let r1 = e.on_send(ms(0), false);
        // First delivery at t=100 (RTT 100 ms).
        e.on_delivery(1000, ms(100));
        let s0 = e.sample(&r0, ms(0), ms(100)).unwrap();
        // send_elapsed 0, ack_elapsed 100ms (delivered_time was reset to
        // the flight start) → 1000 B / 100 ms = 10_000 B/s.
        assert_eq!(s0.bw, 10_000);
        assert_eq!(s0.rtt, SimDuration::from_millis(100));
        // Second delivery 10 ms later. The sample spans everything
        // delivered since r1 was stamped (2000 B over the 110 ms
        // ack-elapsed window): 18_181 B/s — the *average* delivery rate,
        // not the instantaneous burst rate of the last segment.
        e.on_delivery(1000, ms(110));
        let s1 = e.sample(&r1, ms(0), ms(110)).unwrap();
        assert_eq!(s1.delivered_delta, 2000);
        assert_eq!(s1.bw, 2000 * 1000 / 110);
    }

    #[test]
    fn burst_sends_do_not_inflate_bw() {
        let mut e = RateEstimator::new();
        // Sender bursts 10 segments at t=0; receiver acks them spaced
        // 10 ms apart (a 100 kB/s bottleneck). Every sample must stay at
        // or below the bottleneck rate.
        let recs: Vec<TxRecord> = (0..10).map(|i| e.on_send(ms(0), i == 0)).collect();
        for (i, rec) in recs.iter().enumerate() {
            let t = ms(100 + 10 * i as u64);
            e.on_delivery(1000, t);
            if let Some(s) = e.sample(rec, ms(0), t) {
                assert!(s.bw <= 100_000, "sample {} exceeded link rate: {}", i, s.bw);
            }
        }
        assert_eq!(e.delivered(), 10_000);
    }

    #[test]
    fn idle_restart_resets_sample_window() {
        let mut e = RateEstimator::new();
        let r0 = e.on_send(ms(0), true);
        e.on_delivery(1000, ms(50));
        e.sample(&r0, ms(0), ms(50)).unwrap();
        // Idle for 10 s, then a fresh flight: the sample interval must
        // not include the idle gap.
        let r1 = e.on_send(ms(10_050), true);
        e.on_delivery(1000, ms(10_100));
        let s = e.sample(&r1, ms(10_050), ms(10_100)).unwrap();
        assert_eq!(s.interval, SimDuration::from_millis(50));
        assert_eq!(s.bw, 20_000);
    }

    #[test]
    fn app_limited_marks_and_clears() {
        let mut e = RateEstimator::new();
        let _r0 = e.on_send(ms(0), true);
        e.on_app_limited(1000); // 1000 bytes in flight, queue empty
        assert!(e.app_limited());
        let r1 = e.on_send(ms(1), false);
        assert!(r1.is_app_limited);
        // Delivering past delivered+inflight clears the mark.
        e.on_delivery(2000, ms(100));
        let s = e.sample(&r1, ms(1), ms(100)).unwrap();
        assert!(s.is_app_limited, "the stamped sample keeps its mark");
        assert!(!e.app_limited(), "estimator mark cleared after delivery");
        let r2 = e.on_send(ms(101), false);
        assert!(!r2.is_app_limited);
    }

    #[test]
    fn app_limited_samples_only_raise_bw_estimate() {
        let mut e = RateEstimator::new();
        // A genuine 100 kB/s sample.
        let r0 = e.on_send(ms(0), true);
        e.on_delivery(10_000, ms(100));
        e.sample(&r0, ms(0), ms(100)).unwrap();
        assert_eq!(e.bw_estimate(), Some(100_000));
        // An app-limited trickle (1 kB/s) must not drag it down.
        e.on_app_limited(0);
        let r1 = e.on_send(ms(200), true);
        e.on_delivery(100, ms(300));
        e.sample(&r1, ms(200), ms(300)).unwrap();
        assert_eq!(e.bw_estimate(), Some(100_000));
    }

    #[test]
    fn min_rtt_filter_tracks_window() {
        let mut f = MinRttFilter::new(SimDuration::from_secs(1));
        f.update(SimDuration::from_millis(50), ms(0));
        f.update(SimDuration::from_millis(40), ms(100));
        f.update(SimDuration::from_millis(60), ms(200));
        assert_eq!(f.min(), Some(SimDuration::from_millis(40)));
        // The 40 ms sample expires at t=1.2s; 60 ms becomes the minimum.
        f.update(SimDuration::from_millis(70), ms(1200));
        assert_eq!(f.min(), Some(SimDuration::from_millis(60)));
    }

    #[test]
    fn steady_paced_stream_tracks_true_rate() {
        // A continuously backlogged sender paced at 100 kB/s: 1000-byte
        // segments leave every 10 ms, each delivered one 100 ms RTT
        // later. After the first round the samples must settle at the
        // true rate — neither decaying toward the first round's
        // cwnd/RTT (the bug the sliding send window prevents) nor
        // exceeding the bottleneck.
        let mut e = RateEstimator::new();
        let mut recs = Vec::new();
        for i in 0..60u64 {
            recs.push((e.on_send(ms(10 * i), i == 0), ms(10 * i)));
            if i >= 10 {
                // The segment sent at 10*(i-10) is delivered now.
                let (rec, sent_at) = recs[(i - 10) as usize];
                e.on_delivery(1000, ms(10 * i));
                if let Some(s) = e.sample(&rec, sent_at, ms(10 * i)) {
                    assert!(s.bw <= 100_000, "sample {i} above link rate: {}", s.bw);
                    if i > 25 {
                        assert!(s.bw >= 90_000, "sample {i} decayed: {}", s.bw);
                    }
                }
            }
        }
        let bw = e.bw_estimate().unwrap();
        assert!((90_000..=100_000).contains(&bw), "estimate {bw}");
    }

    #[test]
    fn zero_interval_world_produces_no_samples() {
        // Zero-latency test worlds put send and delivery on one
        // timestamp; the estimator must decline to divide by zero.
        let mut e = RateEstimator::new();
        let r = e.on_send(ms(0), true);
        e.on_delivery(1000, ms(0));
        assert!(e.sample(&r, ms(0), ms(0)).is_none());
    }
}
