//! Packet pacing: spreading a window of segments across the round trip
//! instead of bursting them back to back.
//!
//! Classic TCP transmits everything the window allows the instant an ACK
//! opens it; through a deep droptail buffer the resulting line-rate burst
//! is exactly what builds bufferbloat, and through a shallow one it is
//! what overflows it. The [`Pacer`] is a virtual-time token clock: each
//! released segment advances `next_release` by `bytes / rate`, and the
//! socket may only transmit while `now ≥ next_release` — the release
//! schedule a fair-queue qdisc (Linux `fq`) would impose, minus any
//! TSO-style burst quantum (one segment per release; DESIGN.md §4).
//!
//! The pacer does not own a rate: the socket derives one per transmission
//! opportunity — [`CongestionControl::pacing_rate`] when the controller
//! models one (BBR), else `gain × bw_estimate` from the delivery-rate
//! estimator ([`PACING_GAIN_SS`]/[`PACING_GAIN_CA`], the Linux sysctl
//! defaults). With no bandwidth estimate yet there is nothing to pace
//! against and transmission is immediate (the initial window leaves as a
//! burst, as deployed stacks do before the first RTT of feedback).
//!
//! The pacer enforces only *spacing*; the congestion and flow-control
//! windows are checked before it, so pacing can delay but never expand
//! what the window permits (property-tested).

use mm_sim::{SimDuration, Timestamp};

/// Pacing gain while the controller reports slow start: transmit at
/// twice the estimated bandwidth so the window can still grow
/// exponentially (Linux `sysctl_tcp_pacing_ss_ratio` = 200%).
pub const PACING_GAIN_SS: f64 = 2.0;

/// Pacing gain in congestion avoidance: 20% headroom over the estimate
/// so pacing never becomes the clamp that starves window growth (Linux
/// `sysctl_tcp_pacing_ca_ratio` = 120%).
pub const PACING_GAIN_CA: f64 = 1.2;

/// The token clock. `next_release` is the earliest instant the next
/// segment may leave; it only moves forward while transmissions happen,
/// and an idle period naturally re-admits an immediate send (the clock
/// is floored at `now` when it has fallen behind).
#[derive(Debug, Clone, Default)]
pub struct Pacer {
    next_release: Timestamp,
    /// High-water mark of bytes released ahead of the token clock: if a
    /// segment leaves at `now < next_release`, the deficit
    /// `(next_release - now) × rate` is how far the sender outran its
    /// own schedule. Stays 0 for a socket that honors `can_send`.
    max_excess_bytes: u64,
}

impl Pacer {
    pub fn new() -> Pacer {
        Pacer::default()
    }

    /// May a segment be released at `now`?
    pub fn can_send(&self, now: Timestamp) -> bool {
        now >= self.next_release
    }

    /// The earliest instant the next segment may leave (arm the pacing
    /// timer here when [`can_send`](Self::can_send) says no).
    pub fn ready_at(&self) -> Timestamp {
        self.next_release
    }

    /// Account a released segment of `bytes` at `now` against
    /// `rate` (bytes per second): the next release slides one
    /// serialization time into the future. A zero rate is ignored
    /// (callers gate on a known rate, but a degenerate estimate must
    /// not divide by zero or freeze the connection).
    pub fn on_sent(&mut self, now: Timestamp, bytes: u64, rate: u64) {
        if rate == 0 || bytes == 0 {
            return;
        }
        if now < self.next_release {
            let ahead_ns = (self.next_release - now).as_nanos();
            let excess = ((ahead_ns as u128 * rate as u128) / 1_000_000_000) as u64;
            self.max_excess_bytes = self.max_excess_bytes.max(excess);
        }
        let gap = SimDuration::from_nanos(((bytes as u128 * 1_000_000_000) / rate as u128) as u64);
        self.next_release = self.next_release.max(now) + gap;
    }

    /// High-water mark of bytes released ahead of the token clock
    /// (0 unless some transmission ignored [`can_send`](Self::can_send)).
    pub fn max_excess_bytes(&self) -> u64 {
        self.max_excess_bytes
    }

    /// Forget any pending schedule (connection teardown). The excess
    /// high-water mark survives: it records a conformance fact, not
    /// schedule state.
    pub fn reset(&mut self) {
        self.next_release = Timestamp::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Timestamp {
        Timestamp::from_millis(v)
    }

    #[test]
    fn first_send_is_immediate_then_spaced() {
        let mut p = Pacer::new();
        assert!(p.can_send(ms(0)));
        p.on_sent(ms(0), 1000, 100_000); // 10 ms serialization
        assert!(!p.can_send(ms(5)));
        assert_eq!(p.ready_at(), ms(10));
        assert!(p.can_send(ms(10)));
    }

    #[test]
    fn idle_period_floors_the_clock_at_now() {
        let mut p = Pacer::new();
        p.on_sent(ms(0), 1000, 100_000);
        // Long idle: the next send at t=1s releases immediately and the
        // following gap is measured from t=1s, not from the stale clock.
        assert!(p.can_send(ms(1000)));
        p.on_sent(ms(1000), 1000, 100_000);
        assert_eq!(p.ready_at(), ms(1010));
    }

    #[test]
    fn released_bytes_bounded_by_rate() {
        // Greedy sender against a 1 MB/s pacer: over any horizon the
        // released bytes can exceed rate × elapsed by at most one
        // segment (the initial immediate release).
        let mut p = Pacer::new();
        let rate = 1_000_000u64;
        let seg = 1460u64;
        let mut sent = 0u64;
        let mut now_ns = 0u64;
        let horizon_ns = 50_000_000; // 50 ms
        while now_ns <= horizon_ns {
            let now = Timestamp::from_nanos(now_ns);
            while p.can_send(now) {
                p.on_sent(now, seg, rate);
                sent += seg;
            }
            now_ns += 100_000; // 0.1 ms polling
        }
        let budget = rate * horizon_ns / 1_000_000_000 + seg;
        assert!(sent <= budget, "sent {sent} > budget {budget}");
        // And the pacer is not wildly conservative either.
        assert!(sent >= budget - 2 * seg, "sent {sent} « budget {budget}");
    }

    #[test]
    fn excess_high_water_tracks_early_releases() {
        let mut p = Pacer::new();
        p.on_sent(ms(0), 1000, 100_000); // next release at 10 ms
        assert_eq!(p.max_excess_bytes(), 0);
        // A send 5 ms early at 100 kB/s is 500 bytes ahead of schedule.
        p.on_sent(ms(5), 1000, 100_000);
        assert_eq!(p.max_excess_bytes(), 500);
        // On-schedule sends never raise the mark.
        p.on_sent(ms(30), 1000, 100_000);
        assert_eq!(p.max_excess_bytes(), 500);
    }

    #[test]
    fn zero_rate_is_inert() {
        let mut p = Pacer::new();
        p.on_sent(ms(0), 1000, 0);
        assert!(p.can_send(ms(0)), "zero rate must not freeze the pacer");
    }

    #[test]
    fn reset_reopens_immediately() {
        let mut p = Pacer::new();
        p.on_sent(ms(0), 100_000, 1000); // 100 s serialization
        assert!(!p.can_send(ms(50)));
        p.reset();
        assert!(p.can_send(ms(50)));
    }
}
