//! Time-based loss detection and spurious-timeout detection: the state
//! machines behind [`TcpConfig::recovery`](crate::tcp::socket::TcpConfig)
//! = `RackTlp`.
//!
//! * [`RackState`] — RACK (RFC 8985): instead of counting duplicate ACKs,
//!   infer loss from *delivery time*. Track the transmit time of the most
//!   recently sent segment known to be delivered (cumulatively acked or
//!   sacked); any outstanding segment sent sufficiently *before* it —
//!   more than one reordering window — is deemed lost. A segment sent
//!   *after* the most recently delivered one is never marked (it has had
//!   no chance to be overtaken), the invariant the property tests pin.
//!   The reordering window starts at `min_rtt / 4` and widens each time a
//!   RACK loss mark is later disproven by the segment's original arriving
//!   (this model's stand-in for DSACK evidence), monotonically within a
//!   connection.
//! * [`FrtoState`] — F-RTO (RFC 5682): after a retransmission timeout,
//!   before blindly resending everything, probe whether the timeout was
//!   *spurious* (the acknowledgments were merely delayed). If the first
//!   post-RTO cumulative ACK covers data that was never retransmitted,
//!   send new data instead of retransmissions; if the next ACK again
//!   advances over never-retransmitted data, the original flight is
//!   arriving — the timeout was spurious, and the socket undoes the
//!   congestion-window collapse and the RTO backoff
//!   ([`RttEstimator::reset_backoff`](crate::tcp::rtt::RttEstimator::reset_backoff),
//!   unwired until this subsystem existed — DESIGN.md §3).
//!
//! The Tail Loss Probe timer itself lives in the socket (it needs the
//! simulator); this module owns the pure state machines so they can be
//! property-tested in isolation.

use mm_sim::{SimDuration, Timestamp};

/// Cap on the adaptive reordering-window multiplier (quarters of
/// `min_rtt`): 16 quarters = 4 × min_rtt, the most reordering tolerance
/// that can still detect loss faster than the RTO.
pub const REO_WND_MAX_QUARTERS: u32 = 16;

/// Extra slack added to the Tail Loss Probe timeout over `2 × SRTT`,
/// absorbing ack-processing jitter (Linux uses 2 ms).
pub const TLP_SLACK: SimDuration = SimDuration::from_millis(2);

/// RACK per-connection state: delivery-time tracking and the adaptive
/// reordering window (RFC 8985, simplified — deviations in DESIGN.md §3).
#[derive(Debug, Default)]
pub struct RackState {
    /// Transmit time of the most recently *sent* segment known delivered.
    xmit_ts: Option<Timestamp>,
    /// Ending sequence of that segment (tiebreak for equal send times).
    end_seq: u64,
    /// RTT measured on the delivery that last advanced `xmit_ts`.
    rtt: SimDuration,
    /// Minimum RTT over never-retransmitted deliveries.
    min_rtt: Option<SimDuration>,
    /// Highest delivered ending sequence (reordering detection).
    highest_delivered: u64,
    /// Reordering window in quarters of `min_rtt`; starts at 1 (RTT/4),
    /// widened — never narrowed — by disproven loss marks.
    reo_wnd_quarters: u32,
    /// Whether any out-of-order delivery has been observed.
    reordering_seen: bool,
}

impl RackState {
    pub fn new() -> RackState {
        RackState {
            reo_wnd_quarters: 1,
            ..RackState::default()
        }
    }

    /// Record a delivery (cumulative ack or new SACK coverage) of a
    /// segment last transmitted at `sent_at`, ending at `end_seq`.
    /// Returns whether detection-relevant state changed — the delivery
    /// clock advanced, or the minimum RTT dropped (which narrows the
    /// reordering window and can pull pending loss deadlines earlier);
    /// loss verdicts can only change when one of those happens or a
    /// recorded reordering-window deadline passes.
    ///
    /// Karn-style ambiguity guard: a delivery of a *retransmitted*
    /// segment whose implied RTT is below the observed minimum is almost
    /// certainly the original's ack, not the retransmission's — using its
    /// (recent) transmit time would fast-forward the delivery clock and
    /// mark the whole flight lost, so it is ignored.
    pub fn on_delivered(
        &mut self,
        sent_at: Timestamp,
        end_seq: u64,
        retransmitted: bool,
        now: Timestamp,
    ) -> bool {
        let rtt = now.saturating_duration_since(sent_at);
        let mut min_shrunk = false;
        if retransmitted {
            if let Some(min) = self.min_rtt {
                if rtt < min {
                    return false;
                }
            }
        } else {
            min_shrunk = self.min_rtt.is_none_or(|m| rtt < m);
            self.min_rtt = Some(match self.min_rtt {
                Some(m) => m.min(rtt),
                None => rtt,
            });
            if end_seq < self.highest_delivered {
                self.reordering_seen = true;
            }
        }
        let newer = match self.xmit_ts {
            None => true,
            Some(ts) => sent_at > ts || (sent_at == ts && end_seq > self.end_seq),
        };
        if newer {
            self.xmit_ts = Some(sent_at);
            self.end_seq = end_seq;
            self.rtt = rtt;
        }
        self.highest_delivered = self.highest_delivered.max(end_seq);
        newer || min_shrunk
    }

    /// A RACK loss mark was disproven (the marked segment's original
    /// transmission arrived after all): widen the reordering window one
    /// quarter-RTT, up to [`REO_WND_MAX_QUARTERS`]. Monotone.
    pub fn on_spurious_mark(&mut self) {
        self.reordering_seen = true;
        self.reo_wnd_quarters = (self.reo_wnd_quarters + 1).min(REO_WND_MAX_QUARTERS);
    }

    /// The current reordering window: `min_rtt / 4` scaled by the
    /// adaptive multiplier. Zero until an RTT has been observed.
    pub fn reo_wnd(&self) -> SimDuration {
        match self.min_rtt {
            Some(m) => SimDuration::from_nanos(m.as_nanos() / 4)
                .saturating_mul(self.reo_wnd_quarters as u64),
            None => SimDuration::ZERO,
        }
    }

    /// Was the most recently delivered segment sent after one transmitted
    /// at `sent_at` ending at `end_seq`? Only such segments can be deemed
    /// lost — a segment sent after every delivered one has had no chance
    /// to be overtaken.
    pub fn sent_after(&self, sent_at: Timestamp, end_seq: u64) -> bool {
        match self.xmit_ts {
            None => false,
            Some(ts) => ts > sent_at || (ts == sent_at && self.end_seq > end_seq),
        }
    }

    /// The instant at which an undelivered segment sent at `sent_at`
    /// crosses from "possibly reordered" to "lost": one delivery RTT plus
    /// the reordering window past its transmission.
    pub fn lost_deadline(&self, sent_at: Timestamp) -> Timestamp {
        sent_at + self.rtt + self.reo_wnd()
    }

    /// Is the outstanding segment `(sent_at, end_seq)` deemed lost at
    /// `now`?
    pub fn is_lost(&self, sent_at: Timestamp, end_seq: u64, now: Timestamp) -> bool {
        self.sent_after(sent_at, end_seq) && self.lost_deadline(sent_at) <= now
    }

    /// True once any delivery has been recorded (detection can run).
    pub fn has_delivery(&self) -> bool {
        self.xmit_ts.is_some()
    }

    /// The delivery clock: transmit time and ending sequence of the most
    /// recently sent segment known delivered (diagnostics/tests).
    pub fn clock(&self) -> Option<(Timestamp, u64)> {
        self.xmit_ts.map(|ts| (ts, self.end_seq))
    }

    /// Whether out-of-order delivery has ever been observed.
    pub fn reordering_seen(&self) -> bool {
        self.reordering_seen
    }

    /// Minimum observed RTT, if any.
    pub fn min_rtt(&self) -> Option<SimDuration> {
        self.min_rtt
    }
}

/// F-RTO (RFC 5682) detection phase, advanced by the socket on RTO and on
/// each subsequent cumulative ACK.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FrtoState {
    /// No detection in progress.
    #[default]
    Inactive,
    /// An RTO fired and retransmitted the head; `retx_end` is the end of
    /// the retransmitted sequence range. Waiting for the first ACK.
    RtoSent { retx_end: u64 },
    /// The first post-RTO ACK covered never-retransmitted data and new
    /// data was sent instead of retransmissions. One more such ACK
    /// declares the timeout spurious.
    NewDataSent { retx_end: u64 },
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Timestamp {
        Timestamp::from_millis(v)
    }

    #[test]
    fn delivery_advances_most_recent() {
        let mut r = RackState::new();
        r.on_delivered(ms(10), 1000, false, ms(50));
        assert!(r.has_delivery());
        assert!(r.sent_after(ms(5), 500));
        assert!(!r.sent_after(ms(10), 1000), "not after itself");
        assert!(!r.sent_after(ms(20), 2000), "not after a later send");
        // An older delivery must not rewind the clock.
        r.on_delivered(ms(8), 800, false, ms(51));
        assert!(r.sent_after(ms(9), 900));
        assert!(!r.sent_after(ms(10), 1000));
    }

    #[test]
    fn equal_send_time_tiebreaks_on_end_seq() {
        let mut r = RackState::new();
        r.on_delivered(ms(10), 2000, false, ms(50));
        assert!(r.sent_after(ms(10), 1000));
        assert!(!r.sent_after(ms(10), 2000));
    }

    #[test]
    fn reo_wnd_starts_at_quarter_min_rtt() {
        let mut r = RackState::new();
        assert_eq!(r.reo_wnd(), SimDuration::ZERO);
        r.on_delivered(ms(0), 1000, false, ms(40));
        assert_eq!(r.reo_wnd(), SimDuration::from_millis(10));
        // A lower RTT lowers the window base.
        r.on_delivered(ms(50), 2000, false, ms(70));
        assert_eq!(r.reo_wnd(), SimDuration::from_millis(5));
    }

    #[test]
    fn spurious_marks_widen_window_monotonically_and_cap() {
        let mut r = RackState::new();
        r.on_delivered(ms(0), 1000, false, ms(40));
        let mut prev = r.reo_wnd();
        for _ in 0..REO_WND_MAX_QUARTERS + 4 {
            r.on_spurious_mark();
            assert!(r.reo_wnd() >= prev, "window must never narrow");
            prev = r.reo_wnd();
        }
        assert_eq!(
            r.reo_wnd(),
            SimDuration::from_millis(10).saturating_mul(REO_WND_MAX_QUARTERS as u64)
        );
        assert!(r.reordering_seen());
    }

    #[test]
    fn loss_requires_deadline_and_sent_before() {
        let mut r = RackState::new();
        // Delivery of a segment sent at t=100 with a 40 ms RTT.
        r.on_delivered(ms(100), 5000, false, ms(140));
        // Segment sent at t=90: deadline 90 + 40 + 10 = 140.
        assert!(r.is_lost(ms(90), 4000, ms(140)));
        assert!(!r.is_lost(ms(90), 4000, ms(139)));
        // Sent after the delivered one: never lost, however late.
        assert!(!r.is_lost(ms(101), 6000, ms(10_000)));
    }

    #[test]
    fn retransmitted_delivery_below_min_rtt_ignored() {
        let mut r = RackState::new();
        r.on_delivered(ms(0), 1000, false, ms(40)); // min_rtt = 40ms
                                                    // A retransmission "delivered" 5 ms after (re)sending is really
                                                    // the original's ack; it must not advance the delivery clock.
        r.on_delivered(ms(100), 2000, true, ms(105));
        assert!(!r.sent_after(ms(50), 1500));
        // A plausible retransmission RTT does advance it.
        r.on_delivered(ms(100), 2000, true, ms(145));
        assert!(r.sent_after(ms(50), 1500));
    }

    #[test]
    fn out_of_order_delivery_sets_reordering_seen() {
        let mut r = RackState::new();
        r.on_delivered(ms(10), 3000, false, ms(50));
        assert!(!r.reordering_seen());
        r.on_delivered(ms(5), 1000, false, ms(51));
        assert!(r.reordering_seen());
    }
}
