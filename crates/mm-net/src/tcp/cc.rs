//! Congestion control: NewReno and CUBIC.
//!
//! The congestion window is kept in bytes. Both algorithms implement the
//! same small trait so the socket can switch between them (and the bench
//! suite can ablate Reno vs CUBIC).

use mm_sim::{SimDuration, Timestamp};

use crate::packet::MSS;

/// Which congestion-control algorithm a socket runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CcAlgorithm {
    /// TCP NewReno: AIMD, slow start + congestion avoidance.
    #[default]
    Reno,
    /// CUBIC (RFC 8312-style window growth), the Linux default in the
    /// paper's era.
    Cubic,
}

/// Congestion-controller interface. All window values are bytes.
pub trait CongestionControl {
    /// Current congestion window.
    fn cwnd(&self) -> u64;
    /// Current slow-start threshold.
    fn ssthresh(&self) -> u64;
    /// New data acknowledged.
    fn on_ack(&mut self, bytes_acked: u64, now: Timestamp, srtt: Option<SimDuration>);
    /// Loss detected via three duplicate ACKs (fast retransmit). Returns
    /// the new cwnd to use during fast recovery.
    fn on_fast_retransmit(&mut self, flight_size: u64, now: Timestamp);
    /// Loss detected via the SACK scoreboard (RFC 6675 recovery entry).
    /// The default applies the same multiplicative reduction as a fast
    /// retransmit; while recovery runs, the socket's proportional rate
    /// reduction (RFC 6937) governs the send rate against the `ssthresh`
    /// this sets, so the window shrinks in proportion to delivered data
    /// instead of collapsing in one step.
    fn on_sack_recovery(&mut self, flight_size: u64, now: Timestamp) {
        self.on_fast_retransmit(flight_size, now);
    }
    /// Loss detected via retransmission timeout.
    fn on_timeout(&mut self, flight_size: u64, now: Timestamp);
    /// The preceding timeout was proven spurious (F-RTO, RFC 5682): the
    /// acknowledgments were merely delayed and the original flight is
    /// arriving. Undo the window collapse by restoring the state the
    /// last `on_timeout` destroyed. Default: no-op (controllers that
    /// don't save prior state simply forgo the undo).
    fn on_spurious_timeout(&mut self) {}
    /// Fast recovery finished (the lost segment's range was acked).
    fn on_recovery_exit(&mut self);
    /// True while in slow start.
    fn in_slow_start(&self) -> bool {
        self.cwnd() < self.ssthresh()
    }
}

const MSS64: u64 = MSS as u64;
/// Initial window: 10 segments (RFC 6928, the Linux default since 2011,
/// i.e. the paper's era).
pub const INITIAL_WINDOW: u64 = 10 * MSS64;
const MIN_CWND: u64 = 2 * MSS64;

/// TCP NewReno.
#[derive(Debug, Clone)]
pub struct Reno {
    cwnd: u64,
    ssthresh: u64,
    /// Fractional-MSS accumulator for congestion avoidance.
    acked_bytes: u64,
    /// (cwnd, ssthresh) before the last timeout, for the F-RTO undo.
    prior: Option<(u64, u64)>,
}

impl Reno {
    /// Standard initial state (IW10, effectively-infinite ssthresh).
    pub fn new() -> Self {
        Self::with_initial_window(INITIAL_WINDOW)
    }

    /// Initial state with an explicit initial window in bytes.
    pub fn with_initial_window(iw: u64) -> Self {
        Reno {
            cwnd: iw.max(MIN_CWND),
            ssthresh: u64::MAX,
            acked_bytes: 0,
            prior: None,
        }
    }
}

impl Default for Reno {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Reno {
    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    fn on_ack(&mut self, bytes_acked: u64, _now: Timestamp, _srtt: Option<SimDuration>) {
        if self.in_slow_start() {
            self.cwnd += bytes_acked;
        } else {
            // cwnd += MSS per cwnd-worth of acked bytes.
            self.acked_bytes += bytes_acked;
            while self.acked_bytes >= self.cwnd {
                self.acked_bytes -= self.cwnd;
                self.cwnd += MSS64;
            }
        }
    }

    fn on_fast_retransmit(&mut self, flight_size: u64, _now: Timestamp) {
        self.ssthresh = (flight_size / 2).max(MIN_CWND);
        self.cwnd = self.ssthresh;
        self.acked_bytes = 0;
    }

    fn on_timeout(&mut self, flight_size: u64, _now: Timestamp) {
        self.prior = Some((self.cwnd, self.ssthresh));
        self.ssthresh = (flight_size / 2).max(MIN_CWND);
        self.cwnd = MSS64;
        self.acked_bytes = 0;
    }

    fn on_spurious_timeout(&mut self) {
        if let Some((cwnd, ssthresh)) = self.prior.take() {
            self.cwnd = cwnd;
            self.ssthresh = ssthresh;
        }
    }

    fn on_recovery_exit(&mut self) {
        self.cwnd = self.ssthresh;
    }
}

/// CUBIC window growth (simplified RFC 8312: no TCP-friendly region clamp
/// beyond the Reno-equivalent lower bound, no HyStart).
#[derive(Debug, Clone)]
pub struct Cubic {
    cwnd: u64,
    ssthresh: u64,
    /// Window size before the last reduction.
    w_max: f64,
    /// Time of the last reduction.
    epoch_start: Option<Timestamp>,
    /// Reno-equivalent window for the TCP-friendly region.
    w_est: f64,
    acked_bytes: u64,
    /// Full pre-timeout state for the F-RTO undo.
    prior: Option<CubicPrior>,
}

/// Snapshot of the CUBIC state a timeout destroys (see
/// [`CongestionControl::on_spurious_timeout`]).
#[derive(Debug, Clone, Copy)]
struct CubicPrior {
    cwnd: u64,
    ssthresh: u64,
    w_max: f64,
    epoch_start: Option<Timestamp>,
    w_est: f64,
}

/// CUBIC scaling constant (RFC 8312).
const CUBIC_C: f64 = 0.4;
/// Multiplicative decrease factor.
const CUBIC_BETA: f64 = 0.7;

impl Cubic {
    /// Standard initial state.
    pub fn new() -> Self {
        Self::with_initial_window(INITIAL_WINDOW)
    }

    /// Initial state with an explicit initial window in bytes.
    pub fn with_initial_window(iw: u64) -> Self {
        Cubic {
            cwnd: iw.max(MIN_CWND),
            ssthresh: u64::MAX,
            w_max: 0.0,
            epoch_start: None,
            w_est: 0.0,
            acked_bytes: 0,
            prior: None,
        }
    }

    fn cubic_window(&self, t: SimDuration) -> f64 {
        // W(t) = C*(t-K)^3 + Wmax, windows in MSS units.
        let w_max_mss = self.w_max / MSS as f64;
        let k = (w_max_mss * (1.0 - CUBIC_BETA) / CUBIC_C).cbrt();
        let t_s = t.as_secs_f64();
        (CUBIC_C * (t_s - k).powi(3) + w_max_mss) * MSS as f64
    }
}

impl Default for Cubic {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Cubic {
    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    fn on_ack(&mut self, bytes_acked: u64, now: Timestamp, srtt: Option<SimDuration>) {
        if self.in_slow_start() {
            self.cwnd += bytes_acked;
            return;
        }
        let epoch = match self.epoch_start {
            Some(e) => e,
            None => {
                // First CA ack after leaving slow start without a loss
                // event: treat current window as Wmax.
                self.epoch_start = Some(now);
                self.w_max = self.cwnd as f64;
                self.w_est = self.cwnd as f64;
                now
            }
        };
        let t = now.saturating_duration_since(epoch);
        // Reno-equivalent estimate for the TCP-friendly region.
        self.acked_bytes += bytes_acked;
        while self.acked_bytes >= self.cwnd {
            self.acked_bytes -= self.cwnd;
            self.w_est += MSS as f64;
        }
        let rtt = srtt.unwrap_or(SimDuration::from_millis(100));
        // Target the cubic curve one RTT ahead, as RFC 8312 prescribes.
        let target = self.cubic_window(t + rtt);
        let next = target.max(self.w_est);
        if next > self.cwnd as f64 {
            // Approach the target gradually: at most 1.5x per call bundle.
            self.cwnd = (next.min(self.cwnd as f64 * 1.5)) as u64;
        }
        self.cwnd = self.cwnd.max(MIN_CWND);
    }

    fn on_fast_retransmit(&mut self, flight_size: u64, now: Timestamp) {
        self.w_max = self.cwnd.max(flight_size) as f64;
        self.ssthresh = ((self.cwnd as f64 * CUBIC_BETA) as u64).max(MIN_CWND);
        self.cwnd = self.ssthresh;
        self.epoch_start = Some(now);
        self.w_est = self.cwnd as f64;
        self.acked_bytes = 0;
    }

    fn on_timeout(&mut self, flight_size: u64, now: Timestamp) {
        self.prior = Some(CubicPrior {
            cwnd: self.cwnd,
            ssthresh: self.ssthresh,
            w_max: self.w_max,
            epoch_start: self.epoch_start,
            w_est: self.w_est,
        });
        self.w_max = self.cwnd.max(flight_size) as f64;
        self.ssthresh = ((self.cwnd as f64 * CUBIC_BETA) as u64).max(MIN_CWND);
        self.cwnd = MSS64;
        self.epoch_start = Some(now);
        self.w_est = self.cwnd as f64;
        self.acked_bytes = 0;
    }

    fn on_spurious_timeout(&mut self) {
        if let Some(p) = self.prior.take() {
            self.cwnd = p.cwnd;
            self.ssthresh = p.ssthresh;
            self.w_max = p.w_max;
            self.epoch_start = p.epoch_start;
            self.w_est = p.w_est;
        }
    }

    fn on_recovery_exit(&mut self) {
        self.cwnd = self.ssthresh;
    }
}

/// Construct a boxed controller for the given algorithm with the given
/// initial window in bytes.
pub fn make_controller(alg: CcAlgorithm, initial_window: u64) -> Box<dyn CongestionControl> {
    match alg {
        CcAlgorithm::Reno => Box::new(Reno::with_initial_window(initial_window)),
        CcAlgorithm::Cubic => Box::new(Cubic::with_initial_window(initial_window)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reno_slow_start_doubles_per_rtt() {
        let mut r = Reno::new();
        let w0 = r.cwnd();
        // Ack a full window: slow start should double it.
        r.on_ack(w0, Timestamp::from_millis(100), None);
        assert_eq!(r.cwnd(), 2 * w0);
        assert!(r.in_slow_start());
    }

    #[test]
    fn reno_congestion_avoidance_linear() {
        let mut r = Reno::new();
        r.on_fast_retransmit(100 * MSS64, Timestamp::from_millis(1));
        r.on_recovery_exit();
        let w = r.cwnd();
        assert!(!r.in_slow_start());
        // One full window of acks → +1 MSS.
        r.on_ack(w, Timestamp::from_millis(200), None);
        assert_eq!(r.cwnd(), w + MSS64);
    }

    #[test]
    fn reno_fast_retransmit_halves() {
        let mut r = Reno::new();
        let flight = 64 * MSS64;
        r.on_fast_retransmit(flight, Timestamp::from_millis(1));
        assert_eq!(r.ssthresh(), flight / 2);
        assert_eq!(r.cwnd(), flight / 2);
    }

    #[test]
    fn reno_timeout_collapses_to_one_mss() {
        let mut r = Reno::new();
        r.on_timeout(64 * MSS64, Timestamp::from_millis(1));
        assert_eq!(r.cwnd(), MSS64);
        assert_eq!(r.ssthresh(), 32 * MSS64);
        assert!(r.in_slow_start());
    }

    #[test]
    fn spurious_timeout_restores_window() {
        let mut r = Reno::new();
        r.on_fast_retransmit(100 * MSS64, Timestamp::from_millis(1));
        r.on_recovery_exit();
        let (cwnd, ssthresh) = (r.cwnd(), r.ssthresh());
        r.on_timeout(cwnd, Timestamp::from_millis(2));
        assert_eq!(r.cwnd(), MSS64);
        r.on_spurious_timeout();
        assert_eq!(r.cwnd(), cwnd);
        assert_eq!(r.ssthresh(), ssthresh);
        // A second undo without a new timeout is a no-op.
        r.on_spurious_timeout();
        assert_eq!(r.cwnd(), cwnd);

        let mut c = Cubic::new();
        c.cwnd = 80 * MSS64;
        c.ssthresh = 40 * MSS64;
        c.on_timeout(80 * MSS64, Timestamp::from_secs(1));
        assert_eq!(c.cwnd(), MSS64);
        c.on_spurious_timeout();
        assert_eq!(c.cwnd(), 80 * MSS64);
        assert_eq!(c.ssthresh(), 40 * MSS64);
    }

    #[test]
    fn reno_min_ssthresh_floor() {
        let mut r = Reno::new();
        r.on_timeout(MSS64, Timestamp::from_millis(1));
        assert_eq!(r.ssthresh(), 2 * MSS64);
    }

    #[test]
    fn cubic_reduces_by_beta() {
        let mut c = Cubic::new();
        let w0 = c.cwnd();
        c.on_fast_retransmit(w0, Timestamp::from_millis(1));
        assert_eq!(c.cwnd(), (w0 as f64 * CUBIC_BETA) as u64);
    }

    #[test]
    fn cubic_grows_toward_wmax_after_loss() {
        let mut c = Cubic::new();
        // Build a large window, lose, then grow: should stay below ~Wmax
        // early and approach it over time.
        c.cwnd = 100 * MSS64;
        c.ssthresh = 50 * MSS64;
        c.on_fast_retransmit(100 * MSS64, Timestamp::from_secs(1));
        c.on_recovery_exit();
        let after_loss = c.cwnd();
        let mut now = Timestamp::from_secs(1);
        // Stay within the concave region (t < K ≈ 4.2 s for Wmax = 100 MSS):
        // the window should climb back toward Wmax but not overshoot it.
        for _ in 0..30 {
            now += SimDuration::from_millis(100);
            c.on_ack(10 * MSS64, now, Some(SimDuration::from_millis(100)));
        }
        assert!(c.cwnd() > after_loss, "cubic window should recover");
        assert!(
            c.cwnd() as f64 <= 100.0 * MSS as f64 * 1.05,
            "cubic should plateau near Wmax in the concave region: {}",
            c.cwnd()
        );
    }

    #[test]
    fn cubic_timeout_resets_window() {
        let mut c = Cubic::new();
        c.cwnd = 50 * MSS64;
        c.on_timeout(50 * MSS64, Timestamp::from_secs(2));
        assert_eq!(c.cwnd(), MSS64);
        assert!(c.in_slow_start());
    }

    #[test]
    fn factory_produces_both() {
        let r = make_controller(CcAlgorithm::Reno, INITIAL_WINDOW);
        let c = make_controller(CcAlgorithm::Cubic, INITIAL_WINDOW);
        assert_eq!(r.cwnd(), INITIAL_WINDOW);
        assert_eq!(c.cwnd(), INITIAL_WINDOW);
    }
}
