//! Congestion control: NewReno, CUBIC, and BBR.
//!
//! The congestion window is kept in bytes. All algorithms implement the
//! same small trait so the socket can switch between them (and the bench
//! suite can ablate them). Loss-based controllers (Reno, Cubic) ignore
//! the rate-sample and pacing hooks — their no-op defaults keep the
//! classic tiers byte-identical — while [`Bbr`] is built entirely on
//! them: it models the path (bottleneck bandwidth × min RTT) from
//! delivery-rate samples and drives the socket's pacer instead of
//! reacting to loss.

use mm_sim::{SimDuration, Timestamp};

use crate::packet::MSS;
use crate::tcp::rate::{RateSample, WindowedMaxBw};

/// Which congestion-control algorithm a socket runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CcAlgorithm {
    /// TCP NewReno: AIMD, slow start + congestion avoidance.
    #[default]
    Reno,
    /// CUBIC (RFC 8312-style window growth), the Linux default in the
    /// paper's era.
    Cubic,
    /// BBRv1: model-based congestion control from delivery-rate samples,
    /// driving the pacer. Implies pacing (a BBR sender without pacing
    /// would burst whole BDP-sized windows and defeat its own model).
    Bbr,
}

/// Congestion-controller interface. All window values are bytes.
pub trait CongestionControl {
    /// Current congestion window.
    fn cwnd(&self) -> u64;
    /// Current slow-start threshold.
    fn ssthresh(&self) -> u64;
    /// New data acknowledged.
    fn on_ack(&mut self, bytes_acked: u64, now: Timestamp, srtt: Option<SimDuration>);
    /// Loss detected via three duplicate ACKs (fast retransmit). Returns
    /// the new cwnd to use during fast recovery.
    fn on_fast_retransmit(&mut self, flight_size: u64, now: Timestamp);
    /// Loss detected via the SACK scoreboard (RFC 6675 recovery entry).
    /// The default applies the same multiplicative reduction as a fast
    /// retransmit; while recovery runs, the socket's proportional rate
    /// reduction (RFC 6937) governs the send rate against the `ssthresh`
    /// this sets, so the window shrinks in proportion to delivered data
    /// instead of collapsing in one step.
    fn on_sack_recovery(&mut self, flight_size: u64, now: Timestamp) {
        self.on_fast_retransmit(flight_size, now);
    }
    /// Loss detected via retransmission timeout.
    fn on_timeout(&mut self, flight_size: u64, now: Timestamp);
    /// The preceding timeout was proven spurious (F-RTO, RFC 5682): the
    /// acknowledgments were merely delayed and the original flight is
    /// arriving. Undo the window collapse by restoring the state the
    /// last `on_timeout` destroyed. Default: no-op (controllers that
    /// don't save prior state simply forgo the undo).
    fn on_spurious_timeout(&mut self) {}
    /// Fast recovery finished (the lost segment's range was acked).
    fn on_recovery_exit(&mut self);
    /// A delivery-rate sample (see [`crate::tcp::rate`]) with the
    /// current pipe estimate. Model-based controllers (BBR) rebuild
    /// their path model here; loss-based controllers ignore it — the
    /// no-op default keeps Reno/Cubic untouched.
    fn on_rate_sample(&mut self, _rs: &RateSample, _inflight: u64, _now: Timestamp) {}
    /// The rate (bytes/second) the controller wants the pacer to release
    /// at, when it models one. `None` (the default) lets the socket fall
    /// back to `gain × bw_estimate` from the delivery-rate estimator —
    /// or not pace at all when pacing is off.
    fn pacing_rate(&self) -> Option<u64> {
        None
    }
    /// True while in slow start.
    fn in_slow_start(&self) -> bool {
        self.cwnd() < self.ssthresh()
    }
}

const MSS64: u64 = MSS as u64;
/// Initial window: 10 segments (RFC 6928, the Linux default since 2011,
/// i.e. the paper's era).
pub const INITIAL_WINDOW: u64 = 10 * MSS64;
const MIN_CWND: u64 = 2 * MSS64;

/// TCP NewReno.
#[derive(Debug, Clone)]
pub struct Reno {
    cwnd: u64,
    ssthresh: u64,
    /// Fractional-MSS accumulator for congestion avoidance.
    acked_bytes: u64,
    /// (cwnd, ssthresh) before the last timeout, for the F-RTO undo.
    prior: Option<(u64, u64)>,
}

impl Reno {
    /// Standard initial state (IW10, effectively-infinite ssthresh).
    pub fn new() -> Self {
        Self::with_initial_window(INITIAL_WINDOW)
    }

    /// Initial state with an explicit initial window in bytes.
    pub fn with_initial_window(iw: u64) -> Self {
        Reno {
            cwnd: iw.max(MIN_CWND),
            ssthresh: u64::MAX,
            acked_bytes: 0,
            prior: None,
        }
    }
}

impl Default for Reno {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Reno {
    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    fn on_ack(&mut self, bytes_acked: u64, _now: Timestamp, _srtt: Option<SimDuration>) {
        if self.in_slow_start() {
            self.cwnd += bytes_acked;
        } else {
            // cwnd += MSS per cwnd-worth of acked bytes.
            self.acked_bytes += bytes_acked;
            while self.acked_bytes >= self.cwnd {
                self.acked_bytes -= self.cwnd;
                self.cwnd += MSS64;
            }
        }
    }

    fn on_fast_retransmit(&mut self, flight_size: u64, _now: Timestamp) {
        self.ssthresh = (flight_size / 2).max(MIN_CWND);
        self.cwnd = self.ssthresh;
        self.acked_bytes = 0;
    }

    fn on_timeout(&mut self, flight_size: u64, _now: Timestamp) {
        self.prior = Some((self.cwnd, self.ssthresh));
        self.ssthresh = (flight_size / 2).max(MIN_CWND);
        self.cwnd = MSS64;
        self.acked_bytes = 0;
    }

    fn on_spurious_timeout(&mut self) {
        if let Some((cwnd, ssthresh)) = self.prior.take() {
            self.cwnd = cwnd;
            self.ssthresh = ssthresh;
        }
    }

    fn on_recovery_exit(&mut self) {
        self.cwnd = self.ssthresh;
    }
}

/// CUBIC window growth (simplified RFC 8312: no TCP-friendly region clamp
/// beyond the Reno-equivalent lower bound, no HyStart).
#[derive(Debug, Clone)]
pub struct Cubic {
    cwnd: u64,
    ssthresh: u64,
    /// Window size before the last reduction.
    w_max: f64,
    /// Time of the last reduction.
    epoch_start: Option<Timestamp>,
    /// Reno-equivalent window for the TCP-friendly region.
    w_est: f64,
    acked_bytes: u64,
    /// Full pre-timeout state for the F-RTO undo.
    prior: Option<CubicPrior>,
}

/// Snapshot of the CUBIC state a timeout destroys (see
/// [`CongestionControl::on_spurious_timeout`]).
#[derive(Debug, Clone, Copy)]
struct CubicPrior {
    cwnd: u64,
    ssthresh: u64,
    w_max: f64,
    epoch_start: Option<Timestamp>,
    w_est: f64,
}

/// CUBIC scaling constant (RFC 8312).
const CUBIC_C: f64 = 0.4;
/// Multiplicative decrease factor.
const CUBIC_BETA: f64 = 0.7;

impl Cubic {
    /// Standard initial state.
    pub fn new() -> Self {
        Self::with_initial_window(INITIAL_WINDOW)
    }

    /// Initial state with an explicit initial window in bytes.
    pub fn with_initial_window(iw: u64) -> Self {
        Cubic {
            cwnd: iw.max(MIN_CWND),
            ssthresh: u64::MAX,
            w_max: 0.0,
            epoch_start: None,
            w_est: 0.0,
            acked_bytes: 0,
            prior: None,
        }
    }

    fn cubic_window(&self, t: SimDuration) -> f64 {
        // W(t) = C*(t-K)^3 + Wmax, windows in MSS units.
        let w_max_mss = self.w_max / MSS as f64;
        let k = (w_max_mss * (1.0 - CUBIC_BETA) / CUBIC_C).cbrt();
        let t_s = t.as_secs_f64();
        (CUBIC_C * (t_s - k).powi(3) + w_max_mss) * MSS as f64
    }
}

impl Default for Cubic {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Cubic {
    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    fn on_ack(&mut self, bytes_acked: u64, now: Timestamp, srtt: Option<SimDuration>) {
        if self.in_slow_start() {
            self.cwnd += bytes_acked;
            return;
        }
        let epoch = match self.epoch_start {
            Some(e) => e,
            None => {
                // First CA ack after leaving slow start without a loss
                // event: treat current window as Wmax.
                self.epoch_start = Some(now);
                self.w_max = self.cwnd as f64;
                self.w_est = self.cwnd as f64;
                now
            }
        };
        let t = now.saturating_duration_since(epoch);
        // Reno-equivalent estimate for the TCP-friendly region.
        self.acked_bytes += bytes_acked;
        while self.acked_bytes >= self.cwnd {
            self.acked_bytes -= self.cwnd;
            self.w_est += MSS as f64;
        }
        let rtt = srtt.unwrap_or(SimDuration::from_millis(100));
        // Target the cubic curve one RTT ahead, as RFC 8312 prescribes.
        let target = self.cubic_window(t + rtt);
        let next = target.max(self.w_est);
        if next > self.cwnd as f64 {
            // Approach the target gradually: at most 1.5x per call bundle.
            self.cwnd = (next.min(self.cwnd as f64 * 1.5)) as u64;
        }
        self.cwnd = self.cwnd.max(MIN_CWND);
    }

    fn on_fast_retransmit(&mut self, flight_size: u64, now: Timestamp) {
        self.w_max = self.cwnd.max(flight_size) as f64;
        self.ssthresh = ((self.cwnd as f64 * CUBIC_BETA) as u64).max(MIN_CWND);
        self.cwnd = self.ssthresh;
        self.epoch_start = Some(now);
        self.w_est = self.cwnd as f64;
        self.acked_bytes = 0;
    }

    fn on_timeout(&mut self, flight_size: u64, now: Timestamp) {
        self.prior = Some(CubicPrior {
            cwnd: self.cwnd,
            ssthresh: self.ssthresh,
            w_max: self.w_max,
            epoch_start: self.epoch_start,
            w_est: self.w_est,
        });
        self.w_max = self.cwnd.max(flight_size) as f64;
        self.ssthresh = ((self.cwnd as f64 * CUBIC_BETA) as u64).max(MIN_CWND);
        self.cwnd = MSS64;
        self.epoch_start = Some(now);
        self.w_est = self.cwnd as f64;
        self.acked_bytes = 0;
    }

    fn on_spurious_timeout(&mut self) {
        if let Some(p) = self.prior.take() {
            self.cwnd = p.cwnd;
            self.ssthresh = p.ssthresh;
            self.w_max = p.w_max;
            self.epoch_start = p.epoch_start;
            self.w_est = p.w_est;
        }
    }

    fn on_recovery_exit(&mut self) {
        self.cwnd = self.ssthresh;
    }
}

/// BBR STARTUP/DRAIN pacing gain: 2/ln 2, the smallest gain that can
/// double the delivery rate every round trip.
const BBR_HIGH_GAIN: f64 = 2.885;
/// ProbeBW cwnd gain: two BDPs of inflight headroom absorbs delayed and
/// aggregated ACKs without starving the pacer.
const BBR_CWND_GAIN: f64 = 2.0;
/// The ProbeBW pacing-gain cycle: one probing phase, one draining phase,
/// six cruise phases.
const BBR_CYCLE: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
/// Bandwidth filter window, in packet-timed round trips.
const BBR_BW_WINDOW_ROUNDS: u64 = 10;
/// STARTUP exits once bandwidth has grown less than this factor across
/// [`BBR_FULL_BW_ROUNDS`] consecutive rounds.
const BBR_FULL_BW_THRESH: f64 = 1.25;
const BBR_FULL_BW_ROUNDS: u32 = 3;
/// Re-probe the minimum RTT when the estimate is older than this.
const BBR_MIN_RTT_EXPIRY: SimDuration = SimDuration::from_secs(10);
/// How long PROBE_RTT holds the window at the floor.
const BBR_PROBE_RTT_DURATION: SimDuration = SimDuration::from_millis(200);
/// The PROBE_RTT window floor: enough to keep delivery samples flowing.
const BBR_MIN_CWND: u64 = 4 * MSS64;

/// The BBRv1 state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BbrMode {
    /// Exponential search for the bottleneck: pacing gain 2/ln2 until
    /// the delivery rate stops growing.
    Startup,
    /// Drain the queue STARTUP built: pacing gain ln2/2 until inflight
    /// fits one BDP.
    Drain,
    /// Steady state: cycle the pacing gain around 1.0 to track the
    /// bottleneck as it moves.
    ProbeBw,
    /// Periodically shrink the window to the floor so the real
    /// propagation delay (not a self-inflicted standing queue) shows
    /// through to the min-RTT filter.
    ProbeRtt,
}

/// BBRv1 (simplified; deviations in DESIGN.md §4): a model-based
/// controller that estimates the bottleneck bandwidth (windowed max of
/// delivery-rate samples over 10 rounds) and the round-trip propagation
/// delay (windowed min RTT), paces at `gain × bw`, and caps inflight at
/// `cwnd_gain × BDP`. Packet loss does not shrink the model — recovery
/// conserves packets (ssthresh stays at `u64::MAX`, so the socket's PRR
/// runs in its conservative branch) and the window snaps back on exit.
#[derive(Debug)]
pub struct Bbr {
    mode: BbrMode,
    cwnd: u64,
    initial_cwnd: u64,
    pacing_gain: f64,
    cwnd_gain: f64,
    /// Windowed-max bandwidth filter keyed by packet-timed round.
    bw_filter: WindowedMaxBw<u64>,
    /// Packet-timed round trips: a round ends when a sample's
    /// `prior_delivered` reaches the `delivered` mark of the round start.
    round_count: u64,
    next_round_delivered: u64,
    /// Minimum RTT and when it was last refreshed (PROBE_RTT trigger).
    min_rtt: Option<SimDuration>,
    min_rtt_stamp: Timestamp,
    /// When the PROBE_RTT hold completes, once inflight reached the floor.
    probe_rtt_done_at: Option<Timestamp>,
    /// ProbeBW gain-cycle position and when the current phase started.
    cycle_index: usize,
    cycle_stamp: Timestamp,
    /// STARTUP full-pipe detection.
    full_bw: u64,
    full_bw_count: u32,
    filled_pipe: bool,
    /// Window saved at recovery/PROBE_RTT entry, restored on exit
    /// (Linux `bbr_save_cwnd`: a fresh save *assigns* — dropping any
    /// stale value from an earlier path epoch — while a nested save,
    /// recovery and PROBE_RTT interleaving, keeps the larger).
    prior_cwnd: u64,
    /// Whether a loss recovery is in progress (save/restore nesting).
    in_recovery: bool,
    /// (cwnd, prior_cwnd, in_recovery) before the last timeout, for the
    /// F-RTO undo.
    prior_frto: Option<(u64, u64, bool)>,
}

impl Bbr {
    /// Standard initial state.
    pub fn new() -> Self {
        Self::with_initial_window(INITIAL_WINDOW)
    }

    /// Initial state with an explicit initial window in bytes.
    pub fn with_initial_window(iw: u64) -> Self {
        let iw = iw.max(BBR_MIN_CWND);
        Bbr {
            mode: BbrMode::Startup,
            cwnd: iw,
            initial_cwnd: iw,
            pacing_gain: BBR_HIGH_GAIN,
            cwnd_gain: BBR_HIGH_GAIN,
            bw_filter: WindowedMaxBw::new(),
            round_count: 0,
            next_round_delivered: 0,
            min_rtt: None,
            min_rtt_stamp: Timestamp::ZERO,
            probe_rtt_done_at: None,
            cycle_index: 2, // a cruise phase; probing starts after one cycle
            cycle_stamp: Timestamp::ZERO,
            full_bw: 0,
            full_bw_count: 0,
            filled_pipe: false,
            prior_cwnd: 0,
            in_recovery: false,
            prior_frto: None,
        }
    }

    /// Windowed-max bottleneck bandwidth estimate, bytes/second.
    pub fn max_bw(&self) -> Option<u64> {
        self.bw_filter.max()
    }

    /// Bandwidth-delay product scaled by `gain`, when both estimates
    /// exist.
    fn bdp(&self, gain: f64) -> Option<u64> {
        let bw = self.max_bw()?;
        let rtt = self.min_rtt?;
        Some((bw as f64 * rtt.as_secs_f64() * gain) as u64)
    }

    /// The inflight cap the current mode targets.
    fn cwnd_target(&self) -> u64 {
        match self.bdp(self.cwnd_gain) {
            // Quantization headroom: never let the target round below
            // the floor that keeps ACKs flowing.
            Some(t) => t.max(BBR_MIN_CWND),
            None => self.initial_cwnd,
        }
    }

    fn update_bw_filter(&mut self, rs: &RateSample) {
        self.bw_filter
            .update(self.round_count, rs.bw, rs.is_app_limited);
        self.bw_filter
            .expire_before(self.round_count.saturating_sub(BBR_BW_WINDOW_ROUNDS));
    }

    fn check_full_pipe(&mut self, rs: &RateSample) {
        if self.filled_pipe || rs.is_app_limited {
            return;
        }
        let bw = self.max_bw().unwrap_or(0);
        if bw as f64 >= self.full_bw as f64 * BBR_FULL_BW_THRESH {
            self.full_bw = bw;
            self.full_bw_count = 0;
            return;
        }
        self.full_bw_count += 1;
        if self.full_bw_count >= BBR_FULL_BW_ROUNDS {
            self.filled_pipe = true;
        }
    }

    fn enter_probe_bw(&mut self, now: Timestamp) {
        self.mode = BbrMode::ProbeBw;
        self.cwnd_gain = BBR_CWND_GAIN;
        self.cycle_index = 2;
        self.pacing_gain = BBR_CYCLE[self.cycle_index];
        self.cycle_stamp = now;
    }

    fn advance_cycle(&mut self, inflight: u64, now: Timestamp) {
        let phase_len = self.min_rtt.unwrap_or(SimDuration::from_millis(100));
        let elapsed = now.saturating_duration_since(self.cycle_stamp);
        let advance = if self.pacing_gain > 1.0 {
            // Hold the probing phase a full min_rtt (building a queue
            // takes a round trip to show up).
            elapsed > phase_len
        } else if self.pacing_gain < 1.0 {
            // Leave the draining phase as soon as the probe's queue is
            // gone — or after a full round if it never was there.
            elapsed > phase_len || self.bdp(1.0).is_some_and(|bdp| inflight <= bdp)
        } else {
            elapsed > phase_len
        };
        if advance {
            self.cycle_index = (self.cycle_index + 1) % BBR_CYCLE.len();
            self.pacing_gain = BBR_CYCLE[self.cycle_index];
            self.cycle_stamp = now;
        }
    }

    /// Save the window before an episode (recovery or PROBE_RTT)
    /// collapses it. Fresh saves assign so a stale window from an
    /// earlier path epoch can never be resurrected; nested saves keep
    /// the larger so the outermost episode's window survives.
    fn save_cwnd(&mut self) {
        if !self.in_recovery && self.mode != BbrMode::ProbeRtt {
            self.prior_cwnd = self.cwnd;
        } else {
            self.prior_cwnd = self.prior_cwnd.max(self.cwnd);
        }
    }

    fn handle_probe_rtt(&mut self, inflight: u64, now: Timestamp) {
        match self.probe_rtt_done_at {
            None => {
                // Wait for inflight to actually reach the floor before
                // starting the hold — the point is measuring an empty
                // queue.
                if inflight <= BBR_MIN_CWND + MSS64 {
                    self.probe_rtt_done_at = Some(now + BBR_PROBE_RTT_DURATION);
                }
            }
            Some(done) if now >= done => {
                self.min_rtt_stamp = now;
                self.probe_rtt_done_at = None;
                self.cwnd = self.cwnd.max(self.prior_cwnd);
                if self.filled_pipe {
                    self.enter_probe_bw(now);
                } else {
                    self.mode = BbrMode::Startup;
                    self.pacing_gain = BBR_HIGH_GAIN;
                    self.cwnd_gain = BBR_HIGH_GAIN;
                }
            }
            Some(_) => {}
        }
    }
}

impl Default for Bbr {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Bbr {
    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    /// BBR has no ssthresh: recovery must not multiplicatively collapse
    /// the model-derived window. `u64::MAX` keeps the socket's PRR in
    /// its conservative branch (send ≈ what was delivered — packet
    /// conservation), which is BBRv1's loss response.
    fn ssthresh(&self) -> u64 {
        u64::MAX
    }

    fn on_ack(&mut self, bytes_acked: u64, _now: Timestamp, _srtt: Option<SimDuration>) {
        if self.mode == BbrMode::ProbeRtt {
            // The hold pins the window at the floor.
            self.cwnd = self.cwnd.min(BBR_MIN_CWND);
            return;
        }
        if self.bdp(1.0).is_some() {
            // Grow by what was delivered, capped at the mode's inflight
            // target (`cwnd_gain × BDP`). The cap applies in STARTUP too
            // (as in Linux): the target itself grows with the bandwidth
            // estimate, so growth stays exponential, but inflight never
            // runs a receive-window's worth past the model — without
            // this, startup bloats its own RTT and the (RTT-timed)
            // plateau detection crawls.
            self.cwnd = (self.cwnd + bytes_acked).min(self.cwnd_target());
        } else {
            // No model yet (first round): grow like slow start.
            self.cwnd += bytes_acked;
        }
        self.cwnd = self.cwnd.max(BBR_MIN_CWND);
    }

    fn on_fast_retransmit(&mut self, flight_size: u64, _now: Timestamp) {
        // Packet conservation while recovery runs; the window snaps back
        // on exit (loss does not change the path model). Conservation
        // can only shrink the window, never expand it.
        self.save_cwnd();
        self.in_recovery = true;
        self.cwnd = flight_size.min(self.cwnd).max(BBR_MIN_CWND);
    }

    fn on_timeout(&mut self, _flight_size: u64, _now: Timestamp) {
        self.prior_frto = Some((self.cwnd, self.prior_cwnd, self.in_recovery));
        self.save_cwnd();
        self.in_recovery = true;
        self.cwnd = MSS64.max(BBR_MIN_CWND.min(self.cwnd));
    }

    fn on_spurious_timeout(&mut self) {
        if let Some((cwnd, prior_cwnd, in_recovery)) = self.prior_frto.take() {
            self.cwnd = cwnd;
            self.prior_cwnd = prior_cwnd;
            self.in_recovery = in_recovery;
        }
    }

    fn on_recovery_exit(&mut self) {
        self.in_recovery = false;
        self.cwnd = self.cwnd.max(self.prior_cwnd);
        if self.mode == BbrMode::ProbeRtt {
            // A recovery ending mid-hold must not burst into the queue
            // PROBE_RTT is draining; the saved window comes back at the
            // hold's own exit.
            self.cwnd = self.cwnd.min(BBR_MIN_CWND);
        }
    }

    fn on_rate_sample(&mut self, rs: &RateSample, inflight: u64, now: Timestamp) {
        // Packet-timed round accounting: the sampled segment was sent
        // at or after the previous round's `delivered` mark → one full
        // window has round-tripped.
        let round_start = rs.prior_delivered >= self.next_round_delivered;
        if round_start {
            self.next_round_delivered = rs.delivered;
            self.round_count += 1;
        }
        self.update_bw_filter(rs);
        if round_start {
            self.check_full_pipe(rs);
        }

        // Min-RTT tracking, the Linux `bbr_update_min_rtt` rule. `<=`
        // (not `<`) so a steady path keeps refreshing the stamp and
        // PROBE_RTT only fires when the floor has genuinely not been
        // seen for the whole expiry window. On expiry the current
        // sample *replaces* the minimum even when larger — without
        // that, a path whose propagation delay rose would keep an
        // obsolete low min forever, permanently under-sizing the BDP
        // (and PROBE_RTT, which uses the pre-update expiry verdict
        // below, then re-measures the drained floor from scratch).
        let min_rtt_expired = self.min_rtt.is_some()
            && now.saturating_duration_since(self.min_rtt_stamp) > BBR_MIN_RTT_EXPIRY;
        if !rs.rtt.is_zero() && (self.min_rtt.is_none_or(|m| rs.rtt <= m) || min_rtt_expired) {
            self.min_rtt = Some(rs.rtt);
            self.min_rtt_stamp = now;
        }

        match self.mode {
            BbrMode::Startup => {
                if self.filled_pipe {
                    self.mode = BbrMode::Drain;
                    self.pacing_gain = 1.0 / BBR_HIGH_GAIN;
                    self.cwnd_gain = BBR_HIGH_GAIN;
                }
            }
            BbrMode::Drain => {
                if self.bdp(1.0).is_some_and(|bdp| inflight <= bdp) {
                    self.enter_probe_bw(now);
                }
            }
            BbrMode::ProbeBw => self.advance_cycle(inflight, now),
            BbrMode::ProbeRtt => {}
        }

        if self.mode != BbrMode::ProbeRtt && min_rtt_expired {
            self.save_cwnd();
            self.mode = BbrMode::ProbeRtt;
            self.pacing_gain = 1.0;
            self.cwnd_gain = 1.0;
            self.cwnd = BBR_MIN_CWND;
            self.probe_rtt_done_at = None;
        }
        if self.mode == BbrMode::ProbeRtt {
            self.handle_probe_rtt(inflight, now);
        }
    }

    fn pacing_rate(&self) -> Option<u64> {
        self.max_bw()
            .map(|bw| ((bw as f64 * self.pacing_gain) as u64).max(1))
    }

    fn in_slow_start(&self) -> bool {
        !self.filled_pipe
    }
}

/// Construct a boxed controller for the given algorithm with the given
/// initial window in bytes.
pub fn make_controller(alg: CcAlgorithm, initial_window: u64) -> Box<dyn CongestionControl> {
    match alg {
        CcAlgorithm::Reno => Box::new(Reno::with_initial_window(initial_window)),
        CcAlgorithm::Cubic => Box::new(Cubic::with_initial_window(initial_window)),
        CcAlgorithm::Bbr => Box::new(Bbr::with_initial_window(initial_window)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reno_slow_start_doubles_per_rtt() {
        let mut r = Reno::new();
        let w0 = r.cwnd();
        // Ack a full window: slow start should double it.
        r.on_ack(w0, Timestamp::from_millis(100), None);
        assert_eq!(r.cwnd(), 2 * w0);
        assert!(r.in_slow_start());
    }

    #[test]
    fn reno_congestion_avoidance_linear() {
        let mut r = Reno::new();
        r.on_fast_retransmit(100 * MSS64, Timestamp::from_millis(1));
        r.on_recovery_exit();
        let w = r.cwnd();
        assert!(!r.in_slow_start());
        // One full window of acks → +1 MSS.
        r.on_ack(w, Timestamp::from_millis(200), None);
        assert_eq!(r.cwnd(), w + MSS64);
    }

    #[test]
    fn reno_fast_retransmit_halves() {
        let mut r = Reno::new();
        let flight = 64 * MSS64;
        r.on_fast_retransmit(flight, Timestamp::from_millis(1));
        assert_eq!(r.ssthresh(), flight / 2);
        assert_eq!(r.cwnd(), flight / 2);
    }

    #[test]
    fn reno_timeout_collapses_to_one_mss() {
        let mut r = Reno::new();
        r.on_timeout(64 * MSS64, Timestamp::from_millis(1));
        assert_eq!(r.cwnd(), MSS64);
        assert_eq!(r.ssthresh(), 32 * MSS64);
        assert!(r.in_slow_start());
    }

    #[test]
    fn spurious_timeout_restores_window() {
        let mut r = Reno::new();
        r.on_fast_retransmit(100 * MSS64, Timestamp::from_millis(1));
        r.on_recovery_exit();
        let (cwnd, ssthresh) = (r.cwnd(), r.ssthresh());
        r.on_timeout(cwnd, Timestamp::from_millis(2));
        assert_eq!(r.cwnd(), MSS64);
        r.on_spurious_timeout();
        assert_eq!(r.cwnd(), cwnd);
        assert_eq!(r.ssthresh(), ssthresh);
        // A second undo without a new timeout is a no-op.
        r.on_spurious_timeout();
        assert_eq!(r.cwnd(), cwnd);

        let mut c = Cubic::new();
        c.cwnd = 80 * MSS64;
        c.ssthresh = 40 * MSS64;
        c.on_timeout(80 * MSS64, Timestamp::from_secs(1));
        assert_eq!(c.cwnd(), MSS64);
        c.on_spurious_timeout();
        assert_eq!(c.cwnd(), 80 * MSS64);
        assert_eq!(c.ssthresh(), 40 * MSS64);
    }

    #[test]
    fn reno_min_ssthresh_floor() {
        let mut r = Reno::new();
        r.on_timeout(MSS64, Timestamp::from_millis(1));
        assert_eq!(r.ssthresh(), 2 * MSS64);
    }

    #[test]
    fn cubic_reduces_by_beta() {
        let mut c = Cubic::new();
        let w0 = c.cwnd();
        c.on_fast_retransmit(w0, Timestamp::from_millis(1));
        assert_eq!(c.cwnd(), (w0 as f64 * CUBIC_BETA) as u64);
    }

    #[test]
    fn cubic_grows_toward_wmax_after_loss() {
        let mut c = Cubic::new();
        // Build a large window, lose, then grow: should stay below ~Wmax
        // early and approach it over time.
        c.cwnd = 100 * MSS64;
        c.ssthresh = 50 * MSS64;
        c.on_fast_retransmit(100 * MSS64, Timestamp::from_secs(1));
        c.on_recovery_exit();
        let after_loss = c.cwnd();
        let mut now = Timestamp::from_secs(1);
        // Stay within the concave region (t < K ≈ 4.2 s for Wmax = 100 MSS):
        // the window should climb back toward Wmax but not overshoot it.
        for _ in 0..30 {
            now += SimDuration::from_millis(100);
            c.on_ack(10 * MSS64, now, Some(SimDuration::from_millis(100)));
        }
        assert!(c.cwnd() > after_loss, "cubic window should recover");
        assert!(
            c.cwnd() as f64 <= 100.0 * MSS as f64 * 1.05,
            "cubic should plateau near Wmax in the concave region: {}",
            c.cwnd()
        );
    }

    #[test]
    fn cubic_timeout_resets_window() {
        let mut c = Cubic::new();
        c.cwnd = 50 * MSS64;
        c.on_timeout(50 * MSS64, Timestamp::from_secs(2));
        assert_eq!(c.cwnd(), MSS64);
        assert!(c.in_slow_start());
    }

    #[test]
    fn factory_produces_all() {
        let r = make_controller(CcAlgorithm::Reno, INITIAL_WINDOW);
        let c = make_controller(CcAlgorithm::Cubic, INITIAL_WINDOW);
        let b = make_controller(CcAlgorithm::Bbr, INITIAL_WINDOW);
        assert_eq!(r.cwnd(), INITIAL_WINDOW);
        assert_eq!(c.cwnd(), INITIAL_WINDOW);
        assert_eq!(b.cwnd(), INITIAL_WINDOW);
    }

    /// A synthetic rate sample: `bw` bytes/s, `rtt` ms, with the round
    /// bookkeeping driven by (prior_delivered, delivered).
    fn rs(bw: u64, rtt_ms: u64, prior_delivered: u64, delivered: u64) -> RateSample {
        RateSample {
            bw,
            delivered_delta: delivered - prior_delivered,
            interval: SimDuration::from_millis(rtt_ms.max(1)),
            delivered,
            prior_delivered,
            rtt: SimDuration::from_millis(rtt_ms),
            min_rtt: Some(SimDuration::from_millis(rtt_ms)),
            is_app_limited: false,
        }
    }

    /// Feed `n` rounds of samples at a fixed bw/rtt, advancing the
    /// delivered counter a window per round so every sample starts a
    /// round.
    fn feed_rounds(
        b: &mut Bbr,
        n: u64,
        bw: u64,
        rtt_ms: u64,
        now_ms: &mut u64,
        delivered: &mut u64,
    ) {
        for _ in 0..n {
            let prior = *delivered;
            *delivered += bw * rtt_ms / 1000;
            *now_ms += rtt_ms;
            b.on_rate_sample(
                &rs(bw, rtt_ms, prior, *delivered),
                bw * rtt_ms / 1000,
                Timestamp::from_millis(*now_ms),
            );
        }
    }

    #[test]
    fn bbr_startup_exits_on_bw_plateau_then_drains_to_probe_bw() {
        let mut b = Bbr::new();
        assert!(b.in_slow_start());
        let (mut now_ms, mut delivered) = (0u64, 0u64);
        // Growing bandwidth: stays in startup.
        feed_rounds(&mut b, 1, 100_000, 100, &mut now_ms, &mut delivered);
        feed_rounds(&mut b, 1, 200_000, 100, &mut now_ms, &mut delivered);
        feed_rounds(&mut b, 1, 400_000, 100, &mut now_ms, &mut delivered);
        assert_eq!(b.mode, BbrMode::Startup);
        // Plateau at 400 kB/s: three rounds without 25% growth → drain.
        feed_rounds(&mut b, 3, 400_000, 100, &mut now_ms, &mut delivered);
        assert!(b.filled_pipe, "plateau must fill the pipe");
        assert_eq!(b.mode, BbrMode::Drain);
        assert!(b.pacing_gain < 1.0, "drain pacing gain {}", b.pacing_gain);
        assert!(!b.in_slow_start());
        // One more sample with inflight ≤ BDP (40 kB) finishes draining.
        let prior = delivered;
        delivered += 1000;
        now_ms += 100;
        b.on_rate_sample(
            &rs(400_000, 100, prior, delivered),
            10_000,
            Timestamp::from_millis(now_ms),
        );
        assert_eq!(b.mode, BbrMode::ProbeBw);
        assert_eq!(b.pacing_gain, 1.0, "probe-bw starts in a cruise phase");
        // Pacing rate follows the bandwidth model.
        assert_eq!(b.pacing_rate(), Some(400_000));
        // cwnd target = 2 × BDP = 80 kB.
        assert_eq!(b.cwnd_target(), 80_000);
    }

    #[test]
    fn bbr_probe_bw_cycles_gains() {
        let mut b = Bbr::new();
        let (mut now_ms, mut delivered) = (0u64, 0u64);
        feed_rounds(&mut b, 2, 400_000, 100, &mut now_ms, &mut delivered);
        feed_rounds(&mut b, 4, 400_000, 100, &mut now_ms, &mut delivered);
        assert_eq!(b.mode, BbrMode::ProbeBw);
        // Walk at least one full gain cycle; every configured gain must
        // appear.
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..20 {
            feed_rounds(&mut b, 1, 400_000, 100, &mut now_ms, &mut delivered);
            seen.insert((b.pacing_gain * 100.0) as u64);
        }
        assert!(seen.contains(&125), "probing gain seen: {seen:?}");
        assert!(seen.contains(&75), "draining gain seen: {seen:?}");
        assert!(seen.contains(&100), "cruise gain seen: {seen:?}");
    }

    #[test]
    fn bbr_probe_rtt_after_min_rtt_expiry_and_recovery() {
        let mut b = Bbr::new();
        let (mut now_ms, mut delivered) = (0u64, 0u64);
        feed_rounds(&mut b, 6, 400_000, 100, &mut now_ms, &mut delivered);
        assert_eq!(b.mode, BbrMode::ProbeBw);
        let cwnd_before = b.cwnd();
        // RTTs above the recorded minimum for > 10 s: the stamp goes
        // stale and PROBE_RTT engages, pinning the window at the floor.
        feed_rounds(&mut b, 101, 400_000, 105, &mut now_ms, &mut delivered);
        assert_eq!(b.mode, BbrMode::ProbeRtt);
        assert_eq!(b.cwnd(), BBR_MIN_CWND);
        b.on_ack(100_000, Timestamp::from_millis(now_ms), None);
        assert_eq!(b.cwnd(), BBR_MIN_CWND, "acks must not regrow the hold");
        // Inflight reaches the floor → 200 ms hold → restore and resume.
        let prior = delivered;
        delivered += 1000;
        now_ms += 100;
        b.on_rate_sample(
            &rs(400_000, 100, prior, delivered),
            BBR_MIN_CWND,
            Timestamp::from_millis(now_ms),
        );
        assert!(b.probe_rtt_done_at.is_some());
        let prior = delivered;
        delivered += 1000;
        now_ms += 250;
        b.on_rate_sample(
            &rs(400_000, 100, prior, delivered),
            BBR_MIN_CWND,
            Timestamp::from_millis(now_ms),
        );
        assert_eq!(b.mode, BbrMode::ProbeBw);
        assert!(b.cwnd() >= cwnd_before.min(b.cwnd_target()));
    }

    #[test]
    fn bbr_loss_conserves_and_restores() {
        let mut b = Bbr::new();
        let (mut now_ms, mut delivered) = (0u64, 0u64);
        feed_rounds(&mut b, 6, 400_000, 100, &mut now_ms, &mut delivered);
        // Grow the window to the model target (2 × BDP = 80 kB).
        b.on_ack(200_000, Timestamp::from_millis(now_ms), None);
        let cwnd = b.cwnd();
        assert_eq!(cwnd, 80_000);
        b.on_fast_retransmit(30_000, Timestamp::from_millis(now_ms));
        assert_eq!(b.cwnd(), 30_000, "packet conservation during recovery");
        assert_eq!(b.ssthresh(), u64::MAX, "no multiplicative collapse");
        b.on_recovery_exit();
        assert_eq!(b.cwnd(), cwnd, "window restored after recovery");
        // Timeout collapses, F-RTO undo restores.
        b.on_timeout(30_000, Timestamp::from_millis(now_ms));
        assert!(b.cwnd() <= BBR_MIN_CWND);
        b.on_spurious_timeout();
        assert_eq!(b.cwnd(), cwnd);
    }

    #[test]
    fn bbr_recovery_interleaved_with_probe_rtt_keeps_the_saved_window() {
        // Recovery starts, PROBE_RTT engages mid-recovery, recovery
        // exits mid-hold: the exit must not burst past the hold's
        // 4-segment floor, and the hold's own exit must still restore
        // the window saved before either episode began.
        let mut b = Bbr::new();
        let (mut now_ms, mut delivered) = (0u64, 0u64);
        feed_rounds(&mut b, 6, 400_000, 100, &mut now_ms, &mut delivered);
        b.on_ack(200_000, Timestamp::from_millis(now_ms), None);
        let cwnd = b.cwnd();
        assert_eq!(cwnd, 80_000);
        b.on_fast_retransmit(30_000, Timestamp::from_millis(now_ms));
        // Min-RTT goes stale during recovery → PROBE_RTT engages.
        feed_rounds(&mut b, 101, 400_000, 105, &mut now_ms, &mut delivered);
        assert_eq!(b.mode, BbrMode::ProbeRtt);
        // Recovery completes mid-hold: the window stays at the floor.
        b.on_recovery_exit();
        assert_eq!(b.cwnd(), BBR_MIN_CWND, "no burst into the hold");
        // Hold runs to completion; the pre-episode window comes back.
        let prior = delivered;
        delivered += 1000;
        now_ms += 100;
        b.on_rate_sample(
            &rs(400_000, 100, prior, delivered),
            BBR_MIN_CWND,
            Timestamp::from_millis(now_ms),
        );
        let prior = delivered;
        delivered += 1000;
        now_ms += 250;
        b.on_rate_sample(
            &rs(400_000, 100, prior, delivered),
            BBR_MIN_CWND,
            Timestamp::from_millis(now_ms),
        );
        assert_ne!(b.mode, BbrMode::ProbeRtt);
        assert_eq!(b.cwnd(), cwnd, "saved window restored at hold exit");
    }

    #[test]
    fn bbr_min_rtt_tracks_a_rising_path_after_expiry() {
        // Propagation delay rises mid-connection: once the 10 s filter
        // expires the higher sample must *replace* the obsolete minimum
        // (the Linux rule) — otherwise BDP stays under-sized forever.
        let mut b = Bbr::new();
        let (mut now_ms, mut delivered) = (0u64, 0u64);
        feed_rounds(&mut b, 3, 400_000, 50, &mut now_ms, &mut delivered);
        assert_eq!(b.min_rtt, Some(SimDuration::from_millis(50)));
        // The path now takes 150 ms; before expiry the min holds...
        feed_rounds(&mut b, 10, 400_000, 150, &mut now_ms, &mut delivered);
        assert_eq!(b.min_rtt, Some(SimDuration::from_millis(50)));
        // ...and once the 10 s window passes, the estimate follows the
        // path up.
        feed_rounds(&mut b, 60, 400_000, 150, &mut now_ms, &mut delivered);
        assert_eq!(b.min_rtt, Some(SimDuration::from_millis(150)));
    }

    #[test]
    fn bbr_app_limited_samples_never_lower_bw() {
        let mut b = Bbr::new();
        let (mut now_ms, mut delivered) = (0u64, 0u64);
        feed_rounds(&mut b, 2, 400_000, 100, &mut now_ms, &mut delivered);
        assert_eq!(b.max_bw(), Some(400_000));
        let prior = delivered;
        delivered += 100;
        now_ms += 100;
        let mut s = rs(1_000, 100, prior, delivered);
        s.is_app_limited = true;
        b.on_rate_sample(&s, 100, Timestamp::from_millis(now_ms));
        assert_eq!(b.max_bw(), Some(400_000), "app-limited trickle ignored");
    }
}
