//! The TCP connection state machine.
//!
//! A deliberately complete-but-simplified TCP: three-way handshake, byte
//! stream with MSS segmentation, cumulative ACKs, out-of-order reassembly,
//! NewReno fast retransmit/fast recovery, RFC 6298 RTO with Karn's rule,
//! receiver flow control, graceful FIN close in both directions, and RST.
//! With [`TcpConfig::recovery`] at the [`Sack`](RecoveryTier::Sack) tier
//! (negotiated on the SYN exchange, default off) the NewReno go-back-N
//! recovery is replaced by selective retransmission: RFC 2018 SACK blocks
//! from the receiver, an RFC 6675 scoreboard with pipe accounting /
//! `IsLost` / rescue retransmission on the sender, RFC 3042 limited
//! transmit, and RFC 6937-style proportional rate reduction while in
//! recovery. The [`RackTlp`](RecoveryTier::RackTlp) tier layers the
//! modern time-based machinery on top: RACK delivery-time loss inference
//! with an adaptive reordering window, a Tail Loss Probe timer so pure
//! tail loss no longer waits for the RTO, and F-RTO spurious-timeout
//! detection that undoes the window collapse (and the RTO backoff) when
//! a timeout turns out to have been mere delay (see [`rack`](super::rack)
//! and DESIGN.md §3).
//! Simplifications (documented in DESIGN.md): 64-bit sequence space (no
//! wraparound), no Nagle (browsers disable it), unbounded send
//! buffer (page-load workloads are bounded by construction), immediate ACKs
//! by default (delayed ACK available as a config flag).
//!
//! Re-entrancy discipline: methods on [`TcpInner`] never invoke application
//! callbacks while `self` is borrowed. All entry points go through
//! [`drive`], which performs socket work, releases the borrow, sends the
//! produced packets, and only then fires application events.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use bytes::{Bytes, BytesMut};
use mm_metrics::{FlowSample, MetricsHandle};
use mm_sim::{SimDuration, Simulator, Timer, TimerMux, Timestamp};
use mm_trace::{Span, SpanHandle, SpanKind, NO_RESOURCE};

use crate::addr::SocketAddr;
use crate::packet::{Packet, SackBlock, SackOption, TcpFlags, TcpSegment, MSS};
use crate::sink::SinkRef;
use crate::tcp::cc::{make_controller, CcAlgorithm, CongestionControl};
use crate::tcp::pacing::{Pacer, PACING_GAIN_CA, PACING_GAIN_SS};
use crate::tcp::rack::{FrtoState, RackState, TLP_SLACK};
use crate::tcp::rate::{RateEstimator, TxRecord};
use crate::tcp::rtt::RttEstimator;
use crate::tcp::sack::{ReceiverSack, Scoreboard, DUP_THRESH};

/// The loss-recovery tier a socket runs (its sophistication ladder).
///
/// `Reno` and `Sack` reproduce the previous boolean knob exactly;
/// `RackTlp` implies SACK (RACK infers delivery times from the
/// scoreboard) and adds the time-based machinery. The default stays
/// `Reno` so every pre-existing baseline is byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryTier {
    /// NewReno go-back-N: dup-ack fast retransmit, one hole per RTT.
    #[default]
    Reno,
    /// RFC 2018/6675 selective retransmission with PRR and limited
    /// transmit (the former `TcpConfig::sack = true`).
    Sack,
    /// SACK plus RACK-TLP (RFC 8985) time-based loss detection, a Tail
    /// Loss Probe timer, and F-RTO (RFC 5682) spurious-RTO undo.
    RackTlp,
}

impl RecoveryTier {
    /// Whether this tier negotiates SACK on the handshake.
    pub fn uses_sack(self) -> bool {
        !matches!(self, RecoveryTier::Reno)
    }

    /// Whether this tier runs the RACK-TLP/F-RTO machinery.
    pub fn uses_rack(self) -> bool {
        matches!(self, RecoveryTier::RackTlp)
    }
}

/// Socket configuration.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Congestion-control algorithm.
    pub cc: CcAlgorithm,
    /// Receive window advertised to the peer, bytes.
    pub recv_window: u64,
    /// Initial retransmission timeout before any RTT sample exists.
    /// RFC 6298 suggests 1 s; we default to the conservative 3 s of
    /// RFC 1122 / pre-2011 Linux, because synchronized page-load bursts
    /// through deep droptail queues routinely inflate early RTTs past 1 s
    /// and spurious go-back-N retransmission storms would dominate.
    pub initial_rto: SimDuration,
    /// Floor on the RTO (Linux: 200 ms).
    pub min_rto: SimDuration,
    /// Delay ACKs for this long, acking every second segment immediately.
    /// `None` (default) acks every data segment at once.
    pub delayed_ack: Option<SimDuration>,
    /// Maximum consecutive RTOs before the connection is reset.
    pub max_retries: u32,
    /// Initial congestion window in segments; `None` = IW10 (RFC 6928,
    /// the era's Linux default). Raised by servers deploying multiplexed
    /// protocols — Google's SPDY servers ran IW32 so one connection could
    /// do the work of a browser's six.
    pub initial_cwnd_segments: Option<u32>,
    /// Loss-recovery tier. `Sack` and `RackTlp` offer selective
    /// acknowledgments on the handshake and, when both ends agree,
    /// replace go-back-N loss recovery with RFC 6675 selective
    /// retransmission (plus limited transmit and proportional rate
    /// reduction); `RackTlp` additionally runs RACK-TLP time-based loss
    /// detection and F-RTO. Default `Reno`: the NewReno baseline stays
    /// byte-identical.
    pub recovery: RecoveryTier,
    /// Pace new-data transmissions instead of bursting the whole window:
    /// segments release at `pacing_gain × estimated_bw` (the delivery-
    /// rate estimator's windowed max, or the controller's own model when
    /// it has one — see [`CongestionControl::pacing_rate`]). Default off;
    /// every pre-pacing baseline is byte-identical. `CcAlgorithm::Bbr`
    /// paces regardless of this flag — an unpaced BBR would burst the
    /// very queues its model exists to avoid.
    pub pacing: bool,
    /// Observability sink. `None` (default) disables all metric and
    /// flow-trace emission: the instrumented sites reduce to one
    /// `Option` branch each, and the simulation is byte-identical to a
    /// build without the hook. Sinks observe only — they must never
    /// schedule timers or send packets (see `mm_metrics::MetricsSink`).
    pub metrics: Option<MetricsHandle>,
    /// Causal-span sink. `None` (default) disables span emission. The
    /// *initiator* side of a connection emits its lifecycle spans —
    /// handshake (`ConnSetup`), lifetime (`Conn`), and reassembly-gap
    /// waits (`HolWait`, the transport-level head-of-line signal:
    /// structurally absent on an in-order link, present under loss).
    /// Like `metrics`, sinks observe only; the simulation is
    /// byte-identical with the hook off.
    pub span: Option<SpanHandle>,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            cc: CcAlgorithm::default(),
            recv_window: 1 << 20, // 1 MiB
            initial_rto: SimDuration::from_secs(3),
            min_rto: SimDuration::from_millis(200),
            delayed_ack: None,
            max_retries: 15,
            initial_cwnd_segments: None,
            recovery: RecoveryTier::default(),
            pacing: false,
            metrics: None,
            span: None,
        }
    }
}

impl TcpConfig {
    /// Start a builder from the defaults. The builder is the documented
    /// construction path: the struct's fields stay public for
    /// struct-update compatibility, but new code should chain setters so
    /// field growth stops churning every construction site.
    ///
    /// ```
    /// use mm_net::{CcAlgorithm, RecoveryTier, TcpConfig};
    /// let config = TcpConfig::builder()
    ///     .cc(CcAlgorithm::Bbr)
    ///     .recovery(RecoveryTier::RackTlp)
    ///     .pacing(true)
    ///     .build();
    /// assert_eq!(config.cc, CcAlgorithm::Bbr);
    /// ```
    pub fn builder() -> TcpConfigBuilder {
        TcpConfigBuilder {
            config: TcpConfig::default(),
        }
    }

    /// Continue building from an existing configuration (the ergonomic
    /// replacement for `TcpConfig { field: x, ..base }` updates).
    pub fn to_builder(&self) -> TcpConfigBuilder {
        TcpConfigBuilder {
            config: self.clone(),
        }
    }
}

/// Chained-setter builder for [`TcpConfig`]; see [`TcpConfig::builder`].
#[derive(Debug, Clone)]
pub struct TcpConfigBuilder {
    config: TcpConfig,
}

impl TcpConfigBuilder {
    /// Congestion-control algorithm.
    pub fn cc(mut self, cc: CcAlgorithm) -> Self {
        self.config.cc = cc;
        self
    }

    /// Loss-recovery tier.
    pub fn recovery(mut self, recovery: RecoveryTier) -> Self {
        self.config.recovery = recovery;
        self
    }

    /// Pace new-data transmissions (see [`TcpConfig::pacing`]).
    pub fn pacing(mut self, pacing: bool) -> Self {
        self.config.pacing = pacing;
        self
    }

    /// Receive window advertised to the peer, bytes.
    pub fn recv_window(mut self, bytes: u64) -> Self {
        self.config.recv_window = bytes;
        self
    }

    /// Initial RTO before any RTT sample exists.
    pub fn initial_rto(mut self, rto: SimDuration) -> Self {
        self.config.initial_rto = rto;
        self
    }

    /// Floor on the RTO.
    pub fn min_rto(mut self, rto: SimDuration) -> Self {
        self.config.min_rto = rto;
        self
    }

    /// Delay ACKs for this long, acking every second segment immediately.
    pub fn delayed_ack(mut self, delay: SimDuration) -> Self {
        self.config.delayed_ack = Some(delay);
        self
    }

    /// Maximum consecutive RTOs before the connection is reset.
    pub fn max_retries(mut self, retries: u32) -> Self {
        self.config.max_retries = retries;
        self
    }

    /// Initial congestion window in segments (None = IW10).
    pub fn initial_cwnd_segments(mut self, segments: u32) -> Self {
        self.config.initial_cwnd_segments = Some(segments);
        self
    }

    /// Install an observability sink (see [`TcpConfig::metrics`]).
    pub fn metrics(mut self, sink: MetricsHandle) -> Self {
        self.config.metrics = Some(sink);
        self
    }

    /// Install a causal-span sink (see [`TcpConfig::span`]).
    pub fn span(mut self, sink: SpanHandle) -> Self {
        self.config.span = Some(sink);
        self
    }

    /// Finish building.
    pub fn build(self) -> TcpConfig {
        self.config
    }
}

/// Connection states (RFC 793 subset; LISTEN lives on the host, TIME_WAIT
/// collapses to CLOSED — the simulation has no stray duplicate segments
/// from earlier incarnations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    SynSent,
    SynReceived,
    Established,
    FinWait1,
    FinWait2,
    CloseWait,
    LastAck,
    Closing,
    Closed,
}

/// Events surfaced to the application owning a socket.
#[derive(Debug, Clone)]
pub enum SocketEvent {
    /// Handshake completed; the socket is writable.
    Connected,
    /// In-order payload bytes arrived.
    Data(Bytes),
    /// The peer closed its direction (EOF after any buffered data).
    PeerClosed,
    /// The connection was reset (RST or retry exhaustion).
    Reset,
    /// Every byte the app queued has been handed to the wire: the send
    /// queue is empty (bytes may still be in flight awaiting ACK). The
    /// simulated analogue of an epoll writability edge — lets an
    /// application self-clock its writes to the connection's actual
    /// throughput instead of dumping everything into the unbounded send
    /// buffer up front (which would freeze its scheduling decisions at
    /// enqueue time).
    SendQueueDrained,
}

/// Application-side observer of socket events.
pub trait SocketApp {
    /// Called with each event; `handle` can be used to send/close.
    fn on_event(&self, sim: &mut Simulator, handle: &TcpHandle, event: SocketEvent);
}

/// Retransmission-queue entry.
struct RetxEntry {
    segment: TcpSegment,
    /// Last transmission time. Refreshed on retransmission only under
    /// RACK (which keys loss inference off last-transmit times); the
    /// classic tiers keep the original time, whose only reader is the
    /// Karn-gated RTT sampler.
    sent_at: Timestamp,
    /// First transmission time — never refreshed, and therefore monotone
    /// in sequence order, which is what lets RACK's detection scan stop
    /// at the first entry provably sent after the delivery clock.
    first_sent_at: Timestamp,
    retransmitted: bool,
    /// Whether this entry currently counts toward the incremental pipe
    /// estimate (see [`TcpInner::pipe`]).
    in_pipe: bool,
    /// Delivery-rate bookkeeping stamped at first transmission
    /// (draft-cheng per-packet state; see [`crate::tcp::rate`]).
    tx: TxRecord,
}

/// Full connection state. Public API lives on [`TcpHandle`].
pub struct TcpInner {
    pub(crate) local: SocketAddr,
    pub(crate) remote: SocketAddr,
    state: TcpState,
    config: TcpConfig,

    // --- send side ---
    /// First unacknowledged sequence number.
    snd_una: u64,
    /// Next sequence number to send.
    snd_nxt: u64,
    /// Peer's advertised window.
    snd_wnd: u64,
    /// App data accepted but not yet segmented, FIFO of chunks.
    send_queue: Vec<Bytes>,
    /// Bytes queued in `send_queue`.
    send_queued_bytes: u64,
    /// Transmitted, unacknowledged segments keyed by starting seq.
    retx: BTreeMap<u64, RetxEntry>,
    /// FIN requested by the app; sent once the queue drains.
    fin_pending: bool,
    /// Sequence number of our FIN, once sent.
    fin_seq: Option<u64>,
    cc: Box<dyn CongestionControl>,
    rtt: RttEstimator,
    dup_acks: u32,
    /// High-water mark for recovery (snd_nxt at loss time) — NewReno fast
    /// recovery, SACK recovery, and RTO recovery all key off it.
    recovery_point: Option<u64>,
    consecutive_timeouts: u32,
    /// SACK negotiated on this connection (config requested it and the
    /// peer's SYN/SYN-ACK carried SACK-permitted).
    sack_enabled: bool,
    /// Sender-side scoreboard of sacked coverage above `snd_una`.
    scoreboard: Scoreboard,
    /// Proportional rate reduction (RFC 6937) state, valid in recovery:
    /// bytes reported delivered (acked + newly sacked) since entry,
    /// bytes sent since entry, and the flight size at entry.
    prr_delivered: u64,
    prr_out: u64,
    recover_fs: u64,
    /// One rescue retransmission (RFC 6675 NextSeg rule 4) per recovery.
    rescue_done: bool,
    /// RFC 6675 §5.1: after a retransmission timeout every unsacked
    /// segment below the then-`snd_nxt` is presumed lost (an RTO means
    /// the tail generated no SACKs at all — pure tail loss — so the
    /// scoreboard alone can never flag it). Segments below this mark
    /// leave the pipe estimate until retransmitted.
    lost_point: u64,
    /// Incrementally maintained RFC 6675 pipe estimate: the sum of
    /// `seq_len` over retx entries with `in_pipe` set. Kept equal to the
    /// O(n) definitional walk ([`pipe_walk`](TcpInner::pipe_walk)) at
    /// every transition — cross-checked by a debug assertion and the
    /// property tests.
    pipe_count: u64,
    /// Loss-frontier watermark: every unsacked retx entry starting below
    /// it has been examined for (and marked with) scoreboard-implied
    /// loss. Valid because `IsLost` is monotone downward in sequence
    /// space — anything below a lost segment is lost or sacked — so the
    /// per-ack scan resumes here instead of rewalking the queue.
    loss_frontier: u64,
    /// RACK delivery-time state (active only at the `RackTlp` tier once
    /// SACK negotiates).
    rack: RackState,
    /// Starting seqs of entries RACK has deemed lost. Marks move with
    /// partial-ack trims and are dropped when the segment is delivered
    /// (which also widens the adaptive reordering window — the mark was
    /// wrong).
    rack_lost: BTreeSet<u64>,
    /// Earliest pending RACK reordering-window expiry, consumed by
    /// `manage_timers` (timer arming needs the simulator, which segment
    /// processing does not hold).
    reo_deadline: Option<Timestamp>,
    /// Lexicographic high-water (last-sent time, end seq) over every
    /// RACK loss mark, reported in flow samples so a conformance audit
    /// can check marks stay behind the delivery clock. `None` until the
    /// first mark.
    rack_mark_high: Option<(Timestamp, u64)>,
    /// Set when the delivery clock advanced since the last detection
    /// pass; RACK verdicts can only change when it does (or a recorded
    /// `reo_deadline` passes), so detection is skipped otherwise.
    rack_dirty: bool,
    /// One Tail Loss Probe per flight: set when the probe fires, cleared
    /// by the next delivery of anything.
    tlp_fired: bool,
    /// The currently *desired* probe deadline. The armed timer lags it
    /// (it is not re-armed on every flush — that would flood the event
    /// heap with dead generations); the fire handler re-arms itself
    /// forward until the desired deadline is actually due.
    tlp_deadline: Option<Timestamp>,
    /// F-RTO spurious-timeout detection phase.
    frto: FrtoState,
    /// `lost_point` before the RTO that armed F-RTO, restored when the
    /// timeout is declared spurious (the §5.1 mass-marking was wrong).
    prior_lost_point: u64,
    /// Scratch buffer for newly sacked ranges (avoids per-ack allocation).
    sack_delta: Vec<SackBlock>,
    /// Delivery-rate estimator (always maintained — pure bookkeeping —
    /// but only consumed when pacing or a model-based controller runs).
    rate: RateEstimator,
    /// The most recently *sent* segment this ack delivered: the packet
    /// whose stamped [`TxRecord`] closes into this ack's rate sample
    /// (draft-cheng picks exactly this one). Retransmitted entries are
    /// excluded — which copy the ack covers is Karn-ambiguous.
    rate_candidate: Option<(Timestamp, u64, TxRecord)>,
    /// Pacing release clock (active only when `pacing_active()`).
    pacer: Pacer,
    /// Release instant the last paced transmission stopped at, consumed
    /// by `manage_timers` (the same simulator-at-arms-length pattern as
    /// `reo_deadline`).
    pace_deadline: Option<Timestamp>,

    // --- receive side ---
    /// Next in-order byte expected from the peer.
    rcv_nxt: u64,
    /// Out-of-order segments awaiting the gap to fill.
    ooo: BTreeMap<u64, Bytes>,
    /// SACK block generator over the out-of-order queue.
    rcv_sack: ReceiverSack,
    /// Peer FIN's sequence number, if received out of order.
    peer_fin_seq: Option<u64>,
    /// Segments since last ACK (delayed-ACK accounting).
    unacked_segments: u32,

    // --- plumbing ---
    egress: SinkRef,
    packet_ids: Rc<std::cell::Cell<u64>>,
    rto_timer: Timer,
    /// Set when new data was acked: RFC 6298 (5.3) restarts the RTO timer
    /// so it measures time since the *latest* forward progress, not since
    /// the oldest transmission — otherwise deep queues cause spurious
    /// timeouts.
    rearm_rto: bool,
    ack_timer: Timer,
    /// Tail Loss Probe timer (RackTlp tier only).
    tlp_timer: Timer,
    /// RACK reordering-window timer (RackTlp tier only).
    reo_timer: Timer,
    /// Pacing release timer (pacing only).
    pacing_timer: Timer,
    app: Option<Rc<dyn SocketApp>>,
    /// Events waiting to be dispatched once the borrow is released.
    pending_events: Vec<SocketEvent>,
    /// Statistics.
    pub(crate) stats: TcpStats,
    /// Flow id in the sink's tracer, when `config.metrics` carries one.
    trace_flow: Option<u64>,
    /// Connect-call time on the *initiator* side; `Some` until the
    /// `Conn` lifetime span is emitted at teardown. Accept-side sockets
    /// keep `None` so only one endpoint describes each connection.
    conn_t0: Option<Timestamp>,
    /// Start of the current receive-side reassembly gap: set when data
    /// first parks in `ooo`, cleared (emitting a `HolWait` span) when
    /// the hole fills and the queue drains.
    hole_since: Option<Timestamp>,
    /// Most recent segment-arrival time — the close timestamp teardown
    /// stamps on the `Conn` span (teardown sites have no clock).
    last_seen: Option<Timestamp>,
    /// Last time [`TcpInner::metric_sample`] emitted, for throttling
    /// the routine per-ack samples.
    last_metric_sample: std::cell::Cell<Option<Timestamp>>,
}

/// Per-connection counters (exported for tests and diagnostics).
#[derive(Debug, Clone, Copy, Default)]
pub struct TcpStats {
    pub segments_sent: u64,
    pub segments_received: u64,
    pub bytes_sent: u64,
    pub bytes_received: u64,
    pub retransmissions: u64,
    pub timeouts: u64,
    pub fast_retransmits: u64,
    /// Fast-retransmit recoveries entered through the SACK path.
    pub sack_recoveries: u64,
    /// New-data segments sent by limited transmit (RFC 3042).
    pub limited_transmits: u64,
    /// Tail Loss Probes fired (RackTlp tier).
    pub tlp_probes: u64,
    /// Segments marked lost by RACK's delivery-time inference.
    pub rack_loss_marks: u64,
    /// Retransmission timeouts proven spurious by F-RTO (and undone).
    pub spurious_rtos: u64,
    /// Delivery-rate samples fed to the congestion controller.
    pub rate_samples: u64,
    /// Transmission opportunities deferred by the pacer (pacing only).
    pub pacing_waits: u64,
    /// High-water mark of the retransmission queue (entries). Pure
    /// bookkeeping for soak-mode memory assertions: a leak in queue
    /// trimming shows up as this growing with connection lifetime.
    pub max_retx_queue: u64,
    /// High-water mark of the SACK scoreboard (ranges) — the other
    /// per-connection structure whose growth soak tests bound.
    pub max_scoreboard_ranges: u64,
}

/// Shared handle to a TCP connection.
#[derive(Clone)]
pub struct TcpHandle {
    pub(crate) inner: Rc<RefCell<TcpInner>>,
}

impl TcpInner {
    fn new(
        local: SocketAddr,
        remote: SocketAddr,
        state: TcpState,
        config: TcpConfig,
        egress: SinkRef,
        packet_ids: Rc<std::cell::Cell<u64>>,
        timer_mux: Option<&TimerMux>,
    ) -> Self {
        let cc = make_controller(
            config.cc,
            match config.initial_cwnd_segments {
                Some(segments) => segments as u64 * crate::packet::MSS as u64,
                None => crate::tcp::cc::INITIAL_WINDOW,
            },
        );
        let rtt = RttEstimator::new(config.initial_rto, config.min_rto);
        // All five per-socket timers share the host's mux when one is
        // installed — one dispatcher slot in the global heap per host
        // instead of a dead closure per (re)arm per socket.
        let new_timer = || match timer_mux {
            Some(mux) => Timer::in_mux(mux),
            None => Timer::new(),
        };
        // Register with the flow tracer (if the sink carries one) before
        // any samples can fire; the id is `None` when tracing is off so
        // the sample path short-circuits.
        let trace_flow = config
            .metrics
            .as_ref()
            .and_then(|m| m.flow_open(&format!("{local}-{remote}")));
        TcpInner {
            local,
            remote,
            state,
            config,
            snd_una: 0,
            snd_nxt: 0,
            snd_wnd: u64::MAX,
            send_queue: Vec::new(),
            send_queued_bytes: 0,
            retx: BTreeMap::new(),
            fin_pending: false,
            fin_seq: None,
            cc,
            rtt,
            dup_acks: 0,
            recovery_point: None,
            consecutive_timeouts: 0,
            sack_enabled: false,
            scoreboard: Scoreboard::new(),
            prr_delivered: 0,
            prr_out: 0,
            recover_fs: 0,
            rescue_done: false,
            lost_point: 0,
            pipe_count: 0,
            loss_frontier: 0,
            rack: RackState::new(),
            rack_lost: BTreeSet::new(),
            reo_deadline: None,
            rack_mark_high: None,
            rack_dirty: false,
            tlp_fired: false,
            tlp_deadline: None,
            frto: FrtoState::Inactive,
            prior_lost_point: 0,
            sack_delta: Vec::new(),
            rate: RateEstimator::new(),
            rate_candidate: None,
            pacer: Pacer::new(),
            pace_deadline: None,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            rcv_sack: ReceiverSack::new(),
            peer_fin_seq: None,
            unacked_segments: 0,
            egress,
            packet_ids,
            rto_timer: new_timer(),
            rearm_rto: false,
            ack_timer: new_timer(),
            tlp_timer: new_timer(),
            reo_timer: new_timer(),
            pacing_timer: new_timer(),
            app: None,
            pending_events: Vec::new(),
            stats: TcpStats::default(),
            trace_flow,
            conn_t0: None,
            hole_since: None,
            last_seen: None,
            last_metric_sample: std::cell::Cell::new(None),
        }
    }

    /// Span-layer connection id: the initiator's local address packed
    /// as `ip << 16 | port`. The same id is computable from the remote
    /// address on the server side, which is how `mmpath` joins server
    /// think-time spans to browser-side connections without URL tricks.
    fn span_conn_id(&self) -> u64 {
        ((self.local.ip.0 as u64) << 16) | self.local.port as u64
    }

    /// Emit one connection-scoped span. A single branch when off.
    fn span_emit(&self, kind: SpanKind, t0: Timestamp, t1: Timestamp, detail: &str) {
        if let Some(sp) = &self.config.span {
            let id = sp.next_id();
            sp.record(Span {
                load: 0, // stamped by the recording buffer
                id,
                parent: 0,
                kind,
                t0_ns: t0.as_nanos(),
                t1_ns: t1.as_nanos(),
                res: NO_RESOURCE,
                conn: self.span_conn_id(),
                url: String::new(),
                detail: detail.to_string(),
            });
        }
    }

    /// Bump a sink counter by one. A single branch when metrics are off.
    fn metric_count(&self, name: &'static str) {
        if let Some(m) = &self.config.metrics {
            m.counter_add(name, 1);
        }
    }

    /// Emit the congestion-state observability signals: cwnd/srtt gauges
    /// and (when tracing is on) a per-flow time-series sample. Called at
    /// ack processing and retransmission events; sinks only observe, so
    /// this can never perturb the simulation. Routine (ack-path) calls
    /// are throttled to one per simulated millisecond per socket so a
    /// live sink stays off the per-ack hot path; retransmission events
    /// bypass the throttle (`force`) — they are exactly the samples the
    /// flow tracer must never drop.
    fn metric_sample(&self, now: Timestamp) {
        self.metric_sample_inner(now, true, "", &[])
    }

    fn metric_sample_routine(&self, now: Timestamp) {
        self.metric_sample_inner(now, false, "", &[])
    }

    /// Event-tagged sample for conformance auditing (`"tx"` after a
    /// new-data burst, `"sack"` on a SACK-carrying ack). Only emitted
    /// when a flow tracer/auditor is attached, so plain gauge-only
    /// metrics runs keep their seed sampling cadence.
    fn metric_sample_event(&self, now: Timestamp, event: &'static str, sack: &[SackBlock]) {
        if self.trace_flow.is_some() {
            self.metric_sample_inner(now, true, event, sack);
        }
    }

    fn metric_sample_inner(
        &self,
        now: Timestamp,
        force: bool,
        event: &'static str,
        sack: &[SackBlock],
    ) {
        let Some(m) = &self.config.metrics else {
            return;
        };
        const ROUTINE_INTERVAL: SimDuration = SimDuration::from_millis(1);
        if let (false, Some(last)) = (force, self.last_metric_sample.get()) {
            if now < last + ROUTINE_INTERVAL {
                return;
            }
        }
        self.last_metric_sample.set(Some(now));
        m.gauge_set("tcp_cwnd_bytes", self.cc.cwnd() as f64);
        let srtt_s = self
            .rtt
            .srtt()
            .map(|srtt| srtt.as_secs_f64())
            .unwrap_or(0.0);
        if srtt_s > 0.0 {
            m.gauge_set("tcp_srtt_seconds", srtt_s);
        }
        if let Some(flow) = self.trace_flow {
            let (rack_clock_ns, rack_clock_end) = self
                .rack
                .clock()
                .map(|(t, end)| (t.as_nanos(), end))
                .unwrap_or((0, 0));
            let (rack_mark_ns, rack_mark_end) = self
                .rack_mark_high
                .map(|(t, end)| (t.as_nanos(), end))
                .unwrap_or((0, 0));
            m.flow_sample(
                flow,
                &FlowSample {
                    t_s: now.as_secs_f64(),
                    cwnd: self.cc.cwnd(),
                    ssthresh: self.cc.ssthresh(),
                    srtt_s,
                    pacing_rate: self.current_pacing_rate().unwrap_or(0) as f64,
                    bytes_in_flight: self.flight_size(),
                    delivered: self.rate.delivered(),
                    retx_count: self.stats.retransmissions,
                    state: if self.recovery_point.is_none() {
                        "open"
                    } else if self.consecutive_timeouts > 0 {
                        "loss"
                    } else {
                        "recovery"
                    },
                    event,
                    snd_nxt: self.snd_nxt,
                    snd_una: self.snd_una,
                    rcv_nxt: self.rcv_nxt,
                    rwnd: self.snd_wnd,
                    mss: crate::packet::MSS as u64,
                    pipe: self.pipe_count,
                    // O(n), but only taken on the traced/audited path.
                    pipe_walk: self.pipe_walk(),
                    rack_clock_ns,
                    rack_clock_end,
                    rack_mark_ns,
                    rack_mark_end,
                    pacing_excess: self.pacer.max_excess_bytes(),
                    sack_blocks: sack.iter().map(|b| (b.start, b.end)).collect(),
                },
            );
        }
    }

    fn next_packet_id(&self) -> u64 {
        let id = self.packet_ids.get();
        self.packet_ids.set(id + 1);
        id
    }

    fn advertised_window(&self) -> u64 {
        // The model's application consumes data immediately, so the full
        // receive window is always open.
        self.config.recv_window
    }

    fn make_packet(&mut self, flags: TcpFlags, seq: u64, payload: Bytes) -> Packet {
        self.stats.segments_sent += 1;
        self.stats.bytes_sent += payload.len() as u64;
        // SACK-permitted rides on the handshake: a client SYN offers it
        // whenever the config asks; a SYN-ACK confirms only if the peer
        // offered too (sack_enabled is settled before the SYN-ACK).
        let sack = SackOption {
            permitted: flags.syn
                && if flags.ack {
                    self.sack_enabled
                } else {
                    self.config.recovery.uses_sack()
                },
            blocks: Vec::new(),
        };
        Packet {
            id: self.next_packet_id(),
            src: self.local,
            dst: self.remote,
            segment: TcpSegment {
                flags,
                seq,
                ack: self.rcv_nxt,
                window: self.advertised_window(),
                sack,
                payload,
            },
            corrupted: false,
        }
    }

    /// Build a pure ACK, attaching SACK blocks while the reassembly queue
    /// holds out-of-order data (RFC 2018: every ACK sent during a hole
    /// reports the blocks).
    fn make_ack_packet(&mut self, now: Timestamp) -> Packet {
        let mut pkt = self.make_packet(TcpFlags::ACK, self.snd_nxt, Bytes::new());
        if self.sack_enabled && !self.ooo.is_empty() {
            let blocks = self.rcv_sack.blocks(
                self.ooo.iter().map(|(&seq, data)| (seq, data.len() as u64)),
                self.rcv_nxt,
            );
            if !blocks.is_empty() {
                self.metric_sample_event(now, "sack", &blocks);
            }
            pkt.segment.sack.blocks = blocks;
        }
        pkt
    }

    /// Bytes in flight.
    fn flight_size(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// Effective send window.
    fn send_window(&self) -> u64 {
        self.cc.cwnd().min(self.snd_wnd)
    }

    /// Pull up to `max` bytes off the send queue as one payload.
    fn dequeue_payload(&mut self, max: usize) -> Bytes {
        let mut out = BytesMut::with_capacity(max.min(self.send_queued_bytes as usize));
        while out.len() < max && !self.send_queue.is_empty() {
            let need = max - out.len();
            let head = &mut self.send_queue[0];
            if head.len() <= need {
                out.extend_from_slice(head);
                self.send_queue.remove(0);
            } else {
                out.extend_from_slice(&head.slice(..need));
                *head = head.slice(need..);
            }
        }
        self.send_queued_bytes -= out.len() as u64;
        out.freeze()
    }

    /// Transmit as much new data as the window allows — released one
    /// serialization interval at a time when pacing is active; returns
    /// packets.
    fn transmit_new(&mut self, now: Timestamp, out: &mut Vec<Packet>) {
        use crate::packet::MSS;
        let had_backlog = self.send_queued_bytes > 0;
        let out_before = out.len();
        // One rate lookup per transmission opportunity; `None` means
        // unpaced (pacing off, or no bandwidth estimate yet to pace
        // against) and the loop below is byte-identical to its
        // pre-pacing self.
        let pace_rate = self.current_pacing_rate();
        self.pace_deadline = None;
        // App-limited marking must precede the sends it covers (Linux
        // stamps `tp->app_limited` in the write path, before
        // transmission): when the queued data cannot fill the available
        // window, every segment of this burst measures the app, not the
        // path — including the first one, which would otherwise be
        // stamped un-limited and "validate" a model built from a
        // trickle.
        if had_backlog
            && self.send_queued_bytes < self.send_window().saturating_sub(self.flight_size())
        {
            self.rate
                .on_app_limited(self.flight_size() + self.send_queued_bytes);
        }
        loop {
            let window = self.send_window();
            let flight = self.flight_size();
            if flight >= window {
                break;
            }
            let can_send = (window - flight).min(MSS as u64) as usize;
            let has_data = self.send_queued_bytes > 0;
            let send_fin_now =
                self.fin_pending && self.send_queued_bytes == 0 && self.fin_seq.is_none();
            if !has_data && !send_fin_now {
                // Out of application data with window to spare: every
                // sample taken until this flight drains measures the app,
                // not the path (draft-cheng app-limited marking).
                self.rate.on_app_limited(self.flight_size());
                break;
            }
            if has_data && pace_rate.is_some() && !self.pacer.can_send(now) {
                // The window permits more, the pacer does not (yet):
                // stop here and let the pacing timer resume the loop at
                // the release instant. The window gate above ran first,
                // so pacing can only ever delay what cwnd permits.
                self.stats.pacing_waits += 1;
                self.pace_deadline = Some(self.pacer.ready_at());
                break;
            }
            if has_data {
                let payload = self.dequeue_payload(can_send);
                if payload.is_empty() {
                    break;
                }
                let seq = self.snd_nxt;
                // Piggyback FIN if this is the last data and a close is
                // pending and the whole remainder fit in this segment.
                let fin_here =
                    self.fin_pending && self.send_queued_bytes == 0 && self.fin_seq.is_none();
                let flags = if fin_here {
                    TcpFlags::FIN_ACK
                } else {
                    TcpFlags::ACK
                };
                let pkt = self.make_packet(flags, seq, payload);
                let seg = pkt.segment.clone();
                self.snd_nxt = seg.seq_end();
                if fin_here {
                    self.fin_seq = Some(seg.seq_end() - 1);
                    self.enter_fin_state();
                }
                let len = seg.seq_len();
                self.insert_retx(seq, seg, now);
                if let Some(rate) = pace_rate {
                    self.pacer.on_sent(now, len, rate);
                }
                out.push(pkt);
            } else {
                // Bare FIN.
                let seq = self.snd_nxt;
                let pkt = self.make_packet(TcpFlags::FIN_ACK, seq, Bytes::new());
                let seg = pkt.segment.clone();
                self.snd_nxt += 1;
                self.fin_seq = Some(seq);
                self.enter_fin_state();
                self.insert_retx(seq, seg, now);
                out.push(pkt);
                break;
            }
        }
        if had_backlog && self.send_queued_bytes == 0 {
            self.pending_events.push(SocketEvent::SendQueueDrained);
        }
        if out.len() > out_before {
            // Window-gated sends only: limited transmit, PRR and TLP
            // have their own budgets and may legitimately pass cwnd, so
            // the flight≤cwnd conformance check keys off this tag.
            self.metric_sample_event(now, "tx", &[]);
        }
    }

    fn enter_fin_state(&mut self) {
        self.state = match self.state {
            TcpState::Established | TcpState::SynReceived => TcpState::FinWait1,
            TcpState::CloseWait => TcpState::LastAck,
            s => s,
        };
    }

    /// Retransmit the earliest unacknowledged segment.
    fn retransmit_head(&mut self, now: Timestamp, out: &mut Vec<Packet>) {
        let Some((&seq, _)) = self.retx.iter().next() else {
            return;
        };
        self.retransmit_seq(seq, now, out);
    }

    /// Retransmit the retx entry starting at `seq`. Returns the sequence
    /// space re-sent (0 if there is no such entry).
    fn retransmit_seq(&mut self, seq: u64, now: Timestamp, out: &mut Vec<Packet>) -> u64 {
        let rack_active = self.rack_active();
        let Some(entry) = self.retx.get_mut(&seq) else {
            return 0;
        };
        entry.retransmitted = true;
        if rack_active {
            // RACK keys loss inference off *last* transmission times.
            entry.sent_at = now;
        }
        let seg = entry.segment.clone();
        let seq_len = seg.seq_len();
        self.stats.retransmissions += 1;
        self.metric_count("tcp_retransmits_total");
        let mut flags = seg.flags;
        flags.ack = self.state != TcpState::SynSent;
        let pkt = Packet {
            id: {
                let id = self.packet_ids.get();
                self.packet_ids.set(id + 1);
                id
            },
            src: self.local,
            dst: self.remote,
            segment: TcpSegment {
                flags,
                seq,
                ack: if flags.ack { self.rcv_nxt } else { 0 },
                window: self.advertised_window(),
                sack: SackOption {
                    permitted: flags.syn
                        && if flags.ack {
                            self.sack_enabled
                        } else {
                            self.config.recovery.uses_sack()
                        },
                    blocks: Vec::new(),
                },
                payload: seg.payload,
            },
            corrupted: false,
        };
        self.stats.segments_sent += 1;
        out.push(pkt);
        // A retransmission re-enters the network: it counts toward pipe
        // regardless of any loss presumption about the original. The
        // refresh must precede the sample, or observers see the
        // retransmitted flag flipped with the pipe counter still stale.
        self.refresh_pipe_entry(seq);
        self.metric_sample(now);
        seq_len
    }

    /// RFC 6675 pipe: an estimate of the bytes still in the network. Per
    /// outstanding segment: sacked coverage contributes nothing, lost and
    /// never-retransmitted bytes contribute nothing, everything else
    /// counts once. (RFC 6675 counts a retransmitted octet twice if its
    /// original is also presumed present; here the original of a
    /// retransmitted segment is presumed gone — that presumption is why
    /// it was retransmitted — so each octet counts at most once and pipe
    /// never exceeds the outstanding sequence space, an invariant the
    /// property tests pin down.)
    ///
    /// Maintained incrementally: every transition that changes a
    /// segment's contribution (transmit, retransmit, ack, trim, new sack
    /// coverage, loss marking) adjusts `pipe_count` through
    /// [`refresh_pipe_entry`](TcpInner::refresh_pipe_entry), so reading
    /// the estimate is O(1) instead of a per-ack walk of the
    /// retransmission queue (measured: the dominant host-CPU cost of
    /// SACK recovery on the lossy-transfer bench).
    fn pipe(&self) -> u64 {
        debug_assert_eq!(
            self.pipe_count,
            self.pipe_walk(),
            "incremental pipe diverged from the definitional walk"
        );
        self.pipe_count
    }

    /// The definitional O(n) pipe walk the incremental counter must
    /// always agree with (debug assertions and property tests).
    fn pipe_walk(&self) -> u64 {
        self.retx
            .iter()
            .filter(|&(&seq, e)| self.entry_counts(seq, e.segment.seq_end(), e.retransmitted))
            .map(|(_, e)| e.segment.seq_len())
            .sum()
    }

    /// The single source of truth for a segment's pipe contribution:
    /// sacked coverage contributes nothing; otherwise a segment counts
    /// unless it is presumed lost and was never retransmitted. Every
    /// reader — the definitional walk, the per-entry refresh, and the
    /// bulk rebuild — goes through here, so the incremental counter and
    /// the walk cannot drift apart by a one-sided edit.
    fn entry_counts(&self, seq: u64, end: u64, retransmitted: bool) -> bool {
        if self.scoreboard.is_sacked(seq, end) {
            return false;
        }
        retransmitted || !self.entry_is_lost(seq, end)
    }

    /// Insert a freshly transmitted segment into the retransmission
    /// queue. A new transmission always counts toward pipe: nothing
    /// above it can be sacked and no loss evidence about it can exist.
    fn insert_retx(&mut self, seq: u64, segment: TcpSegment, sent_at: Timestamp) {
        // Delivery-rate stamp (the flight-empty check must precede the
        // insert: an idle restart resets the sample window).
        let tx = self.rate.on_send(sent_at, self.retx.is_empty());
        self.pipe_count += segment.seq_len();
        self.retx.insert(
            seq,
            RetxEntry {
                segment,
                sent_at,
                first_sent_at: sent_at,
                retransmitted: false,
                in_pipe: true,
                tx,
            },
        );
        self.stats.max_retx_queue = self.stats.max_retx_queue.max(self.retx.len() as u64);
    }

    /// Remove a retx entry, keeping the pipe counter in step.
    fn remove_retx(&mut self, seq: u64) -> Option<RetxEntry> {
        let e = self.retx.remove(&seq)?;
        if e.in_pipe {
            self.pipe_count -= e.segment.seq_len();
        }
        Some(e)
    }

    /// Recompute one entry's pipe contribution after a state transition
    /// (sacked, marked lost, retransmitted, trimmed) and adjust the
    /// counter by the difference.
    fn refresh_pipe_entry(&mut self, seq: u64) {
        let Some(e) = self.retx.get(&seq) else {
            return;
        };
        let end = e.segment.seq_end();
        let len = e.segment.seq_len();
        let retransmitted = e.retransmitted;
        let was = e.in_pipe;
        let counts = self.entry_counts(seq, end, retransmitted);
        if counts != was {
            if counts {
                self.pipe_count += len;
            } else {
                self.pipe_count -= len;
            }
            self.retx.get_mut(&seq).unwrap().in_pipe = counts;
        }
    }

    /// Rebuild the counter from the definitional walk after a bulk state
    /// change (RTO mass-marking, F-RTO undo) where per-entry deltas
    /// would touch every entry anyway.
    fn rebuild_pipe(&mut self) {
        let mut total = 0;
        let keys: Vec<u64> = self.retx.keys().copied().collect();
        for seq in keys {
            let e = &self.retx[&seq];
            let end = e.segment.seq_end();
            let len = e.segment.seq_len();
            let counts = self.entry_counts(seq, end, e.retransmitted);
            if counts {
                total += len;
            }
            self.retx.get_mut(&seq).unwrap().in_pipe = counts;
        }
        self.pipe_count = total;
    }

    /// Fold newly sacked ranges into the per-entry bookkeeping: refresh
    /// pipe contributions, feed RACK's delivery clock from now-sacked
    /// segments, and retire disproven RACK loss marks (widening the
    /// reordering window — the segment arrived after all). Work is
    /// bounded by the newly covered byte count, not queue length.
    fn apply_sack_delta(&mut self, delta: &[SackBlock], now: Timestamp) {
        let rack_active = self.rack_active();
        let frto_armed = rack_active && !matches!(self.frto, FrtoState::Inactive);
        for d in delta {
            // Entries are disjoint; the one containing d.start may begin
            // below it.
            let first = self
                .retx
                .range(..=d.start)
                .next_back()
                .map(|(&s, _)| s)
                .unwrap_or(d.start);
            let keys: Vec<u64> = self.retx.range(first..d.end).map(|(&s, _)| s).collect();
            for seq in keys {
                let (end, sent_at, retransmitted, tx) = {
                    let e = &self.retx[&seq];
                    (e.segment.seq_end(), e.sent_at, e.retransmitted, e.tx)
                };
                if self.scoreboard.is_sacked(seq, end) {
                    if !retransmitted {
                        // Unambiguous delivery: candidate for this ack's
                        // rate sample, and a windowed min-RTT input.
                        self.note_delivered_record(sent_at, end, tx);
                        self.rate
                            .on_rtt(now.saturating_duration_since(sent_at), now);
                    }
                    if rack_active {
                        // Same ambiguity guard as the cumulative-ack
                        // path: mid-F-RTO, retransmitted deliveries
                        // don't advance the delivery clock.
                        if !(frto_armed && retransmitted) {
                            self.rack_dirty |=
                                self.rack.on_delivered(sent_at, end, retransmitted, now);
                        }
                        if self.rack_lost.remove(&seq) && !retransmitted {
                            // The "lost" original was merely reordered.
                            self.rack.on_spurious_mark();
                        }
                    }
                }
                self.refresh_pipe_entry(seq);
            }
        }
        if !delta.is_empty() {
            self.advance_loss_frontier();
        }
    }

    /// March the loss frontier upward over entries the scoreboard now
    /// proves lost, refreshing their pipe contributions. Stops at the
    /// first unsacked entry that is not lost: `IsLost` is monotone
    /// downward, so nothing above it can be lost either.
    fn advance_loss_frontier(&mut self) {
        loop {
            let Some((&seq, e)) = self.retx.range(self.loss_frontier..).next() else {
                return;
            };
            let end = e.segment.seq_end();
            if self.scoreboard.is_sacked(seq, end) {
                self.loss_frontier = end;
                continue;
            }
            if self.entry_is_lost(seq, end) {
                self.loss_frontier = end;
                self.refresh_pipe_entry(seq);
                continue;
            }
            return;
        }
    }

    /// Is the outstanding segment `[seq, end)` presumed lost — by the
    /// scoreboard's DupThresh evidence, by a timeout having declared
    /// everything below `lost_point` gone, or by a RACK delivery-time
    /// mark?
    fn entry_is_lost(&self, seq: u64, end: u64) -> bool {
        if seq < self.lost_point && !self.scoreboard.is_sacked(seq, end) {
            return true;
        }
        if self.rack_lost.contains(&seq) {
            return true;
        }
        self.scoreboard.is_lost(seq, end)
    }

    /// Whether the RACK-TLP machinery runs on this connection: the
    /// `RackTlp` tier was configured *and* SACK negotiated (RACK infers
    /// delivery order from sacked coverage).
    fn rack_active(&self) -> bool {
        self.sack_enabled && self.config.recovery.uses_rack()
    }

    /// Whether new-data transmissions go through the pacer: the config
    /// asked, or the controller is BBR (whose model assumes paced
    /// release — an unpaced BBR would burst the very queues it exists
    /// to avoid).
    fn pacing_active(&self) -> bool {
        self.config.pacing || matches!(self.config.cc, CcAlgorithm::Bbr)
    }

    /// The rate (bytes/second) the pacer releases at right now, if any:
    /// the controller's own model when it has one, else `gain ×
    /// bw_estimate` from the delivery-rate estimator ([`PACING_GAIN_SS`]
    /// in slow start, [`PACING_GAIN_CA`] after — the Linux defaults).
    /// `None` (pacing off, or no estimate yet) means unpaced.
    ///
    /// Floored at one initial window per smoothed RTT: pacing exists to
    /// spread bursts, never to throttle a connection below what a fresh
    /// unpaced sender would move in one round trip. Without the floor,
    /// the *request* direction of an application-limited connection is
    /// poisoned by its own model — every sample is a tiny app-limited
    /// trickle, the windowed-max bandwidth settles at a few kB/s, and a
    /// burst of requests then leaks out one per "serialization" delay of
    /// that garbage rate, multiplying page load time (Linux expresses
    /// the same intent through its IW/srtt initial pacing rate).
    ///
    /// The floor is deliberately *unconditional* — a known deviation
    /// from Linux, which replaces the initial rate once the model has
    /// samples. Replay connections are perpetually app-limited, their
    /// windowed estimates decay between object bursts, and a
    /// lift-once-validated variant re-poisons the request path the
    /// moment one full-window write validates a model that later
    /// expires (measured: the page-load regression came straight back).
    /// The cost is bounded: on a path whose BDP is below one initial
    /// window, BBR's below-rate phases (DRAIN, PROBE_RTT) cannot pace
    /// under the floor, leaving at most ~one IW of standing queue
    /// (DESIGN.md §4; the cwnd floor of PROBE_RTT still caps inflight).
    fn current_pacing_rate(&self) -> Option<u64> {
        if !self.pacing_active() {
            return None;
        }
        let model = self.cc.pacing_rate().or_else(|| {
            let bw = self.rate.bw_estimate()?;
            let gain = if self.cc.in_slow_start() {
                PACING_GAIN_SS
            } else {
                PACING_GAIN_CA
            };
            Some((bw as f64 * gain) as u64)
        })?;
        let iw = match self.config.initial_cwnd_segments {
            Some(segments) => segments as u64 * MSS as u64,
            None => crate::tcp::cc::INITIAL_WINDOW,
        };
        let floor = self
            .rtt
            .srtt()
            .filter(|s| !s.is_zero())
            .map(|s| ((iw as u128 * 1_000_000_000) / s.as_nanos() as u128) as u64)
            .unwrap_or(0);
        Some(model.max(floor).max(1))
    }

    /// Remember the most recently *sent* never-retransmitted segment
    /// this ack delivered — the one whose stamped record closes into the
    /// ack's rate sample.
    fn note_delivered_record(&mut self, sent_at: Timestamp, end_seq: u64, tx: TxRecord) {
        let newer = match self.rate_candidate {
            None => true,
            Some((ts, end, _)) => sent_at > ts || (sent_at == ts && end_seq > end),
        };
        if newer {
            self.rate_candidate = Some((sent_at, end_seq, tx));
        }
    }

    /// Close this ack's delivery bookkeeping into a rate sample and feed
    /// it to the congestion controller. `delivered_bytes` is the ack's
    /// DeliveredData (cumulative advance, minus sacked coverage it
    /// swallowed, plus newly sacked bytes — the same quantity PRR
    /// consumes).
    fn emit_rate_sample(&mut self, delivered_bytes: u64, now: Timestamp) {
        self.rate.on_delivery(delivered_bytes, now);
        if let Some((sent_at, _end, tx)) = self.rate_candidate.take() {
            if let Some(rs) = self.rate.sample(&tx, sent_at, now) {
                self.stats.rate_samples += 1;
                // The incremental pipe estimate (not raw flight): what
                // the model should compare against BDP is bytes believed
                // in the network, not sequence space covering losses.
                let inflight = self.pipe_count;
                self.cc.on_rate_sample(&rs, inflight, now);
            }
        }
    }

    /// Is the first outstanding segment presumed lost? (RFC 6675's
    /// recovery trigger alongside the DupThresh rule.)
    fn head_is_lost(&self) -> bool {
        match self.retx.iter().next() {
            Some((&seq, e)) => self.entry_is_lost(seq, e.segment.seq_end()),
            None => false,
        }
    }

    /// RACK loss detection (RFC 8985): mark outstanding segments lost
    /// when the delivery clock has overtaken them by more than the
    /// reordering window, and remember the earliest future expiry so the
    /// reordering timer can re-check (armed by `manage_timers`). No-op
    /// outside the RackTlp tier.
    fn rack_detect(&mut self, now: Timestamp) {
        if !self.rack_active() || !self.rack.has_delivery() {
            return;
        }
        // Verdicts change only when the delivery clock advances or a
        // previously recorded reordering-window deadline passes; skip
        // the queue scan otherwise (it would be a per-ack O(n) walk —
        // the same hot-path cost the incremental pipe removed).
        let deadline_due = self.reo_deadline.is_some_and(|d| d <= now);
        if !self.rack_dirty && !deadline_due {
            return;
        }
        self.rack_dirty = false;
        let Some((clock_ts, clock_end)) = self.rack.clock() else {
            return;
        };
        let mut marks: Vec<(u64, Timestamp, u64)> = Vec::new();
        let mut next: Option<Timestamp> = None;
        for (&seq, e) in &self.retx {
            let end = e.segment.seq_end();
            // First-transmission (time, end) pairs are monotone in
            // sequence order: once an entry's first transmission is at
            // or past the delivery clock (same tiebreak as
            // `sent_after`), so is everything above it — no further
            // candidates. This keeps the common in-order case O(1): the
            // head's first transmission already postdates the newest
            // delivery, including in zero-latency worlds where whole
            // windows share one timestamp.
            if e.first_sent_at > clock_ts || (e.first_sent_at == clock_ts && end >= clock_end) {
                break;
            }
            if self.rack_lost.contains(&seq)
                || self.scoreboard.is_sacked(seq, end)
                || !self.rack.sent_after(e.sent_at, end)
            {
                continue;
            }
            let deadline = self.rack.lost_deadline(e.sent_at);
            if deadline <= now {
                marks.push((seq, e.sent_at, end));
            } else {
                next = Some(match next {
                    Some(d) => d.min(deadline),
                    None => deadline,
                });
            }
        }
        for (seq, sent_at, end) in marks {
            self.rack_lost.insert(seq);
            self.stats.rack_loss_marks += 1;
            if self.rack_mark_high.is_none_or(|high| high < (sent_at, end)) {
                self.rack_mark_high = Some((sent_at, end));
            }
            self.refresh_pipe_entry(seq);
        }
        self.reo_deadline = next;
    }

    /// F-RTO verdict: the timeout was spurious — the flight was delayed,
    /// not lost. Undo everything the timeout did: restore the congestion
    /// window, drop the RTO backoff (the long-unwired
    /// `RttEstimator::reset_backoff`, finally behind validated forward
    /// progress), retract the §5.1 mass loss-marking, and leave recovery.
    fn declare_spurious_rto(&mut self) {
        self.stats.spurious_rtos += 1;
        self.metric_count("tcp_spurious_rto_undo_total");
        self.frto = FrtoState::Inactive;
        self.recovery_point = None;
        self.dup_acks = 0;
        self.cc.on_spurious_timeout();
        self.rtt.reset_backoff();
        self.lost_point = self.prior_lost_point;
        // The mass-marking is retracted wholesale, so per-entry deltas
        // would touch everything anyway; rebuild and rescan.
        self.rebuild_pipe();
        self.loss_frontier = 0;
        self.advance_loss_frontier();
    }

    /// Enter SACK loss recovery: multiplicative reduction via the
    /// congestion controller, PRR state reset, and the immediate fast
    /// retransmission of the first hole.
    fn enter_sack_recovery(&mut self, now: Timestamp, out: &mut Vec<Packet>) {
        self.stats.fast_retransmits += 1;
        self.stats.sack_recoveries += 1;
        self.metric_count("tcp_fast_retransmits_total");
        self.recovery_point = Some(self.snd_nxt);
        let flight = self.flight_size();
        self.cc.on_sack_recovery(flight, now);
        self.prr_delivered = 0;
        self.prr_out = 0;
        self.recover_fs = flight.max(1);
        self.rescue_done = false;
        // The entry retransmission is not PRR-gated (it is the classic
        // fast retransmit); everything after goes through sack_transmit.
        let sent = self.sack_send_next(now, out);
        self.prr_out += sent;
    }

    /// Proportional-rate-reduction send loop (RFC 6937), run on every ACK
    /// while in SACK recovery: compute the send budget from delivered
    /// bytes, then emit RFC 6675 NextSeg choices until it runs out.
    fn sack_transmit(&mut self, now: Timestamp, out: &mut Vec<Packet>) {
        if self.recovery_point.is_none() {
            return;
        }
        // The budget is computed ONCE per ack (RFC 6937's sndcnt), not
        // per segment — recomputing the slow-start bound inside the send
        // loop would hand every ack an unbounded burst.
        let pipe = self.pipe();
        let ssthresh = self.cc.ssthresh();
        let mut budget = if pipe > ssthresh {
            // Proportional phase: delivery rate scaled by the target
            // reduction, ssthresh / recover_fs.
            (self.prr_delivered * ssthresh)
                .div_ceil(self.recover_fs)
                .saturating_sub(self.prr_out)
        } else {
            // Slow-start reduction bound: at most one extra MSS over
            // what was delivered, never overfilling past ssthresh.
            (ssthresh - pipe).min(self.prr_delivered.saturating_sub(self.prr_out) + MSS as u64)
        };
        while budget > 0 {
            let sent = self.sack_send_next(now, out);
            if sent == 0 {
                return;
            }
            self.prr_out += sent;
            budget = budget.saturating_sub(sent);
        }
    }

    /// RFC 6675 NextSeg: pick and transmit the next segment during SACK
    /// recovery. Returns the sequence space sent (0 = nothing eligible).
    ///
    /// 1. the first unsacked, unretransmitted segment presumed lost;
    /// 2. otherwise new, never-sent data;
    /// 3. otherwise one rescue retransmission per recovery of the highest
    ///    unsacked segment, so a lost *retransmission* of the final hole
    ///    cannot strand the connection until RTO. (RFC 6675's rule 3 —
    ///    blind retransmission of in-flight, not-yet-lost segments — is
    ///    deliberately omitted, as in Linux: under AQM it turns every
    ///    recovery into spurious duplicate traffic on a loaded link.)
    fn sack_send_next(&mut self, now: Timestamp, out: &mut Vec<Packet>) -> u64 {
        let Some(rp) = self.recovery_point else {
            return 0;
        };
        // Rule 1.
        let mut rule1: Option<u64> = None;
        for (&seq, e) in self.retx.range(..rp) {
            if e.retransmitted {
                continue;
            }
            let end = e.segment.seq_end();
            if self.scoreboard.is_sacked(seq, end) {
                continue;
            }
            if self.entry_is_lost(seq, end) {
                rule1 = Some(seq);
                break;
            }
        }
        if let Some(seq) = rule1 {
            return self.retransmit_seq(seq, now, out);
        }
        // Rule 2 (gated by the peer's advertised window; PRR owns the
        // congestion budget).
        if self.send_queued_bytes > 0 && self.flight_size() + MSS as u64 <= self.snd_wnd {
            return self.send_new_segment(now, out);
        }
        // Rescue.
        if !self.rescue_done {
            let rescue = self
                .retx
                .range(..rp)
                .rev()
                .find(|(&seq, e)| !self.scoreboard.is_sacked(seq, e.segment.seq_end()))
                .map(|(&seq, _)| seq);
            if let Some(seq) = rescue {
                self.rescue_done = true;
                return self.retransmit_seq(seq, now, out);
            }
        }
        0
    }

    /// Send exactly one segment of new data (≤ MSS), bypassing the cwnd
    /// gate — the callers (limited transmit, PRR) own their own budgets.
    /// Piggybacks a pending FIN exactly like `transmit_new`.
    fn send_new_segment(&mut self, now: Timestamp, out: &mut Vec<Packet>) -> u64 {
        if self.send_queued_bytes == 0 {
            return 0;
        }
        let payload = self.dequeue_payload(MSS);
        if payload.is_empty() {
            return 0;
        }
        let seq = self.snd_nxt;
        let fin_here = self.fin_pending && self.send_queued_bytes == 0 && self.fin_seq.is_none();
        let flags = if fin_here {
            TcpFlags::FIN_ACK
        } else {
            TcpFlags::ACK
        };
        let pkt = self.make_packet(flags, seq, payload);
        let seg = pkt.segment.clone();
        self.snd_nxt = seg.seq_end();
        if fin_here {
            self.fin_seq = Some(seg.seq_end() - 1);
            self.enter_fin_state();
        }
        let len = seg.seq_len();
        self.insert_retx(seq, seg, now);
        out.push(pkt);
        if self.send_queued_bytes == 0 {
            self.pending_events.push(SocketEvent::SendQueueDrained);
        }
        len
    }

    /// Handle an incoming segment. Produces response packets and queues
    /// app events on `self.pending_events`.
    fn on_segment(&mut self, now: Timestamp, seg: TcpSegment, out: &mut Vec<Packet>) {
        self.stats.segments_received += 1;
        self.last_seen = Some(now);
        if seg.flags.rst {
            self.teardown();
            self.pending_events.push(SocketEvent::Reset);
            return;
        }
        match self.state {
            TcpState::Closed => {
                // Stray segment to a dead socket: answer with RST.
                if !seg.flags.rst {
                    let pkt = self.make_packet(TcpFlags::RST, seg.ack, Bytes::new());
                    out.push(pkt);
                }
            }
            TcpState::SynSent => self.on_segment_syn_sent(now, seg, out),
            TcpState::SynReceived => {
                if seg.flags.ack && seg.ack > self.snd_una {
                    self.handle_ack(now, &seg, out);
                    self.state = TcpState::Established;
                    self.pending_events.push(SocketEvent::Connected);
                }
                if !seg.payload.is_empty() || seg.flags.fin {
                    self.handle_data(now, &seg, out);
                }
            }
            _ => {
                if seg.flags.ack {
                    self.handle_ack(now, &seg, out);
                }
                if !seg.payload.is_empty() || seg.flags.fin {
                    self.handle_data(now, &seg, out);
                }
                // Window updates from bare ACKs.
                self.snd_wnd = seg.window;
            }
        }
    }

    fn on_segment_syn_sent(&mut self, now: Timestamp, seg: TcpSegment, out: &mut Vec<Packet>) {
        if seg.flags.syn && seg.flags.ack && seg.ack == self.snd_nxt {
            // SACK is on only if we offered and the SYN-ACK confirmed.
            self.sack_enabled = self.config.recovery.uses_sack() && seg.sack.permitted;
            // Our SYN is acked; record RTT if not retransmitted.
            if let Some(entry) = self.remove_retx(self.snd_nxt - 1) {
                if !entry.retransmitted {
                    self.rtt.on_measurement(now.duration_since(entry.sent_at));
                }
            }
            self.snd_una = seg.ack;
            self.rcv_nxt = seg.seq + 1;
            self.snd_wnd = seg.window;
            self.state = TcpState::Established;
            self.consecutive_timeouts = 0;
            self.rto_timer.cancel();
            if let Some(t0) = self.conn_t0 {
                self.span_emit(SpanKind::ConnSetup, t0, now, "handshake");
            }
            // Completing ACK (may carry data below via transmit_new).
            let ack = self.make_packet(TcpFlags::ACK, self.snd_nxt, Bytes::new());
            out.push(ack);
            self.pending_events.push(SocketEvent::Connected);
            self.transmit_new(now, out);
        }
        // A bare SYN here would be simultaneous-open; out of scope.
    }

    fn handle_ack(&mut self, now: Timestamp, seg: &TcpSegment, out: &mut Vec<Packet>) {
        let ack = seg.ack;
        if ack > self.snd_nxt {
            return; // acks data we never sent; ignore
        }
        // Rate-sample candidates are per-ack: never let one leak into a
        // later ack's sample (its delivered counts would be stale).
        self.rate_candidate = None;
        // Fold SACK blocks into the scoreboard first; both the dup-ack
        // and the cumulative-ack paths feed on the newly sacked count,
        // and the newly covered ranges drive the incremental pipe and
        // RACK bookkeeping.
        let newly_sacked = if self.sack_enabled && !seg.sack.blocks.is_empty() {
            let mut delta = std::mem::take(&mut self.sack_delta);
            delta.clear();
            let newly = self.scoreboard.add_blocks_delta(
                &seg.sack.blocks,
                self.snd_una.max(ack),
                &mut delta,
            );
            self.apply_sack_delta(&delta, now);
            self.sack_delta = delta;
            self.stats.max_scoreboard_ranges = self
                .stats
                .max_scoreboard_ranges
                .max(self.scoreboard.ranges().len() as u64);
            newly
        } else {
            0
        };
        if self.rack_active() && (ack > self.snd_una || newly_sacked > 0) {
            // Any delivery re-arms the Tail Loss Probe allowance.
            self.tlp_fired = false;
        }
        if ack <= self.snd_una && newly_sacked > 0 {
            // SACK-only progress is still delivery — and not only on
            // classifiable duplicate ACKs: a payload-bearing segment (a
            // pipelined request on a bidirectional mux connection) can
            // carry new blocks with an unmoved ack number. Missing these
            // would permanently undercount `delivered` and under-read
            // every later bandwidth sample. Most of BBR's samples under
            // loss arrive through this path.
            self.emit_rate_sample(newly_sacked, now);
        }
        if ack > self.snd_una {
            let newly_acked = ack - self.snd_una;
            self.snd_una = ack;
            self.snd_wnd = seg.window;
            self.consecutive_timeouts = 0;
            self.rearm_rto = true;

            // RTT sample from the newest fully-acked, never-retransmitted
            // segment (Karn's algorithm). The loop runs before the
            // scoreboard advances so per-entry sacked-ness (F-RTO's
            // evidence filter) is still observable.
            let mut sample: Option<SimDuration> = None;
            let rack_active = self.rack_active();
            // F-RTO spurious-timeout evidence carried by this ack: bytes
            // of fully-acked segments that were neither retransmitted
            // since the timeout (§5.1 cleared every mark, so the flag is
            // exactly "retransmitted since the RTO") nor already sacked
            // before it. Such bytes can only be the *original*
            // pre-timeout flight arriving late — delay, not loss. The
            // per-entry filter is what RFC 5682's coarse first-ack rule
            // lacks: with per-segment immediate acks the first post-RTO
            // ack covers exactly the retransmitted head and the RFC
            // algorithm would give up (DESIGN.md §3).
            let mut frto_evidence = 0u64;
            let frto_armed = rack_active && !matches!(self.frto, FrtoState::Inactive);
            let acked_keys: Vec<u64> = self.retx.range(..ack).map(|(&k, _)| k).collect();
            for k in acked_keys {
                let fully_acked = {
                    let e = &self.retx[&k];
                    e.segment.seq_end() <= ack
                };
                if fully_acked {
                    let was_sacked = {
                        let e = &self.retx[&k];
                        self.scoreboard.is_sacked(k, e.segment.seq_end())
                    };
                    let e = self.remove_retx(k).unwrap();
                    if !e.retransmitted {
                        sample = Some(now.duration_since(e.sent_at));
                        // Unambiguous delivery: rate-sample candidate.
                        self.note_delivered_record(e.sent_at, e.segment.seq_end(), e.tx);
                    }
                    if frto_armed && !e.retransmitted && !was_sacked {
                        frto_evidence += e.segment.seq_len();
                    }
                    if rack_active {
                        // While F-RTO is still weighing spurious-vs-real,
                        // a retransmitted segment's ack is exactly the
                        // ambiguity under investigation (original or
                        // copy?) — letting it advance RACK's delivery
                        // clock to the retransmit time would mark the
                        // entire delayed original flight lost the moment
                        // the verdict lands.
                        if !(frto_armed && e.retransmitted) {
                            self.rack_dirty |= self.rack.on_delivered(
                                e.sent_at,
                                e.segment.seq_end(),
                                e.retransmitted,
                                now,
                            );
                        }
                        if self.rack_lost.remove(&k) && !e.retransmitted {
                            // Cumulatively acked without a retransmission:
                            // the RACK mark was reordering, not loss.
                            self.rack.on_spurious_mark();
                        }
                    } else {
                        self.rack_lost.remove(&k);
                    }
                } else {
                    // Partial ack into this segment: trim the acked prefix
                    // so a future retransmit resends only what's missing.
                    let e = self.retx.get_mut(&k).unwrap();
                    let cut = (ack - e.segment.seq) as usize;
                    if cut > 0 && cut <= e.segment.payload.len() {
                        let mut seg2 = e.segment.clone();
                        seg2.payload = seg2.payload.slice(cut..);
                        seg2.seq = ack;
                        let sent_at = e.sent_at;
                        let first_sent_at = e.first_sent_at;
                        let retransmitted = e.retransmitted;
                        let tx = e.tx;
                        self.remove_retx(k);
                        self.retx.insert(
                            ack,
                            RetxEntry {
                                segment: seg2,
                                sent_at,
                                first_sent_at,
                                retransmitted,
                                in_pipe: false,
                                tx,
                            },
                        );
                        if self.rack_lost.remove(&k) {
                            self.rack_lost.insert(ack);
                        }
                        self.refresh_pipe_entry(ack);
                    }
                }
            }
            // Sacked coverage the cumulative ack swallows was already
            // counted into PRR's delivered total when it was sacked;
            // RFC 6937's DeliveredData must not count it twice.
            let sacked_before = self.scoreboard.sacked_bytes();
            self.scoreboard.advance(ack);
            let swallowed_sacked = sacked_before - self.scoreboard.sacked_bytes();

            if let Some(rtt) = sample {
                self.rtt.on_measurement(rtt);
                self.rate.on_rtt(rtt, now);
            }

            // Close this ack's deliveries into a rate sample for the
            // congestion controller (model-based CC and pacing; a no-op
            // for the loss-based controllers). DeliveredData exactly as
            // PRR counts it.
            self.emit_rate_sample(
                newly_acked.saturating_sub(swallowed_sacked) + newly_sacked,
                now,
            );

            // F-RTO (RFC 5682, per-entry evidence variant): advance the
            // spurious-timeout probe before any recovery retransmissions.
            // `skip_recovery_sends` suppresses this ack's selective
            // retransmissions while the probe is mid-flight — a
            // retransmission would mark the very entries whose
            // unretransmitted delivery is the evidence.
            let mut skip_recovery_sends = false;
            if frto_armed {
                match self.frto {
                    _ if frto_evidence > 0 => {
                        // Never-retransmitted, never-sacked bytes were
                        // cumulatively acked after the timeout: the
                        // original flight is arriving. Spurious — undo.
                        self.declare_spurious_rto();
                    }
                    FrtoState::RtoSent { retx_end } => {
                        let covers_recovery = matches!(self.recovery_point, Some(rp) if ack >= rp);
                        if covers_recovery || ack > retx_end {
                            // The flight is fully accounted for, or the
                            // ack ran past the retransmission on
                            // previously-sacked coverage only: genuine
                            // loss, recover conventionally.
                            self.frto = FrtoState::Inactive;
                        } else {
                            // Exactly the retransmitted head was acked —
                            // ambiguous (original or retransmission?).
                            // Keep the ack clock moving with up to two
                            // NEW segments (RFC 5682 step 2b) and let the
                            // next ack decide.
                            for _ in 0..2 {
                                if self.send_queued_bytes == 0
                                    || self.flight_size() + MSS as u64 > self.snd_wnd
                                {
                                    break;
                                }
                                if self.send_new_segment(now, out) == 0 {
                                    break;
                                }
                            }
                            self.frto = FrtoState::NewDataSent { retx_end };
                            skip_recovery_sends = true;
                        }
                    }
                    FrtoState::NewDataSent { .. } => {
                        // A further cumulative ack with no unretransmitted
                        // evidence: the retransmissions are what's being
                        // acked. Genuine loss.
                        self.frto = FrtoState::Inactive;
                    }
                    FrtoState::Inactive => {}
                }
            }

            match self.recovery_point {
                Some(rp) if ack >= rp => {
                    // Recovery complete.
                    self.recovery_point = None;
                    self.dup_acks = 0;
                    self.cc.on_recovery_exit();
                }
                Some(_) if self.sack_enabled => {
                    // Partial ack during SACK recovery: feed PRR with the
                    // delivered bytes and let the scoreboard pick the
                    // selective retransmissions — no go-back-N.
                    self.prr_delivered +=
                        newly_acked.saturating_sub(swallowed_sacked) + newly_sacked;
                    if !skip_recovery_sends {
                        self.rack_detect(now);
                        self.sack_transmit(now, out);
                    }
                }
                Some(_) => {
                    // Partial ack during recovery (NewReno): retransmit the
                    // next hole immediately, and let the window grow so
                    // go-back-N recovery accelerates past stop-and-wait.
                    self.cc.on_ack(newly_acked, now, self.rtt.srtt());
                    self.retransmit_head(now, out);
                }
                None => {
                    self.dup_acks = 0;
                    self.cc.on_ack(newly_acked, now, self.rtt.srtt());
                    // A cumulative ack can itself reveal a loss: enough
                    // sacked coverage above the new hole (RFC 6675 §5), or
                    // RACK's delivery clock overtaking an unsacked hole.
                    self.rack_detect(now);
                    if self.sack_enabled && self.head_is_lost() {
                        self.enter_sack_recovery(now, out);
                    }
                }
            }

            if self.retx.is_empty() {
                self.rto_timer.cancel();
            }
            // FIN acked?
            if let Some(fin_seq) = self.fin_seq {
                if ack > fin_seq {
                    self.on_fin_acked();
                }
            }
        } else if ack == self.snd_una
            && seg.payload.is_empty()
            && !seg.flags.fin
            && !seg.flags.syn
            && self.flight_size() > 0
        {
            // Duplicate ACK (with SACK, usually carrying new blocks).
            self.dup_acks += 1;
            // A dup ack is conventional-recovery evidence: any F-RTO
            // probe in flight concludes "not spurious" (RFC 5682 step 3).
            if !matches!(self.frto, FrtoState::Inactive) {
                self.frto = FrtoState::Inactive;
            }
            self.rack_detect(now);
            match self.recovery_point {
                None if self.sack_enabled => {
                    if self.dup_acks >= DUP_THRESH as u32 || self.head_is_lost() {
                        self.enter_sack_recovery(now, out);
                    } else if self.send_queued_bytes > 0
                        && self.flight_size() + MSS as u64 <= self.snd_wnd
                    {
                        // RFC 3042 limited transmit: the first two dup
                        // acks each send one new segment past cwnd (but
                        // never past the peer's advertised window —
                        // condition 3 of the RFC), so a small window
                        // keeps its ack clock alive.
                        if self.send_new_segment(now, out) > 0 {
                            self.stats.limited_transmits += 1;
                        }
                    }
                }
                None => {
                    if self.dup_acks == 3 {
                        self.stats.fast_retransmits += 1;
                        self.metric_count("tcp_fast_retransmits_total");
                        self.recovery_point = Some(self.snd_nxt);
                        self.cc.on_fast_retransmit(self.flight_size(), now);
                        self.retransmit_head(now, out);
                    }
                }
                Some(_) if self.sack_enabled => {
                    self.prr_delivered += newly_sacked;
                    self.sack_transmit(now, out);
                }
                Some(_) => {}
            }
        }
        self.metric_sample_routine(now);
    }

    fn on_fin_acked(&mut self) {
        self.state = match self.state {
            TcpState::FinWait1 => TcpState::FinWait2,
            TcpState::Closing => TcpState::Closed,
            TcpState::LastAck => TcpState::Closed,
            s => s,
        };
        if self.state == TcpState::Closed {
            self.teardown();
        }
    }

    fn handle_data(&mut self, now: Timestamp, seg: &TcpSegment, out: &mut Vec<Packet>) {
        let mut payload = seg.payload.clone();
        let mut seq = seg.seq;
        // Trim any prefix we've already received.
        if seq < self.rcv_nxt {
            let overlap = (self.rcv_nxt - seq) as usize;
            if overlap >= payload.len() && !seg.flags.fin {
                // Entirely duplicate data: re-ack.
                self.queue_ack(now, out, true);
                return;
            }
            payload = payload.slice(overlap.min(payload.len())..);
            seq = self.rcv_nxt;
        }
        if seg.flags.fin {
            let fin_seq = seg.seq + seg.payload.len() as u64;
            self.peer_fin_seq = Some(fin_seq);
        }
        if seq == self.rcv_nxt {
            // In-order: deliver, then drain contiguous out-of-order data.
            if !payload.is_empty() {
                self.rcv_nxt += payload.len() as u64;
                self.stats.bytes_received += payload.len() as u64;
                self.pending_events.push(SocketEvent::Data(payload));
            }
            while let Some((&oseq, _)) = self.ooo.iter().next() {
                if oseq > self.rcv_nxt {
                    break;
                }
                let (oseq, odata) = self.ooo.pop_first().unwrap();
                let skip = (self.rcv_nxt - oseq) as usize;
                if skip < odata.len() {
                    let chunk = odata.slice(skip..);
                    self.rcv_nxt += chunk.len() as u64;
                    self.stats.bytes_received += chunk.len() as u64;
                    self.pending_events.push(SocketEvent::Data(chunk));
                }
            }
            // Reassembly gap closed: the parked bytes waited this long
            // for the hole to fill (initiator side only — the response
            // direction is where head-of-line blocking costs PLT).
            if let Some(hole_t0) = self.hole_since {
                if self.ooo.is_empty() {
                    self.hole_since = None;
                    if self.conn_t0.is_some() {
                        self.span_emit(SpanKind::HolWait, hole_t0, now, "reassembly");
                    }
                }
            }
            if self.sack_enabled {
                self.rcv_sack.on_advance(self.rcv_nxt);
            }
            // Process FIN once all data before it has arrived.
            if let Some(fin_seq) = self.peer_fin_seq {
                if self.rcv_nxt == fin_seq {
                    self.rcv_nxt = fin_seq + 1;
                    self.on_peer_fin();
                }
            }
            // While holes remain above this in-order data, every ACK must
            // go out immediately and carry SACK blocks (RFC 2018) — the
            // sender's recovery is clocked by them, and delayed-ACK
            // batching here would stall it by a delayed-ack interval per
            // hole. With no holes (or without SACK) the normal batching
            // applies.
            let hole_above = self.sack_enabled && !self.ooo.is_empty();
            self.queue_ack(now, out, hole_above);
        } else {
            // Out of order: stash and send an immediate duplicate ACK
            // (carrying SACK blocks when negotiated).
            if !payload.is_empty() {
                if self.sack_enabled {
                    self.rcv_sack.on_arrival(seq, seq + payload.len() as u64);
                }
                if self.ooo.is_empty() && self.hole_since.is_none() {
                    self.hole_since = Some(now);
                }
                self.ooo.entry(seq).or_insert(payload);
            }
            self.queue_ack(now, out, true);
        }
    }

    fn on_peer_fin(&mut self) {
        self.pending_events.push(SocketEvent::PeerClosed);
        self.state = match self.state {
            TcpState::Established => TcpState::CloseWait,
            TcpState::FinWait1 => TcpState::Closing,
            TcpState::FinWait2 => TcpState::Closed,
            s => s,
        };
        if self.state == TcpState::Closed {
            self.teardown();
        }
    }

    /// Send or schedule an ACK. `force` bypasses delayed-ACK batching
    /// (used for out-of-order arrivals, which must dup-ack immediately).
    fn queue_ack(&mut self, now: Timestamp, out: &mut Vec<Packet>, force: bool) {
        match self.config.delayed_ack {
            Some(_) if !force => {
                self.unacked_segments += 1;
                if self.unacked_segments >= 2 {
                    self.unacked_segments = 0;
                    self.ack_timer.cancel();
                    let pkt = self.make_ack_packet(now);
                    out.push(pkt);
                }
                // else: the host arms the delayed-ack timer after `drive`.
            }
            _ => {
                self.unacked_segments = 0;
                let pkt = self.make_ack_packet(now);
                out.push(pkt);
            }
        }
    }

    fn teardown(&mut self) {
        // Close out the initiator's lifetime span exactly once. The
        // teardown sites carry no clock, so the close edge is the last
        // segment-arrival time (every close path is segment-driven).
        if let Some(t0) = self.conn_t0.take() {
            let t1 = self.last_seen.unwrap_or(t0);
            self.span_emit(SpanKind::Conn, t0, t1.max(t0), "");
        }
        self.hole_since = None;
        self.state = TcpState::Closed;
        self.rto_timer.cancel();
        self.ack_timer.cancel();
        self.tlp_timer.cancel();
        self.reo_timer.cancel();
        self.pacing_timer.cancel();
        self.send_queue.clear();
        self.send_queued_bytes = 0;
        self.retx.clear();
        self.pipe_count = 0;
        self.rack_lost.clear();
        self.reo_deadline = None;
        self.tlp_deadline = None;
        self.pace_deadline = None;
        self.pacer.reset();
        self.rate_candidate = None;
        self.frto = FrtoState::Inactive;
        self.ooo.clear();
        self.scoreboard.clear();
    }

    /// Current state (tests/diagnostics).
    pub fn state(&self) -> TcpState {
        self.state
    }

    /// Connection statistics.
    pub fn stats(&self) -> TcpStats {
        self.stats
    }
}

impl TcpHandle {
    /// Create the client half of a connection and emit its SYN.
    /// `egress` is where packets go (normally the namespace router).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn connect(
        sim: &mut Simulator,
        local: SocketAddr,
        remote: SocketAddr,
        config: TcpConfig,
        egress: SinkRef,
        packet_ids: Rc<std::cell::Cell<u64>>,
        app: Rc<dyn SocketApp>,
        timer_mux: Option<&TimerMux>,
    ) -> TcpHandle {
        let mut inner = TcpInner::new(
            local,
            remote,
            TcpState::SynSent,
            config,
            egress,
            packet_ids,
            timer_mux,
        );
        inner.app = Some(app);
        let now = sim.now();
        inner.conn_t0 = Some(now);
        let syn = inner.make_packet(TcpFlags::SYN, 0, Bytes::new());
        inner.snd_nxt = 1;
        inner.insert_retx(0, syn.segment.clone(), now);
        let handle = TcpHandle {
            inner: Rc::new(RefCell::new(inner)),
        };
        let egress = handle.inner.borrow().egress.clone();
        egress.deliver(sim, syn);
        handle.arm_rto(sim);
        handle
    }

    /// Create the server half in response to a SYN; emits SYN-ACK.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn accept(
        sim: &mut Simulator,
        local: SocketAddr,
        remote: SocketAddr,
        syn: &TcpSegment,
        config: TcpConfig,
        egress: SinkRef,
        packet_ids: Rc<std::cell::Cell<u64>>,
        app: Rc<dyn SocketApp>,
        timer_mux: Option<&TimerMux>,
    ) -> TcpHandle {
        let mut inner = TcpInner::new(
            local,
            remote,
            TcpState::SynReceived,
            config,
            egress,
            packet_ids,
            timer_mux,
        );
        inner.app = Some(app);
        inner.rcv_nxt = syn.seq + 1;
        inner.snd_wnd = syn.window;
        // Settle SACK before the SYN-ACK so it carries the confirmation.
        inner.sack_enabled = inner.config.recovery.uses_sack() && syn.sack.permitted;
        let now = sim.now();
        let syn_ack = inner.make_packet(TcpFlags::SYN_ACK, 0, Bytes::new());
        inner.snd_nxt = 1;
        inner.insert_retx(0, syn_ack.segment.clone(), now);
        let handle = TcpHandle {
            inner: Rc::new(RefCell::new(inner)),
        };
        let egress = handle.inner.borrow().egress.clone();
        egress.deliver(sim, syn_ack);
        handle.arm_rto(sim);
        handle
    }

    /// Queue bytes for transmission.
    pub fn send(&self, sim: &mut Simulator, data: Bytes) {
        if data.is_empty() {
            return;
        }
        let now = sim.now();
        let mut packets = Vec::new();
        {
            let mut inner = self.inner.borrow_mut();
            if matches!(inner.state, TcpState::Closed) {
                return;
            }
            assert!(
                !inner.fin_pending && inner.fin_seq.is_none(),
                "send after close"
            );
            inner.send_queued_bytes += data.len() as u64;
            inner.send_queue.push(data);
            if inner.state != TcpState::SynSent && inner.state != TcpState::SynReceived {
                inner.transmit_new(now, &mut packets);
            }
        }
        self.flush(sim, packets);
    }

    /// Graceful close of our direction (FIN after queued data).
    pub fn close(&self, sim: &mut Simulator) {
        let now = sim.now();
        let mut packets = Vec::new();
        {
            let mut inner = self.inner.borrow_mut();
            if matches!(inner.state, TcpState::Closed) || inner.fin_pending {
                return;
            }
            inner.fin_pending = true;
            if inner.state != TcpState::SynSent && inner.state != TcpState::SynReceived {
                inner.transmit_new(now, &mut packets);
            }
        }
        self.flush(sim, packets);
    }

    /// Abort: send RST and drop all state.
    pub fn abort(&self, sim: &mut Simulator) {
        let pkt = {
            let mut inner = self.inner.borrow_mut();
            if matches!(inner.state, TcpState::Closed) {
                None
            } else {
                let seq = inner.snd_nxt;
                let pkt = inner.make_packet(TcpFlags::RST, seq, Bytes::new());
                inner.teardown();
                Some(pkt)
            }
        };
        if let Some(pkt) = pkt {
            let egress = self.inner.borrow().egress.clone();
            egress.deliver(sim, pkt);
        }
    }

    /// Current connection state.
    pub fn state(&self) -> TcpState {
        self.inner.borrow().state()
    }

    /// Connection statistics snapshot.
    pub fn stats(&self) -> TcpStats {
        self.inner.borrow().stats()
    }

    /// Local endpoint.
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.borrow().local
    }

    /// Remote endpoint.
    pub fn remote_addr(&self) -> SocketAddr {
        self.inner.borrow().remote
    }

    /// Smoothed RTT estimate, if measured.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.inner.borrow().rtt.srtt()
    }

    /// Bytes the app has queued that have not yet been put on the wire.
    /// Pairs with [`SocketEvent::SendQueueDrained`] for self-clocked
    /// writers.
    pub fn unsent_bytes(&self) -> u64 {
        self.inner.borrow().send_queued_bytes
    }

    /// RFC 6675 pipe estimate — bytes believed still in the network
    /// (diagnostics/tests; meaningful whether or not SACK is on, since an
    /// empty scoreboard makes it degenerate to outstanding bytes).
    /// Incrementally maintained; in debug builds reading it cross-checks
    /// the counter against the definitional walk.
    pub fn pipe_estimate(&self) -> u64 {
        self.inner.borrow().pipe()
    }

    /// The definitional O(n) pipe walk (tests: must always equal
    /// [`pipe_estimate`](TcpHandle::pipe_estimate)).
    pub fn pipe_estimate_walk(&self) -> u64 {
        self.inner.borrow().pipe_walk()
    }

    /// Current congestion window, bytes (diagnostics/tests — e.g.
    /// asserting the F-RTO spurious-timeout undo restored it).
    pub fn cwnd(&self) -> u64 {
        self.inner.borrow().cc.cwnd()
    }

    /// Current retransmission timeout, including any exponential backoff
    /// (diagnostics/tests — the F-RTO undo drops accumulated backoff).
    pub fn current_rto(&self) -> SimDuration {
        self.inner.borrow().rtt.rto()
    }

    /// Outstanding sequence space (`snd_nxt - snd_una`), the flight size
    /// the pipe estimate can never exceed.
    pub fn flight_bytes(&self) -> u64 {
        self.inner.borrow().flight_size()
    }

    /// Whether SACK was negotiated on this connection.
    pub fn sack_enabled(&self) -> bool {
        self.inner.borrow().sack_enabled
    }

    /// Windowed-max delivery-rate estimate, bytes per second
    /// (diagnostics/tests — e.g. asserting BBR converged to link rate).
    pub fn delivery_rate(&self) -> Option<u64> {
        self.inner.borrow().rate.bw_estimate()
    }

    /// Windowed minimum RTT from the delivery-rate estimator.
    pub fn min_rtt_estimate(&self) -> Option<SimDuration> {
        self.inner.borrow().rate.min_rtt()
    }

    /// The rate the pacer would release at right now, if pacing is
    /// active and a rate is known (diagnostics/tests).
    pub fn pacing_rate(&self) -> Option<u64> {
        self.inner.borrow().current_pacing_rate()
    }

    /// Replace the application observer (used by the host's two-phase
    /// accept, before any event can have fired).
    pub(crate) fn set_app(&self, app: Rc<dyn SocketApp>) {
        self.inner.borrow_mut().app = Some(app);
    }

    /// Process one incoming segment (called by the host).
    pub(crate) fn handle_segment(&self, sim: &mut Simulator, seg: TcpSegment) {
        let now = sim.now();
        let mut packets = Vec::new();
        {
            let mut inner = self.inner.borrow_mut();
            inner.on_segment(now, seg, &mut packets);
            // Opportunistic transmission: the window may have opened.
            if matches!(
                inner.state,
                TcpState::Established | TcpState::CloseWait | TcpState::FinWait1
            ) {
                inner.transmit_new(now, &mut packets);
            }
        }
        self.flush(sim, packets);
    }

    /// Send packets, manage timers, then dispatch pending app events.
    fn flush(&self, sim: &mut Simulator, packets: Vec<Packet>) {
        let egress = self.inner.borrow().egress.clone();
        for pkt in packets {
            egress.deliver(sim, pkt);
        }
        self.manage_timers(sim);
        self.dispatch_events(sim);
    }

    fn manage_timers(&self, sim: &mut Simulator) {
        let (needs_rto, rearm, delayed_ack) = {
            let mut inner = self.inner.borrow_mut();
            let needs = !inner.retx.is_empty() && inner.state != TcpState::Closed;
            let rearm = std::mem::take(&mut inner.rearm_rto);
            let dack = if inner.unacked_segments > 0 && !inner.ack_timer.is_armed() {
                inner.config.delayed_ack
            } else {
                None
            };
            (needs, rearm, dack)
        };
        if needs_rto && (rearm || !self.inner.borrow().rto_timer.is_armed()) {
            self.arm_rto(sim);
        } else if !needs_rto {
            self.inner.borrow().rto_timer.cancel();
        }
        self.manage_rack_timers(sim);
        self.manage_pacing_timer(sim);
        if let Some(delay) = delayed_ack {
            let me = self.clone();
            let timer = self.inner.borrow().ack_timer.clone();
            timer.arm(sim, delay, move |sim| {
                let pkt = {
                    let mut inner = me.inner.borrow_mut();
                    if inner.unacked_segments == 0 || inner.state == TcpState::Closed {
                        None
                    } else {
                        inner.unacked_segments = 0;
                        let now = sim.now();
                        Some(inner.make_ack_packet(now))
                    }
                };
                if let Some(pkt) = pkt {
                    let egress = me.inner.borrow().egress.clone();
                    egress.deliver(sim, pkt);
                }
            });
        }
    }

    fn arm_rto(&self, sim: &mut Simulator) {
        let (rto, timer) = {
            let inner = self.inner.borrow();
            (inner.rtt.rto(), inner.rto_timer.clone())
        };
        let me = self.clone();
        timer.arm(sim, rto, move |sim| me.on_rto(sim));
    }

    /// Arm or cancel the RackTlp-tier timers: the Tail Loss Probe (only
    /// while data is outstanding, out of recovery, with the probe
    /// allowance unspent, and strictly *before* the armed RTO — a probe
    /// that would fire at or after the RTO is pointless and forbidden)
    /// and the RACK reordering-window expiry requested by detection.
    ///
    /// Timer discipline: the desired TLP deadline moves forward on every
    /// flush, but the armed timer is left alone when it is already set
    /// to fire no later — the fire handler re-arms itself forward to the
    /// then-current desired deadline. Without this, each flush would
    /// push a dead timer generation onto the event heap (measured as the
    /// dominant RackTlp host cost on the lossy-transfer bench).
    fn manage_rack_timers(&self, sim: &mut Simulator) {
        let now = sim.now();
        enum TimerPlan {
            Arm(Timestamp),
            Keep,
            Cancel,
        }
        let (tlp_timer, tlp_plan, reo_timer, reo_plan) = {
            let mut inner = self.inner.borrow_mut();
            if !inner.rack_active() {
                return;
            }
            let outstanding = !inner.retx.is_empty() && inner.state != TcpState::Closed;
            let desired = if outstanding
                && inner.recovery_point.is_none()
                && !inner.tlp_fired
                && inner.consecutive_timeouts == 0
            {
                inner
                    .rtt
                    .srtt()
                    .map(|srtt| {
                        // RFC 8985's PTO: two round trips for the probe's
                        // ack to return, plus slack for ack jitter.
                        now + srtt.saturating_mul(2) + TLP_SLACK
                    })
                    .filter(|&at| at < inner.rto_timer.deadline())
            } else {
                None
            };
            inner.tlp_deadline = desired;
            let tlp_plan = match desired {
                Some(at) if inner.tlp_timer.is_armed() && inner.tlp_timer.deadline() <= at => {
                    TimerPlan::Keep
                }
                Some(at) => TimerPlan::Arm(at),
                None => TimerPlan::Cancel,
            };
            // A recorded expiry can already be due (detection is gated
            // and may not have rechecked since): fire as soon as
            // possible, never in the past.
            let reo_plan = match inner
                .reo_deadline
                .filter(|_| outstanding)
                .map(|at| at.max(now))
            {
                Some(at) if inner.reo_timer.deadline() == at => TimerPlan::Keep,
                Some(at) => TimerPlan::Arm(at),
                None => TimerPlan::Cancel,
            };
            (
                inner.tlp_timer.clone(),
                tlp_plan,
                inner.reo_timer.clone(),
                reo_plan,
            )
        };
        match tlp_plan {
            TimerPlan::Arm(at) => {
                let me = self.clone();
                tlp_timer.arm_at(sim, at, move |sim| me.on_tlp(sim));
            }
            TimerPlan::Keep => {}
            TimerPlan::Cancel => tlp_timer.cancel(),
        }
        match reo_plan {
            TimerPlan::Arm(at) => {
                let me = self.clone();
                reo_timer.arm_at(sim, at, move |sim| me.on_reo_timer(sim));
            }
            TimerPlan::Keep => {}
            TimerPlan::Cancel => reo_timer.cancel(),
        }
    }

    /// Arm (or cancel) the pacing release timer. `transmit_new` records
    /// the release instant it stopped at in `pace_deadline` (cleared on
    /// entry, so a deadline here is always from the latest transmission
    /// opportunity); the fire handler simply re-runs the transmit loop.
    fn manage_pacing_timer(&self, sim: &mut Simulator) {
        let (timer, deadline) = {
            let inner = self.inner.borrow();
            let deadline = inner
                .pace_deadline
                .filter(|_| inner.state != TcpState::Closed);
            (inner.pacing_timer.clone(), deadline)
        };
        match deadline {
            Some(at) if timer.is_armed() && timer.deadline() == at => {}
            Some(at) => {
                let me = self.clone();
                timer.arm_at(sim, at, move |sim| me.on_pace_timer(sim));
            }
            None => timer.cancel(),
        }
    }

    /// Pacing release instant reached: resume the transmit loop (which
    /// re-checks the window — an ack may have shrunk it meanwhile).
    fn on_pace_timer(&self, sim: &mut Simulator) {
        let now = sim.now();
        let mut packets = Vec::new();
        {
            let mut inner = self.inner.borrow_mut();
            if matches!(
                inner.state,
                TcpState::Established | TcpState::CloseWait | TcpState::FinWait1
            ) {
                inner.transmit_new(now, &mut packets);
            } else {
                return;
            }
        }
        self.flush(sim, packets);
    }

    /// Tail Loss Probe fire: one probe segment — new data if the peer's
    /// window allows, else a retransmission of the highest unsacked
    /// outstanding segment — so a pure tail loss produces the SACK
    /// feedback RACK recovery needs instead of waiting out the RTO.
    fn on_tlp(&self, sim: &mut Simulator) {
        let now = sim.now();
        let mut packets = Vec::new();
        {
            let mut inner = self.inner.borrow_mut();
            if !inner.rack_active()
                || inner.retx.is_empty()
                || inner.state == TcpState::Closed
                || inner.recovery_point.is_some()
            {
                return;
            }
            // Lazily re-arm: the desired deadline has usually moved past
            // the one this firing was scheduled for.
            let Some(desired) = inner.tlp_deadline else {
                return;
            };
            if desired > now {
                let timer = inner.tlp_timer.clone();
                let me = self.clone();
                drop(inner);
                timer.arm_at(sim, desired, move |sim| me.on_tlp(sim));
                return;
            }
            debug_assert!(
                !inner.rto_timer.is_armed() || inner.rto_timer.deadline() >= now,
                "TLP fired past an armed, nearer RTO"
            );
            inner.tlp_fired = true;
            inner.tlp_deadline = None;
            inner.stats.tlp_probes += 1;
            inner.metric_count("tcp_tlp_fires_total");
            let sent = if inner.send_queued_bytes > 0
                && inner.flight_size() + MSS as u64 <= inner.snd_wnd
            {
                inner.send_new_segment(now, &mut packets)
            } else {
                0
            };
            if sent == 0 {
                let probe = inner
                    .retx
                    .iter()
                    .rev()
                    .find(|(&seq, e)| !inner.scoreboard.is_sacked(seq, e.segment.seq_end()))
                    .map(|(&seq, _)| seq);
                if let Some(seq) = probe {
                    inner.retransmit_seq(seq, now, &mut packets);
                }
            }
            // The probe restarts the RTO clock (RFC 8985 §7.3).
            inner.rearm_rto = true;
        }
        self.flush(sim, packets);
    }

    /// RACK reordering-window expiry: segments that were within the
    /// window when last checked may have crossed into "lost" by pure
    /// passage of time, with no ack to trigger re-detection.
    fn on_reo_timer(&self, sim: &mut Simulator) {
        let now = sim.now();
        let mut packets = Vec::new();
        {
            let mut inner = self.inner.borrow_mut();
            if !inner.rack_active() || inner.retx.is_empty() || inner.state == TcpState::Closed {
                return;
            }
            // `reo_deadline` is left set: its being due is what lets
            // `rack_detect` through the dirty-gate; detection then
            // replaces it with the next pending expiry (or clears it).
            inner.rack_detect(now);
            if inner.recovery_point.is_none() {
                if inner.sack_enabled && inner.head_is_lost() && inner.flight_size() > 0 {
                    inner.enter_sack_recovery(now, &mut packets);
                }
            } else {
                inner.sack_transmit(now, &mut packets);
            }
        }
        self.flush(sim, packets);
    }

    fn on_rto(&self, sim: &mut Simulator) {
        let mut packets = Vec::new();
        let now = sim.now();
        let mut dead = false;
        {
            let mut inner = self.inner.borrow_mut();
            if inner.retx.is_empty() || inner.state == TcpState::Closed {
                return;
            }
            inner.consecutive_timeouts += 1;
            inner.stats.timeouts += 1;
            inner.metric_count("tcp_rto_total");
            if inner.consecutive_timeouts > inner.config.max_retries {
                inner.teardown();
                inner.pending_events.push(SocketEvent::Reset);
                dead = true;
            } else {
                let flight = inner.flight_size();
                // F-RTO (RFC 5682) eligibility: RackTlp tier, first
                // timeout of this episode, not already inside a loss
                // recovery. Capture the pre-timeout loss watermark so a
                // spurious verdict can retract the §5.1 mass-marking.
                let frto_eligible = inner.rack_active()
                    && inner.consecutive_timeouts == 1
                    && inner.recovery_point.is_none();
                if frto_eligible {
                    inner.prior_lost_point = inner.lost_point;
                } else {
                    // A repeated or in-recovery RTO muddies the evidence a
                    // probe in flight was collecting (RFC 5682 applies
                    // F-RTO to the first timeout only).
                    inner.frto = FrtoState::Inactive;
                }
                inner.cc.on_timeout(flight, now);
                inner.rtt.backoff();
                // Keep a recovery point so every partial ACK immediately
                // retransmits the next hole (otherwise each lost segment
                // would cost its own RTO — catastrophic under burst loss).
                inner.recovery_point = Some(inner.snd_nxt);
                inner.dup_acks = 0;
                // Timers subordinate to the RTO are void once it fires.
                inner.tlp_timer.cancel();
                inner.reo_timer.cancel();
                inner.reo_deadline = None;
                inner.tlp_deadline = None;
                inner.tlp_fired = false;
                if inner.sack_enabled {
                    // RFC 6675 §5.1: an RTO clears the per-segment
                    // retransmission marks (Karn's rule), keeps the sacked
                    // coverage (this receiver never reneges), and declares
                    // every unsacked outstanding segment lost — an RTO
                    // means the tail produced no SACKs, so the scoreboard
                    // alone could never flag it. Recovery restarts PRR
                    // from the post-timeout flight and resends the first
                    // actual hole.
                    for e in inner.retx.values_mut() {
                        e.retransmitted = false;
                    }
                    inner.lost_point = inner.snd_nxt;
                    inner.prr_delivered = 0;
                    inner.prr_out = 0;
                    inner.recover_fs = flight.max(1);
                    inner.rescue_done = false;
                    // The mass-marking flips most contributions at once;
                    // rebuild the incremental pipe rather than diffing.
                    inner.rebuild_pipe();
                    inner.loss_frontier = inner.snd_nxt;
                    let first_hole = inner
                        .retx
                        .iter()
                        .find(|&(&seq, e)| !inner.scoreboard.is_sacked(seq, e.segment.seq_end()))
                        .map(|(&seq, _)| seq);
                    if let Some(seq) = first_hole {
                        let len = inner.retransmit_seq(seq, now, &mut packets);
                        if frto_eligible {
                            inner.frto = FrtoState::RtoSent {
                                retx_end: seq + len,
                            };
                        }
                    }
                } else {
                    inner.retransmit_head(now, &mut packets);
                }
            }
        }
        if !dead {
            let egress = self.inner.borrow().egress.clone();
            for pkt in packets {
                egress.deliver(sim, pkt);
            }
            self.arm_rto(sim);
        }
        self.dispatch_events(sim);
    }

    fn dispatch_events(&self, sim: &mut Simulator) {
        loop {
            let (event, app) = {
                let mut inner = self.inner.borrow_mut();
                if inner.pending_events.is_empty() {
                    return;
                }
                (inner.pending_events.remove(0), inner.app.clone())
            };
            if let Some(app) = app {
                app.on_event(sim, self, event);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // State-machine unit tests that don't need a host: drive TcpInner
    // directly with synthetic segments.

    fn addr(last: u8, port: u16) -> SocketAddr {
        SocketAddr::new(crate::addr::IpAddr::new(10, 0, 0, last), port)
    }

    fn make_inner(state: TcpState) -> TcpInner {
        TcpInner::new(
            addr(1, 1000),
            addr(2, 80),
            state,
            TcpConfig::default(),
            crate::sink::BlackHole::new(),
            Rc::new(std::cell::Cell::new(0)),
            None,
        )
    }

    fn data_seg(seq: u64, payload: &[u8]) -> TcpSegment {
        TcpSegment {
            flags: TcpFlags::ACK,
            seq,
            ack: 0,
            window: 1 << 20,
            sack: Default::default(),
            payload: Bytes::copy_from_slice(payload),
        }
    }

    fn collect_data(inner: &mut TcpInner) -> Vec<u8> {
        let mut out = Vec::new();
        for ev in inner.pending_events.drain(..) {
            if let SocketEvent::Data(b) = ev {
                out.extend_from_slice(&b);
            }
        }
        out
    }

    #[test]
    fn in_order_delivery() {
        let mut inner = make_inner(TcpState::Established);
        let mut out = Vec::new();
        inner.on_segment(Timestamp::ZERO, data_seg(0, b"hello "), &mut out);
        inner.on_segment(Timestamp::ZERO, data_seg(6, b"world"), &mut out);
        assert_eq!(collect_data(&mut inner), b"hello world");
        assert_eq!(inner.rcv_nxt, 11);
        assert_eq!(out.len(), 2, "one ack per segment");
    }

    #[test]
    fn out_of_order_reassembly() {
        let mut inner = make_inner(TcpState::Established);
        let mut out = Vec::new();
        inner.on_segment(Timestamp::ZERO, data_seg(6, b"world"), &mut out);
        assert!(collect_data(&mut inner).is_empty());
        assert_eq!(inner.rcv_nxt, 0, "gap not yet filled");
        inner.on_segment(Timestamp::ZERO, data_seg(0, b"hello "), &mut out);
        assert_eq!(collect_data(&mut inner), b"hello world");
        assert_eq!(inner.rcv_nxt, 11);
    }

    #[test]
    fn duplicate_data_reacked_not_redelivered() {
        let mut inner = make_inner(TcpState::Established);
        let mut out = Vec::new();
        inner.on_segment(Timestamp::ZERO, data_seg(0, b"abc"), &mut out);
        let _ = collect_data(&mut inner);
        inner.on_segment(Timestamp::ZERO, data_seg(0, b"abc"), &mut out);
        assert!(collect_data(&mut inner).is_empty());
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].segment.ack, 3);
    }

    #[test]
    fn overlapping_segment_trimmed() {
        let mut inner = make_inner(TcpState::Established);
        let mut out = Vec::new();
        inner.on_segment(Timestamp::ZERO, data_seg(0, b"abcd"), &mut out);
        let _ = collect_data(&mut inner);
        inner.on_segment(Timestamp::ZERO, data_seg(2, b"cdef"), &mut out);
        assert_eq!(collect_data(&mut inner), b"ef");
        assert_eq!(inner.rcv_nxt, 6);
    }

    #[test]
    fn dup_acks_trigger_fast_retransmit() {
        let mut inner = make_inner(TcpState::Established);
        inner.snd_una = 0;
        inner.snd_nxt = 3000;
        inner.insert_retx(
            0,
            TcpSegment {
                flags: TcpFlags::ACK,
                seq: 0,
                ack: 0,
                window: 0,
                sack: Default::default(),
                payload: Bytes::from(vec![0; 1460]),
            },
            Timestamp::ZERO,
        );
        let mut out = Vec::new();
        let dup = TcpSegment {
            flags: TcpFlags::ACK,
            seq: 0,
            ack: 0,
            window: 1 << 20,
            sack: Default::default(),
            payload: Bytes::new(),
        };
        for _ in 0..3 {
            inner.on_segment(Timestamp::from_millis(1), dup.clone(), &mut out);
        }
        assert_eq!(inner.stats.fast_retransmits, 1);
        assert_eq!(out.len(), 1, "exactly one retransmission");
        assert_eq!(out[0].segment.seq, 0);
        assert!(inner.recovery_point.is_some());
        // Fourth dup ack must not retransmit again.
        inner.on_segment(Timestamp::from_millis(2), dup, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn new_ack_clears_dupack_count() {
        let mut inner = make_inner(TcpState::Established);
        inner.snd_nxt = 100;
        inner.insert_retx(0, data_seg(0, &[0u8; 100]), Timestamp::ZERO);
        let mut out = Vec::new();
        let dup = TcpSegment {
            flags: TcpFlags::ACK,
            seq: 0,
            ack: 0,
            window: 1 << 20,
            sack: Default::default(),
            payload: Bytes::new(),
        };
        inner.on_segment(Timestamp::from_millis(1), dup.clone(), &mut out);
        inner.on_segment(Timestamp::from_millis(1), dup, &mut out);
        assert_eq!(inner.dup_acks, 2);
        let ack = TcpSegment {
            flags: TcpFlags::ACK,
            seq: 0,
            ack: 100,
            window: 1 << 20,
            sack: Default::default(),
            payload: Bytes::new(),
        };
        inner.on_segment(Timestamp::from_millis(2), ack, &mut out);
        assert_eq!(inner.dup_acks, 0);
        assert_eq!(inner.snd_una, 100);
        assert!(inner.retx.is_empty());
    }

    #[test]
    fn fin_handling_passive_close() {
        let mut inner = make_inner(TcpState::Established);
        let mut out = Vec::new();
        let fin = TcpSegment {
            flags: TcpFlags::FIN_ACK,
            seq: 0,
            ack: 0,
            window: 1 << 20,
            sack: Default::default(),
            payload: Bytes::new(),
        };
        inner.on_segment(Timestamp::ZERO, fin, &mut out);
        assert_eq!(inner.state(), TcpState::CloseWait);
        assert_eq!(inner.rcv_nxt, 1);
        assert!(matches!(
            inner.pending_events.last(),
            Some(SocketEvent::PeerClosed)
        ));
        // Our ACK of the FIN.
        assert_eq!(out.last().unwrap().segment.ack, 1);
    }

    #[test]
    fn fin_with_data_delivers_then_closes() {
        let mut inner = make_inner(TcpState::Established);
        let mut out = Vec::new();
        let fin = TcpSegment {
            flags: TcpFlags::FIN_ACK,
            seq: 0,
            ack: 0,
            window: 1 << 20,
            sack: Default::default(),
            payload: Bytes::from_static(b"bye"),
        };
        inner.on_segment(Timestamp::ZERO, fin, &mut out);
        let events: Vec<_> = inner.pending_events.drain(..).collect();
        assert!(matches!(events[0], SocketEvent::Data(ref b) if &b[..] == b"bye"));
        assert!(matches!(events[1], SocketEvent::PeerClosed));
        assert_eq!(inner.rcv_nxt, 4);
    }

    #[test]
    fn fin_out_of_order_waits_for_data() {
        let mut inner = make_inner(TcpState::Established);
        let mut out = Vec::new();
        // FIN arrives before the data preceding it.
        let fin = TcpSegment {
            flags: TcpFlags::FIN_ACK,
            seq: 5,
            ack: 0,
            window: 1 << 20,
            sack: Default::default(),
            payload: Bytes::new(),
        };
        inner.on_segment(Timestamp::ZERO, fin, &mut out);
        assert_eq!(inner.state(), TcpState::Established);
        inner.on_segment(Timestamp::ZERO, data_seg(0, b"hello"), &mut out);
        assert_eq!(inner.state(), TcpState::CloseWait);
        assert_eq!(inner.rcv_nxt, 6);
    }

    #[test]
    fn rst_resets_connection() {
        let mut inner = make_inner(TcpState::Established);
        let mut out = Vec::new();
        let rst = TcpSegment {
            flags: TcpFlags::RST,
            seq: 0,
            ack: 0,
            window: 0,
            sack: Default::default(),
            payload: Bytes::new(),
        };
        inner.on_segment(Timestamp::ZERO, rst, &mut out);
        assert_eq!(inner.state(), TcpState::Closed);
        assert!(matches!(
            inner.pending_events.last(),
            Some(SocketEvent::Reset)
        ));
        assert!(out.is_empty(), "no reply to an RST");
    }

    #[test]
    fn segment_to_closed_socket_gets_rst() {
        let mut inner = make_inner(TcpState::Closed);
        let mut out = Vec::new();
        inner.on_segment(Timestamp::ZERO, data_seg(0, b"hi"), &mut out);
        assert!(out[0].segment.flags.rst);
    }

    #[test]
    fn transmit_respects_cwnd() {
        let mut inner = make_inner(TcpState::Established);
        // Queue far more than IW10 allows.
        let big = vec![0u8; 100_000];
        inner.send_queued_bytes = big.len() as u64;
        inner.send_queue.push(Bytes::from(big));
        let mut out = Vec::new();
        inner.transmit_new(Timestamp::ZERO, &mut out);
        let sent: u64 = out.iter().map(|p| p.segment.payload.len() as u64).sum();
        assert_eq!(sent, super::super::cc::INITIAL_WINDOW);
        assert_eq!(inner.flight_size(), sent);
        // All segments MSS-sized.
        for p in &out {
            assert!(p.segment.payload.len() <= crate::packet::MSS);
        }
    }

    #[test]
    fn partial_ack_trims_retx_entry() {
        let mut inner = make_inner(TcpState::Established);
        inner.send_queued_bytes = 1000;
        inner.send_queue.push(Bytes::from(vec![7u8; 1000]));
        let mut out = Vec::new();
        inner.transmit_new(Timestamp::ZERO, &mut out);
        // Ack half of the single segment.
        let ack = TcpSegment {
            flags: TcpFlags::ACK,
            seq: 0,
            ack: 500,
            window: 1 << 20,
            sack: Default::default(),
            payload: Bytes::new(),
        };
        inner.on_segment(Timestamp::from_millis(5), ack, &mut out);
        assert_eq!(inner.snd_una, 500);
        let entry = inner.retx.get(&500).expect("trimmed entry at seq 500");
        assert_eq!(entry.segment.payload.len(), 500);
    }

    #[test]
    fn corrupted_flag_not_processed_here() {
        // Corruption filtering happens at the host; TcpInner trusts its
        // input. This test documents that contract.
        let mut inner = make_inner(TcpState::Established);
        let mut out = Vec::new();
        inner.on_segment(Timestamp::ZERO, data_seg(0, b"x"), &mut out);
        assert_eq!(inner.stats.segments_received, 1);
    }
}
