//! RFC 6298 retransmission-timeout estimation.

use mm_sim::SimDuration;

/// Smoothed RTT estimator producing RTO values per RFC 6298, with the
/// Linux-style 200 ms floor mahimahi-era kernels used.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    rto: SimDuration,
    min_rto: SimDuration,
    max_rto: SimDuration,
}

impl RttEstimator {
    /// Estimator with the given initial RTO (RFC 6298 says 1 s) and floor.
    pub fn new(initial_rto: SimDuration, min_rto: SimDuration) -> Self {
        RttEstimator {
            srtt: None,
            rttvar: SimDuration::ZERO,
            rto: initial_rto,
            min_rto,
            max_rto: SimDuration::from_secs(60),
        }
    }

    /// Defaults: initial RTO 1 s, floor 200 ms, ceiling 60 s.
    pub fn default_config() -> Self {
        RttEstimator::new(SimDuration::from_secs(1), SimDuration::from_millis(200))
    }

    /// Feed one RTT measurement (must be from a non-retransmitted segment —
    /// Karn's algorithm is the caller's responsibility).
    pub fn on_measurement(&mut self, rtt: SimDuration) {
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = SimDuration::from_nanos(rtt.as_nanos() / 2);
            }
            Some(srtt) => {
                // RTTVAR <- 3/4 RTTVAR + 1/4 |SRTT - R'|
                let err = if srtt > rtt { srtt - rtt } else { rtt - srtt };
                self.rttvar =
                    SimDuration::from_nanos((3 * self.rttvar.as_nanos() + err.as_nanos()) / 4);
                // SRTT <- 7/8 SRTT + 1/8 R'
                self.srtt = Some(SimDuration::from_nanos(
                    (7 * srtt.as_nanos() + rtt.as_nanos()) / 8,
                ));
            }
        }
        let srtt = self.srtt.unwrap();
        // Linux applies its 200 ms rto_min as a floor on the *variance
        // term*, not the total (`tcp_rto_min` bounds `rttvar` in
        // tcp_set_rto): RTO = SRTT + max(4·RTTVAR, rto_min). Flooring the
        // total instead lets RTO converge down to SRTT itself on a
        // steady path, where the slightest queueing delay then fires a
        // spurious timeout and a go-back-N storm with no actual loss.
        let var_term = self.rttvar.saturating_mul(4).max(self.min_rto);
        self.rto = (srtt + var_term).min(self.max_rto);
    }

    /// Exponential backoff after a retransmission timeout.
    pub fn backoff(&mut self) {
        self.rto = self.rto.saturating_mul(2).min(self.max_rto);
    }

    /// Drop accumulated exponential backoff by recomputing the RTO from
    /// the current estimates. Linux resets `icsk_backoff` on bare
    /// forward progress, but Linux also detects spurious timeouts
    /// (F-RTO); without that counterpart an eagerly-reset RTO fires
    /// during cellular outages and floods the recovering link with
    /// presumed-lost data (the measured regression DESIGN.md §2
    /// records). The socket therefore reaches this exclusively through
    /// the `RackTlp` tier's F-RTO machinery, on a validated
    /// spurious-timeout verdict — never on bare forward progress. No-op
    /// until a first measurement exists.
    pub fn reset_backoff(&mut self) {
        if let Some(srtt) = self.srtt {
            let var_term = self.rttvar.saturating_mul(4).max(self.min_rto);
            self.rto = (srtt + var_term).min(self.max_rto);
        }
    }

    /// Current retransmission timeout.
    pub fn rto(&self) -> SimDuration {
        self.rto
    }

    /// Smoothed RTT, if any measurement has been taken.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_measurement_initializes() {
        let mut e = RttEstimator::default_config();
        e.on_measurement(SimDuration::from_millis(100));
        assert_eq!(e.srtt(), Some(SimDuration::from_millis(100)));
        // RTO = SRTT + 4*RTTVAR = 100 + 4*50 = 300ms
        assert_eq!(e.rto(), SimDuration::from_millis(300));
    }

    #[test]
    fn steady_rtt_converges_to_srtt_plus_floor() {
        let mut e = RttEstimator::default_config();
        for _ in 0..100 {
            e.on_measurement(SimDuration::from_millis(40));
        }
        // RTTVAR decays toward 0, but the floored variance term keeps
        // RTO a full rto_min above SRTT (Linux semantics) so steady
        // paths never sit one queueing blip away from a spurious RTO.
        assert_eq!(e.rto(), SimDuration::from_millis(240));
        let srtt = e.srtt().unwrap();
        assert!((srtt.as_millis_f64() - 40.0).abs() < 1.0);
    }

    #[test]
    fn variance_raises_rto() {
        let mut e = RttEstimator::default_config();
        for i in 0..50 {
            let rtt = if i % 2 == 0 { 50 } else { 250 };
            e.on_measurement(SimDuration::from_millis(rtt));
        }
        assert!(e.rto() > SimDuration::from_millis(300), "rto {}", e.rto());
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut e = RttEstimator::default_config();
        assert_eq!(e.rto(), SimDuration::from_secs(1));
        e.backoff();
        assert_eq!(e.rto(), SimDuration::from_secs(2));
        for _ in 0..10 {
            e.backoff();
        }
        assert_eq!(e.rto(), SimDuration::from_secs(60));
    }

    #[test]
    fn rto_never_below_floor() {
        let mut e = RttEstimator::default_config();
        e.on_measurement(SimDuration::from_micros(500));
        assert!(e.rto() >= SimDuration::from_millis(200));
        assert!(e.rto() <= SimDuration::from_millis(201));
    }
}
