//! Simplified-but-complete TCP: handshake, reliable byte stream, NewReno /
//! CUBIC / BBR congestion control, RFC 6298 timers, and a tiered opt-in
//! loss recovery ladder ([`socket::RecoveryTier`]): RFC 2018/6675 SACK
//! recovery ([`sack`]: blocks, scoreboard, RFC 3042 limited transmit,
//! PRR) and RACK-TLP/F-RTO time-based loss detection ([`rack`]: RFC 8985
//! delivery-time inference, tail loss probes, RFC 5682 spurious-timeout
//! undo). The rate-control subsystem — per-connection delivery-rate
//! estimation ([`rate`]), timer-driven packet pacing ([`pacing`],
//! `TcpConfig::pacing`), and the model-based [`cc::Bbr`] controller
//! built on both — layers on without touching the loss-based defaults.
//! See [`socket`] for the state machine and DESIGN.md for the
//! documented simplifications.

pub mod cc;
pub mod pacing;
pub mod rack;
pub mod rate;
pub mod rtt;
pub mod sack;
pub mod socket;

pub use cc::{Bbr, CcAlgorithm, CongestionControl, Cubic, Reno, INITIAL_WINDOW};
pub use pacing::{Pacer, PACING_GAIN_CA, PACING_GAIN_SS};
pub use rack::{FrtoState, RackState};
pub use rate::{MinRttFilter, RateEstimator, RateSample, TxRecord, WindowedMaxBw};
pub use rtt::RttEstimator;
pub use sack::{ReceiverSack, Scoreboard, DUP_THRESH};
pub use socket::{
    RecoveryTier, SocketApp, SocketEvent, TcpConfig, TcpConfigBuilder, TcpHandle, TcpState,
    TcpStats,
};
