//! Simplified-but-complete TCP: handshake, reliable byte stream, NewReno /
//! CUBIC congestion control, RFC 6298 timers, and a tiered opt-in loss
//! recovery ladder ([`socket::RecoveryTier`]): RFC 2018/6675 SACK
//! recovery ([`sack`]: blocks, scoreboard, RFC 3042 limited transmit,
//! PRR) and RACK-TLP/F-RTO time-based loss detection ([`rack`]: RFC 8985
//! delivery-time inference, tail loss probes, RFC 5682 spurious-timeout
//! undo). See [`socket`] for the state machine and DESIGN.md for the
//! documented simplifications.

pub mod cc;
pub mod rack;
pub mod rtt;
pub mod sack;
pub mod socket;

pub use cc::{CcAlgorithm, CongestionControl, Cubic, Reno, INITIAL_WINDOW};
pub use rack::{FrtoState, RackState};
pub use rtt::RttEstimator;
pub use sack::{ReceiverSack, Scoreboard, DUP_THRESH};
pub use socket::{RecoveryTier, SocketApp, SocketEvent, TcpConfig, TcpHandle, TcpState, TcpStats};
