//! Simplified-but-complete TCP: handshake, reliable byte stream, NewReno /
//! CUBIC congestion control, RFC 6298 timers. See [`socket`] for the state
//! machine and DESIGN.md for the documented simplifications.

pub mod cc;
pub mod rtt;
pub mod socket;

pub use cc::{CcAlgorithm, CongestionControl, Cubic, Reno, INITIAL_WINDOW};
pub use rtt::RttEstimator;
pub use socket::{SocketApp, SocketEvent, TcpConfig, TcpHandle, TcpState, TcpStats};
