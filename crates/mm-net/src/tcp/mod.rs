//! Simplified-but-complete TCP: handshake, reliable byte stream, NewReno /
//! CUBIC congestion control, RFC 6298 timers, and opt-in SACK loss
//! recovery ([`sack`]: RFC 2018 blocks, RFC 6675 scoreboard, RFC 3042
//! limited transmit, PRR). See [`socket`] for the state machine and
//! DESIGN.md for the documented simplifications.

pub mod cc;
pub mod rtt;
pub mod sack;
pub mod socket;

pub use cc::{CcAlgorithm, CongestionControl, Cubic, Reno, INITIAL_WINDOW};
pub use rtt::RttEstimator;
pub use sack::{ReceiverSack, Scoreboard, DUP_THRESH};
pub use socket::{SocketApp, SocketEvent, TcpConfig, TcpHandle, TcpState, TcpStats};
