//! The packet model.
//!
//! Packets carry TCP segments between virtual hosts. Sizes follow the wire:
//! a 20-byte IP header plus 20-byte TCP header plus payload, with an MTU of
//! 1500 bytes — the unit of packet-delivery opportunities in Mahimahi's
//! trace format.

use bytes::Bytes;
use std::fmt;

use crate::addr::SocketAddr;

/// Maximum transmission unit, matching the trace format's
/// "MTU-sized packet" delivery opportunity.
pub const MTU: usize = 1500;

/// Combined IP + TCP header overhead per packet.
pub const HEADER_BYTES: usize = 40;

/// Maximum segment size: MTU minus headers.
pub const MSS: usize = MTU - HEADER_BYTES;

/// TCP header flags (only those the model uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags {
    pub syn: bool,
    pub ack: bool,
    pub fin: bool,
    pub rst: bool,
}

impl TcpFlags {
    /// A pure SYN.
    pub const SYN: TcpFlags = TcpFlags {
        syn: true,
        ack: false,
        fin: false,
        rst: false,
    };
    /// SYN+ACK.
    pub const SYN_ACK: TcpFlags = TcpFlags {
        syn: true,
        ack: true,
        fin: false,
        rst: false,
    };
    /// A pure ACK.
    pub const ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: false,
        rst: false,
    };
    /// FIN+ACK.
    pub const FIN_ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: true,
        rst: false,
    };
    /// RST.
    pub const RST: TcpFlags = TcpFlags {
        syn: false,
        ack: false,
        fin: false,
        rst: true,
    };
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if self.syn {
            parts.push("SYN");
        }
        if self.ack {
            parts.push("ACK");
        }
        if self.fin {
            parts.push("FIN");
        }
        if self.rst {
            parts.push("RST");
        }
        if parts.is_empty() {
            parts.push("-");
        }
        write!(f, "{}", parts.join("|"))
    }
}

/// One selective-acknowledgment block: bytes `[start, end)` have been
/// received above the cumulative ACK (RFC 2018).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SackBlock {
    pub start: u64,
    pub end: u64,
}

impl SackBlock {
    /// A block covering `[start, end)`. Panics on empty/inverted ranges.
    pub fn new(start: u64, end: u64) -> SackBlock {
        assert!(start < end, "SACK block [{start}, {end}) is empty");
        SackBlock { start, end }
    }

    /// Bytes covered by this block.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Blocks are never empty; kept for clippy's len-without-is-empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// A real TCP header fits at most 4 SACK blocks in its options (3 when a
/// timestamp option is present, as it was on era Linux). The model keeps
/// the era-Linux limit.
pub const MAX_SACK_BLOCKS: usize = 3;

/// The SACK portion of the segment header's option space (RFC 2018).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SackOption {
    /// On SYN / SYN-ACK: the "SACK-permitted" option — this endpoint is
    /// willing to receive SACK blocks.
    pub permitted: bool,
    /// On ACKs while the receiver holds out-of-order data: up to
    /// [`MAX_SACK_BLOCKS`] received-above-cumulative ranges, the block
    /// containing the most recently received segment first.
    pub blocks: Vec<SackBlock>,
}

impl SackOption {
    /// A SYN option advertising SACK support.
    pub fn permitted() -> SackOption {
        SackOption {
            permitted: true,
            blocks: Vec::new(),
        }
    }
}

/// A TCP segment. Sequence numbers are 64-bit byte offsets into the flow
/// (no 32-bit wraparound — a documented simulation simplification).
#[derive(Debug, Clone)]
pub struct TcpSegment {
    pub flags: TcpFlags,
    /// First byte offset carried by this segment (or the SYN/FIN's
    /// sequence slot).
    pub seq: u64,
    /// Cumulative acknowledgement: the next byte expected from the peer.
    /// Only meaningful when `flags.ack` is set.
    pub ack: u64,
    /// Receiver advertised window in bytes.
    pub window: u64,
    /// SACK option space (negotiation flag on SYNs, blocks on ACKs).
    pub sack: SackOption,
    /// Application payload.
    pub payload: Bytes,
}

impl TcpSegment {
    /// Sequence space consumed by this segment (payload plus one slot each
    /// for SYN and FIN).
    pub fn seq_len(&self) -> u64 {
        self.payload.len() as u64
            + if self.flags.syn { 1 } else { 0 }
            + if self.flags.fin { 1 } else { 0 }
    }

    /// The sequence number immediately after this segment.
    pub fn seq_end(&self) -> u64 {
        self.seq + self.seq_len()
    }
}

/// A packet in flight: a TCP segment plus addressing and bookkeeping the
/// emulation layer reads (wire size, corruption flag, unique id).
#[derive(Debug, Clone)]
pub struct Packet {
    /// Monotonically increasing per-simulation id; lets captures and tests
    /// track a specific packet through shell chains.
    pub id: u64,
    pub src: SocketAddr,
    pub dst: SocketAddr,
    pub segment: TcpSegment,
    /// Set by fault-injection devices; a corrupted packet is dropped by the
    /// receiving host (checksum failure), exactly like real TCP.
    pub corrupted: bool,
}

impl Packet {
    /// Bytes this packet occupies on the wire (headers + payload).
    pub fn wire_size(&self) -> usize {
        HEADER_BYTES + self.segment.payload.len()
    }

    /// True if this packet carries no application payload (pure control).
    pub fn is_control(&self) -> bool {
        self.segment.payload.is_empty()
    }

    /// Direction-insensitive fingerprint of the packet's 4-tuple: both
    /// directions of one connection hash identically, so captures and
    /// conformance audits can group a flow's packets without parsing
    /// addresses. FNV-1a over the (min, max)-ordered endpoints; 0 is
    /// never returned (reserved for "no flow identity").
    pub fn flow_key(&self) -> u64 {
        let endpoint = |a: &SocketAddr| ((a.ip.0 as u64) << 16) | a.port as u64;
        let (a, b) = (endpoint(&self.src), endpoint(&self.dst));
        let (lo, hi) = (a.min(b), a.max(b));
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in lo.to_le_bytes().iter().chain(hi.to_le_bytes().iter()) {
            h ^= *byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h.max(1)
    }

    /// One-line human-readable summary for captures and debugging.
    pub fn summary(&self) -> String {
        format!(
            "#{} {}->{} {} seq={} ack={} len={}",
            self.id,
            self.src,
            self.dst,
            self.segment.flags,
            self.segment.seq,
            self.segment.ack,
            self.segment.payload.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::IpAddr;

    fn pkt(payload_len: usize, flags: TcpFlags) -> Packet {
        Packet {
            id: 1,
            src: SocketAddr::new(IpAddr::new(10, 0, 0, 1), 40000),
            dst: SocketAddr::new(IpAddr::new(93, 184, 216, 34), 80),
            segment: TcpSegment {
                flags,
                seq: 100,
                ack: 0,
                window: 65535,
                sack: Default::default(),
                payload: Bytes::from(vec![0u8; payload_len]),
            },
            corrupted: false,
        }
    }

    #[test]
    fn wire_size_includes_headers() {
        assert_eq!(pkt(0, TcpFlags::ACK).wire_size(), 40);
        assert_eq!(pkt(1460, TcpFlags::ACK).wire_size(), 1500);
    }

    #[test]
    fn mss_fits_mtu() {
        assert_eq!(MSS + HEADER_BYTES, MTU);
    }

    #[test]
    fn seq_len_counts_syn_and_fin() {
        let mut p = pkt(10, TcpFlags::SYN);
        assert_eq!(p.segment.seq_len(), 11);
        p.segment.flags = TcpFlags::FIN_ACK;
        assert_eq!(p.segment.seq_len(), 11);
        p.segment.flags = TcpFlags::ACK;
        assert_eq!(p.segment.seq_len(), 10);
        assert_eq!(p.segment.seq_end(), 110);
    }

    #[test]
    fn control_packets_detected() {
        assert!(pkt(0, TcpFlags::SYN).is_control());
        assert!(!pkt(5, TcpFlags::ACK).is_control());
    }

    #[test]
    fn flags_display() {
        assert_eq!(TcpFlags::SYN_ACK.to_string(), "SYN|ACK");
        assert_eq!(TcpFlags::default().to_string(), "-");
    }

    #[test]
    fn summary_mentions_endpoints() {
        let s = pkt(3, TcpFlags::ACK).summary();
        assert!(s.contains("10.0.0.1:40000"));
        assert!(s.contains("93.184.216.34:80"));
    }
}
