//! The packet-forwarding abstraction all network elements implement.
//!
//! A [`PacketSink`] receives a packet and either consumes it (a host),
//! forwards it (a namespace router), or holds and releases it later (an
//! emulation shell). Shell chains are built by composing sinks; this is the
//! Rust rendering of Mahimahi's "arbitrarily composable shells".
//!
//! Borrow discipline (single-threaded `Rc<RefCell>` world): a sink's
//! `deliver` may process synchronously, but must drop any interior borrows
//! *before* calling the next sink. Hosts additionally defer processing
//! through the event queue, so application logic never re-enters a borrowed
//! cell.

use std::cell::RefCell;
use std::rc::Rc;

use mm_sim::{Simulator, Timestamp};

use crate::packet::Packet;

/// A consumer of packets. See module docs for the borrow discipline.
pub trait PacketSink {
    /// Hand `pkt` to this element at the current simulation time.
    fn deliver(&self, sim: &mut Simulator, pkt: Packet);
}

/// Shared handle to a sink.
pub type SinkRef = Rc<dyn PacketSink>;

/// A sink that drops everything (the default route of an unattached
/// namespace) while counting what it dropped.
#[derive(Default)]
pub struct BlackHole {
    dropped: RefCell<u64>,
}

impl BlackHole {
    /// New black hole with a zeroed counter.
    pub fn new() -> Rc<Self> {
        Rc::new(BlackHole::default())
    }

    /// Packets swallowed so far.
    pub fn dropped(&self) -> u64 {
        *self.dropped.borrow()
    }
}

impl PacketSink for BlackHole {
    fn deliver(&self, _sim: &mut Simulator, _pkt: Packet) {
        *self.dropped.borrow_mut() += 1;
    }
}

/// A sink backed by a closure — handy in tests and for custom elements.
pub struct FnSink<F: Fn(&mut Simulator, Packet)> {
    f: F,
}

impl<F: Fn(&mut Simulator, Packet) + 'static> FnSink<F> {
    /// Wrap a closure as a sink.
    pub fn new(f: F) -> Rc<Self> {
        Rc::new(FnSink { f })
    }
}

impl<F: Fn(&mut Simulator, Packet)> PacketSink for FnSink<F> {
    fn deliver(&self, sim: &mut Simulator, pkt: Packet) {
        (self.f)(sim, pkt)
    }
}

/// One observed packet in a capture.
#[derive(Debug, Clone)]
pub struct CaptureEntry {
    pub at: Timestamp,
    pub summary: String,
    pub wire_size: usize,
    pub packet_id: u64,
}

/// Shared, growable packet capture — the simulator's stand-in for a pcap
/// file. Attach via [`Tap`].
#[derive(Clone, Default)]
pub struct Capture {
    entries: Rc<RefCell<Vec<CaptureEntry>>>,
}

impl Capture {
    /// Fresh empty capture.
    pub fn new() -> Self {
        Capture::default()
    }

    /// Record one packet.
    pub fn record(&self, at: Timestamp, pkt: &Packet) {
        self.entries.borrow_mut().push(CaptureEntry {
            at,
            summary: pkt.summary(),
            wire_size: pkt.wire_size(),
            packet_id: pkt.id,
        });
    }

    /// Number of packets captured.
    pub fn len(&self) -> usize {
        self.entries.borrow().len()
    }

    /// True if nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total wire bytes captured.
    pub fn total_bytes(&self) -> u64 {
        self.entries
            .borrow()
            .iter()
            .map(|e| e.wire_size as u64)
            .sum()
    }

    /// Clone the entries out (test/report use).
    pub fn entries(&self) -> Vec<CaptureEntry> {
        self.entries.borrow().clone()
    }

    /// Render as text, one packet per line, like `tcpdump` output.
    pub fn dump(&self) -> String {
        self.entries
            .borrow()
            .iter()
            .map(|e| format!("{} {}", e.at, e.summary))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// A transparent tap: records every packet to a [`Capture`] and forwards
/// unchanged.
pub struct Tap {
    capture: Capture,
    next: SinkRef,
}

impl Tap {
    /// Insert a tap in front of `next`.
    pub fn new(capture: Capture, next: SinkRef) -> Rc<Self> {
        Rc::new(Tap { capture, next })
    }
}

impl PacketSink for Tap {
    fn deliver(&self, sim: &mut Simulator, pkt: Packet) {
        self.capture.record(sim.now(), &pkt);
        self.next.deliver(sim, pkt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{IpAddr, SocketAddr};
    use crate::packet::{TcpFlags, TcpSegment};
    use bytes::Bytes;

    fn test_packet(id: u64) -> Packet {
        Packet {
            id,
            src: SocketAddr::new(IpAddr::new(10, 0, 0, 1), 1234),
            dst: SocketAddr::new(IpAddr::new(10, 0, 0, 2), 80),
            segment: TcpSegment {
                flags: TcpFlags::ACK,
                seq: 0,
                ack: 0,
                window: 65535,
                sack: Default::default(),
                payload: Bytes::from_static(b"hello"),
            },
            corrupted: false,
        }
    }

    #[test]
    fn blackhole_counts() {
        let mut sim = Simulator::new();
        let bh = BlackHole::new();
        bh.deliver(&mut sim, test_packet(1));
        bh.deliver(&mut sim, test_packet(2));
        assert_eq!(bh.dropped(), 2);
    }

    #[test]
    fn fn_sink_invokes_closure() {
        let mut sim = Simulator::new();
        let seen = Rc::new(RefCell::new(Vec::new()));
        let s = seen.clone();
        let sink = FnSink::new(move |_, p: Packet| s.borrow_mut().push(p.id));
        sink.deliver(&mut sim, test_packet(7));
        assert_eq!(*seen.borrow(), vec![7]);
    }

    #[test]
    fn tap_records_and_forwards() {
        let mut sim = Simulator::new();
        let cap = Capture::new();
        let bh = BlackHole::new();
        let tap = Tap::new(cap.clone(), bh.clone());
        tap.deliver(&mut sim, test_packet(3));
        assert_eq!(cap.len(), 1);
        assert_eq!(bh.dropped(), 1);
        assert_eq!(cap.total_bytes(), 45); // 40 header + 5 payload
        assert!(cap.dump().contains("#3"));
    }

    #[test]
    fn capture_entries_clone_out() {
        let mut sim = Simulator::new();
        let cap = Capture::new();
        let tap = Tap::new(cap.clone(), BlackHole::new());
        for i in 0..5 {
            tap.deliver(&mut sim, test_packet(i));
        }
        let entries = cap.entries();
        assert_eq!(entries.len(), 5);
        assert_eq!(entries[4].packet_id, 4);
    }
}
