//! Virtual network namespaces and routing between them.
//!
//! Mahimahi's isolation story: each shell runs inside a private Linux
//! network namespace, connected to its parent by a veth pair, so traffic
//! inside one shell can never touch the host network or another shell.
//! Here a [`Namespace`] is the simulated equivalent: it owns a set of hosts
//! (by IP), optional child namespaces (reached through shell processor
//! chains), and an optional parent uplink.
//!
//! Routing, per packet, at each namespace:
//! 1. destination is a local host → deliver locally;
//! 2. destination belongs to a (transitive) child → send down that child's
//!    downlink chain;
//! 3. otherwise, if attached to a parent → send up the uplink chain;
//! 4. otherwise count it as unroutable and drop.
//!
//! Per-namespace counters make the paper's isolation property directly
//! testable: two sibling namespaces never exchange packets.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use mm_sim::Simulator;

use crate::addr::IpAddr;
use crate::packet::Packet;
use crate::sink::{PacketSink, SinkRef};

/// Traffic counters kept by every namespace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NsCounters {
    /// Packets delivered to hosts in this namespace.
    pub delivered_local: u64,
    /// Packets routed down into a child namespace.
    pub forwarded_down: u64,
    /// Packets routed up to the parent namespace.
    pub forwarded_up: u64,
    /// Packets with no route (dropped).
    pub unroutable: u64,
}

impl NsCounters {
    /// Total packets this namespace's router has seen.
    pub fn total(&self) -> u64 {
        self.delivered_local + self.forwarded_down + self.forwarded_up + self.unroutable
    }
}

struct NsInner {
    name: String,
    hosts: HashMap<IpAddr, SinkRef>,
    /// Destination IP → entry sink of the downlink chain toward the child
    /// namespace owning that IP (transitively).
    child_routes: HashMap<IpAddr, SinkRef>,
    /// Entry sink of the uplink chain toward the parent, if attached.
    uplink: Option<SinkRef>,
    /// Parent namespace, for propagating host registrations upward.
    parent: Option<Namespace>,
    /// The downlink entry the parent uses to reach this namespace; stored so
    /// that hosts registered after attachment can propagate routes upward.
    downlink_entry_hint: Option<SinkRef>,
    counters: NsCounters,
}

/// A virtual network namespace. Cloning yields another handle to the same
/// namespace.
#[derive(Clone)]
pub struct Namespace {
    inner: Rc<RefCell<NsInner>>,
}

impl Namespace {
    /// Create a root (detached) namespace.
    pub fn root(name: &str) -> Self {
        Namespace {
            inner: Rc::new(RefCell::new(NsInner {
                name: name.to_string(),
                hosts: HashMap::new(),
                child_routes: HashMap::new(),
                uplink: None,
                parent: None,
                downlink_entry_hint: None,
                counters: NsCounters::default(),
            })),
        }
    }

    /// The namespace's name (diagnostics only).
    pub fn name(&self) -> String {
        self.inner.borrow().name.clone()
    }

    /// Snapshot of this namespace's counters.
    pub fn counters(&self) -> NsCounters {
        self.inner.borrow().counters
    }

    /// Register a host's delivery sink under `ip`. The registration
    /// propagates to ancestors so packets from anywhere in the tree can
    /// route here. Panics if the IP is already taken in this namespace —
    /// two hosts claiming one address is a configuration bug.
    pub fn add_host(&self, ip: IpAddr, sink: SinkRef) {
        {
            let mut inner = self.inner.borrow_mut();
            assert!(
                !inner.hosts.contains_key(&ip),
                "namespace {}: duplicate host {ip}",
                inner.name
            );
            inner.hosts.insert(ip, sink);
        }
        self.propagate_route_up(ip);
    }

    /// Remove a host (e.g. when a shell tears down). No-op if absent.
    pub fn remove_host(&self, ip: IpAddr) {
        self.inner.borrow_mut().hosts.remove(&ip);
        // Ancestor child_routes entries are left in place; they become
        // unroutable at this namespace, which the counters surface.
    }

    /// True if `ip` is a host directly inside this namespace.
    pub fn has_host(&self, ip: IpAddr) -> bool {
        self.inner.borrow().hosts.contains_key(&ip)
    }

    /// Attach `child` under this namespace.
    ///
    /// * `uplink_entry`: sink receiving child→parent packets; the chain must
    ///   terminate at this namespace's [`Namespace::router`].
    /// * `downlink_entry`: sink receiving parent→child packets; the chain
    ///   must terminate at the child's router.
    ///
    /// All addresses already registered inside `child` are routed through
    /// `downlink_entry`, as are any registered later.
    pub fn attach_child(&self, child: &Namespace, uplink_entry: SinkRef, downlink_entry: SinkRef) {
        {
            let mut c = child.inner.borrow_mut();
            assert!(c.parent.is_none(), "namespace {} already attached", c.name);
            c.uplink = Some(uplink_entry);
            c.parent = Some(self.clone());
        }
        // Route all of the child's current addresses (its own hosts and its
        // transitive children) through the downlink chain.
        let addrs: Vec<IpAddr> = {
            let c = child.inner.borrow();
            c.hosts
                .keys()
                .copied()
                .chain(c.child_routes.keys().copied())
                .collect()
        };
        for ip in addrs {
            self.register_child_route(ip, downlink_entry.clone());
        }
        // Remember the entry for future registrations from this child.
        child.inner.borrow_mut().downlink_entry_hint = Some(downlink_entry);
    }

    fn register_child_route(&self, ip: IpAddr, via: SinkRef) {
        {
            let mut inner = self.inner.borrow_mut();
            inner.child_routes.insert(ip, via);
        }
        self.propagate_route_up(ip);
    }

    fn propagate_route_up(&self, ip: IpAddr) {
        let (parent, hint) = {
            let inner = self.inner.borrow();
            (inner.parent.clone(), inner.downlink_entry_hint.clone())
        };
        if let (Some(parent), Some(hint)) = (parent, hint) {
            parent.register_child_route(ip, hint);
        }
    }

    /// The router sink for this namespace: where hosts send egress packets
    /// and where shell chains terminate.
    pub fn router(&self) -> SinkRef {
        Rc::new(Router { ns: self.clone() })
    }

    fn route(&self, sim: &mut Simulator, pkt: Packet) {
        let (next, kind) = {
            let mut inner = self.inner.borrow_mut();
            if let Some(host) = inner.hosts.get(&pkt.dst.ip).cloned() {
                inner.counters.delivered_local += 1;
                (Some(host), "local")
            } else if let Some(down) = inner.child_routes.get(&pkt.dst.ip).cloned() {
                inner.counters.forwarded_down += 1;
                (Some(down), "down")
            } else if let Some(up) = inner.uplink.clone() {
                inner.counters.forwarded_up += 1;
                (Some(up), "up")
            } else {
                inner.counters.unroutable += 1;
                (None, "drop")
            }
        };
        let _ = kind;
        if let Some(next) = next {
            next.deliver(sim, pkt);
        }
    }
}

// `downlink_entry_hint` lives on NsInner but is set post-construction; add
// the field via a second impl block to keep the constructor readable.
struct Router {
    ns: Namespace,
}

impl PacketSink for Router {
    fn deliver(&self, sim: &mut Simulator, pkt: Packet) {
        self.ns.route(sim, pkt);
    }
}

// -- NsInner needs the hint field; declared here to keep related code close.
impl NsInner {
    #[allow(dead_code)]
    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::SocketAddr;
    use crate::packet::{TcpFlags, TcpSegment};
    use crate::sink::{BlackHole, FnSink};
    use bytes::Bytes;
    use std::cell::RefCell;

    fn pkt(dst: IpAddr) -> Packet {
        Packet {
            id: 0,
            src: SocketAddr::new(IpAddr::new(10, 0, 0, 1), 1000),
            dst: SocketAddr::new(dst, 80),
            segment: TcpSegment {
                flags: TcpFlags::ACK,
                seq: 0,
                ack: 0,
                window: 0,
                sack: Default::default(),
                payload: Bytes::new(),
            },
            corrupted: false,
        }
    }

    fn collector() -> (Rc<RefCell<Vec<IpAddr>>>, SinkRef) {
        let seen = Rc::new(RefCell::new(Vec::new()));
        let s = seen.clone();
        let sink = FnSink::new(move |_, p: Packet| s.borrow_mut().push(p.dst.ip));
        (seen, sink)
    }

    #[test]
    fn local_delivery() {
        let mut sim = Simulator::new();
        let ns = Namespace::root("test");
        let (seen, sink) = collector();
        let ip = IpAddr::new(10, 0, 0, 2);
        ns.add_host(ip, sink);
        ns.router().deliver(&mut sim, pkt(ip));
        assert_eq!(*seen.borrow(), vec![ip]);
        assert_eq!(ns.counters().delivered_local, 1);
    }

    #[test]
    fn unroutable_dropped_and_counted() {
        let mut sim = Simulator::new();
        let ns = Namespace::root("test");
        ns.router().deliver(&mut sim, pkt(IpAddr::new(8, 8, 8, 8)));
        assert_eq!(ns.counters().unroutable, 1);
        assert_eq!(ns.counters().delivered_local, 0);
    }

    #[test]
    #[should_panic(expected = "duplicate host")]
    fn duplicate_host_panics() {
        let ns = Namespace::root("test");
        let ip = IpAddr::new(10, 0, 0, 2);
        ns.add_host(ip, BlackHole::new());
        ns.add_host(ip, BlackHole::new());
    }

    #[test]
    fn child_to_parent_routing() {
        let mut sim = Simulator::new();
        let parent = Namespace::root("parent");
        let child = Namespace::root("child");
        let server_ip = IpAddr::new(93, 184, 216, 34);
        let (seen, sink) = collector();
        parent.add_host(server_ip, sink);
        // Plain chains: child uplink goes straight to the parent router,
        // downlink straight to the child router.
        parent.attach_child(&child, parent.router(), child.router());

        child.router().deliver(&mut sim, pkt(server_ip));
        assert_eq!(*seen.borrow(), vec![server_ip]);
        assert_eq!(child.counters().forwarded_up, 1);
        assert_eq!(parent.counters().delivered_local, 1);
    }

    #[test]
    fn parent_to_child_routing() {
        let mut sim = Simulator::new();
        let parent = Namespace::root("parent");
        let child = Namespace::root("child");
        let browser_ip = IpAddr::new(100, 64, 0, 2);
        let (seen, sink) = collector();
        child.add_host(browser_ip, sink);
        parent.attach_child(&child, parent.router(), child.router());

        parent.router().deliver(&mut sim, pkt(browser_ip));
        assert_eq!(*seen.borrow(), vec![browser_ip]);
        assert_eq!(parent.counters().forwarded_down, 1);
        assert_eq!(child.counters().delivered_local, 1);
    }

    #[test]
    fn host_added_after_attach_is_routable() {
        let mut sim = Simulator::new();
        let parent = Namespace::root("parent");
        let child = Namespace::root("child");
        parent.attach_child(&child, parent.router(), child.router());
        let late_ip = IpAddr::new(100, 64, 0, 9);
        let (seen, sink) = collector();
        child.add_host(late_ip, sink);
        parent.router().deliver(&mut sim, pkt(late_ip));
        assert_eq!(*seen.borrow(), vec![late_ip]);
    }

    #[test]
    fn grandchild_routes_transitively() {
        let mut sim = Simulator::new();
        let root = Namespace::root("root");
        let mid = Namespace::root("mid");
        let leaf = Namespace::root("leaf");
        root.attach_child(&mid, root.router(), mid.router());
        mid.attach_child(&leaf, mid.router(), leaf.router());
        let deep_ip = IpAddr::new(100, 64, 1, 1);
        let (seen, sink) = collector();
        leaf.add_host(deep_ip, sink);
        root.router().deliver(&mut sim, pkt(deep_ip));
        assert_eq!(*seen.borrow(), vec![deep_ip]);
        assert_eq!(mid.counters().forwarded_down, 1);

        // And from the leaf up to a root host.
        let (rseen, rsink) = collector();
        let root_ip = IpAddr::new(1, 1, 1, 1);
        root.add_host(root_ip, rsink);
        leaf.router().deliver(&mut sim, pkt(root_ip));
        assert_eq!(*rseen.borrow(), vec![root_ip]);
    }

    #[test]
    fn siblings_are_isolated() {
        let mut sim = Simulator::new();
        let root = Namespace::root("root");
        let a = Namespace::root("a");
        let b = Namespace::root("b");
        root.attach_child(&a, root.router(), a.router());
        root.attach_child(&b, root.router(), b.router());
        let a_ip = IpAddr::new(100, 64, 0, 1);
        let b_ip = IpAddr::new(100, 65, 0, 1);
        let (a_seen, a_sink) = collector();
        let (b_seen, b_sink) = collector();
        a.add_host(a_ip, a_sink);
        b.add_host(b_ip, b_sink);

        // a sends to b: routed up to root, then down into b — b's host sees
        // it (namespaces route, like IP), but a's counters show the packet
        // left a; nothing in b leaks into a.
        a.router().deliver(&mut sim, pkt(b_ip));
        assert_eq!(*b_seen.borrow(), vec![b_ip]);
        assert!(a_seen.borrow().is_empty());
        assert_eq!(a.counters().delivered_local, 0);
        assert_eq!(b.counters().delivered_local, 1);
    }

    #[test]
    #[should_panic(expected = "already attached")]
    fn double_attach_panics() {
        let p1 = Namespace::root("p1");
        let p2 = Namespace::root("p2");
        let c = Namespace::root("c");
        p1.attach_child(&c, p1.router(), c.router());
        p2.attach_child(&c, p2.router(), c.router());
    }
}
