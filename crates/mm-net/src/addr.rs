//! Addressing: virtual IPv4 addresses, socket addresses, and origins.
//!
//! ReplayShell's transparency guarantee — servers bound to *the same IP and
//! port as their recorded counterparts* — makes addresses first-class data
//! in the store format, so these types carry serde derives.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A virtual IPv4 address.
///
/// A thin wrapper over the 32-bit value rather than `std::net::Ipv4Addr`
/// so we control ordering, serde encoding, and arithmetic (sequential
/// allocation of server addresses).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct IpAddr(pub u32);

impl IpAddr {
    /// The unspecified address 0.0.0.0.
    pub const UNSPECIFIED: IpAddr = IpAddr(0);

    /// Loopback 127.0.0.1.
    pub const LOOPBACK: IpAddr = IpAddr(0x7f00_0001);

    /// Construct from dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        IpAddr(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// The four octets, most significant first.
    pub const fn octets(self) -> [u8; 4] {
        [
            (self.0 >> 24) as u8,
            (self.0 >> 16) as u8,
            (self.0 >> 8) as u8,
            self.0 as u8,
        ]
    }

    /// The next sequential address (used by the replay allocator when
    /// assigning virtual interfaces).
    pub const fn successor(self) -> IpAddr {
        IpAddr(self.0.wrapping_add(1))
    }

    /// True for 0.0.0.0.
    pub const fn is_unspecified(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for IpAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

impl fmt::Debug for IpAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Error parsing an address from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddrParseError(pub String);

impl fmt::Display for AddrParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid address: {}", self.0)
    }
}

impl std::error::Error for AddrParseError {}

impl FromStr for IpAddr {
    type Err = AddrParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split('.').collect();
        if parts.len() != 4 {
            return Err(AddrParseError(s.into()));
        }
        let mut octets = [0u8; 4];
        for (i, p) in parts.iter().enumerate() {
            octets[i] = p.parse().map_err(|_| AddrParseError(s.into()))?;
        }
        Ok(IpAddr::new(octets[0], octets[1], octets[2], octets[3]))
    }
}

/// An (IP, port) endpoint.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SocketAddr {
    pub ip: IpAddr,
    pub port: u16,
}

impl SocketAddr {
    /// Construct from parts.
    pub const fn new(ip: IpAddr, port: u16) -> Self {
        SocketAddr { ip, port }
    }
}

impl fmt::Display for SocketAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.ip, self.port)
    }
}

impl fmt::Debug for SocketAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl FromStr for SocketAddr {
    type Err = AddrParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (ip, port) = s.rsplit_once(':').ok_or_else(|| AddrParseError(s.into()))?;
        Ok(SocketAddr {
            ip: ip.parse()?,
            port: port.parse().map_err(|_| AddrParseError(s.into()))?,
        })
    }
}

/// An origin server identity: the distinct `ip:port` pair the paper's
/// ReplayShell spawns one Apache instance for. Identical to [`SocketAddr`]
/// in content but kept as its own type in store files for clarity.
pub type Origin = SocketAddr;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips() {
        let a = IpAddr::new(93, 184, 216, 34);
        assert_eq!(a.to_string(), "93.184.216.34");
        assert_eq!("93.184.216.34".parse::<IpAddr>().unwrap(), a);
    }

    #[test]
    fn socket_addr_round_trips() {
        let sa = SocketAddr::new(IpAddr::new(10, 0, 0, 1), 443);
        assert_eq!(sa.to_string(), "10.0.0.1:443");
        assert_eq!("10.0.0.1:443".parse::<SocketAddr>().unwrap(), sa);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("1.2.3".parse::<IpAddr>().is_err());
        assert!("1.2.3.256".parse::<IpAddr>().is_err());
        assert!("a.b.c.d".parse::<IpAddr>().is_err());
        assert!("1.2.3.4".parse::<SocketAddr>().is_err());
        assert!("1.2.3.4:99999".parse::<SocketAddr>().is_err());
    }

    #[test]
    fn successor_increments() {
        let a = IpAddr::new(10, 0, 0, 255);
        assert_eq!(a.successor(), IpAddr::new(10, 0, 1, 0));
    }

    #[test]
    fn octets_round_trip() {
        let a = IpAddr::new(1, 2, 3, 4);
        assert_eq!(a.octets(), [1, 2, 3, 4]);
    }

    #[test]
    fn loopback_and_unspecified() {
        assert_eq!(IpAddr::LOOPBACK.to_string(), "127.0.0.1");
        assert!(IpAddr::UNSPECIFIED.is_unspecified());
        assert!(!IpAddr::LOOPBACK.is_unspecified());
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(IpAddr::new(10, 0, 0, 1) < IpAddr::new(10, 0, 0, 2));
        assert!(IpAddr::new(9, 255, 255, 255) < IpAddr::new(10, 0, 0, 0));
    }
}
