//! Virtual hosts: socket demultiplexing, listeners, ephemeral ports, and
//! optional per-host processing noise (the "two machines" of Table 1).

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use mm_sim::dist::Distribution;
use mm_sim::{RngStream, SimDuration, Simulator, TimerMux};

use crate::addr::{IpAddr, SocketAddr};
use crate::conn::{ConnId, ConnTable};
use crate::fabric::Namespace;
use crate::packet::{Packet, TcpFlags, TcpSegment};
use crate::sink::{BlackHole, PacketSink, SinkRef};
use crate::tcp::socket::{SocketApp, TcpConfig, TcpHandle};

/// Generates simulation-unique packet ids. One per experiment world,
/// shared by every host.
#[derive(Clone, Default)]
pub struct PacketIdGen(Rc<Cell<u64>>);

impl PacketIdGen {
    /// Fresh generator starting at zero.
    pub fn new() -> Self {
        PacketIdGen::default()
    }

    pub(crate) fn shared(&self) -> Rc<Cell<u64>> {
        self.0.clone()
    }
}

/// Accepts inbound connections on a listening port.
pub trait Listener {
    /// A new connection completed its SYN; return the application that
    /// will own it. Called before the handshake finishes, so the app's
    /// first event is `Connected`.
    fn on_connection(&self, sim: &mut Simulator, handle: TcpHandle) -> Rc<dyn SocketApp>;
}

/// Per-host counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct HostStats {
    pub packets_in: u64,
    pub packets_out: u64,
    pub corrupted_dropped: u64,
    pub rst_sent: u64,
    pub connections_accepted: u64,
    pub connections_initiated: u64,
}

/// Per-packet processing noise: models host scheduling/timer jitter so two
/// "machines" with different noise seeds produce slightly different but
/// statistically equivalent timings (Table 1).
pub struct HostNoise {
    rng: RngStream,
    dist: Box<dyn Distribution>,
}

impl HostNoise {
    /// `dist` samples a delay in microseconds.
    pub fn new(rng: RngStream, dist: Box<dyn Distribution>) -> Self {
        HostNoise { rng, dist }
    }

    fn sample(&mut self) -> SimDuration {
        let us = self.dist.sample(&mut self.rng).max(0.0);
        SimDuration::from_nanos((us * 1000.0) as u64)
    }
}

struct HostInner {
    ip: IpAddr,
    egress: SinkRef,
    /// Live sockets in a flat slab (stable generation-checked [`ConnId`]s
    /// plus the `(local, remote)` demux map) — point lookups only, so the
    /// storage layout is invisible to event ordering.
    sockets: ConnTable,
    listeners: HashMap<u16, Rc<dyn Listener>>,
    /// Transparent-intercept listener: accepts a SYN to *any* (ip, port),
    /// binding the socket to the packet's original destination — the
    /// simulated equivalent of an iptables REDIRECT + SO_ORIGINAL_DST
    /// man-in-the-middle, which is how RecordShell's proxy operates.
    catch_all: Option<Rc<dyn Listener>>,
    next_ephemeral: u16,
    ids: PacketIdGen,
    config: TcpConfig,
    /// When set, every new socket's timers share this mux instead of each
    /// registering into the simulator's global heap. Off by default: the
    /// mux batches same-instant firings, which shifts event interleaving
    /// relative to the pre-mux baselines; fleet worlds opt in.
    timer_mux: Option<TimerMux>,
    noise: Option<HostNoise>,
    /// Dispatch-ordering floor: host noise must never reorder a host's
    /// inbound packet stream (real scheduler jitter delays the whole
    /// softirq queue, it does not swap packets), so dispatch times are
    /// monotone per host.
    last_dispatch_at: mm_sim::Timestamp,
    stats: HostStats,
}

/// A virtual host. Cloning yields another handle to the same host.
#[derive(Clone)]
pub struct Host {
    inner: Rc<RefCell<HostInner>>,
}

impl Host {
    /// Create a host with the given address. It must be attached to a
    /// namespace (or given an egress) before its packets go anywhere.
    pub fn new(ip: IpAddr, ids: PacketIdGen) -> Self {
        Host {
            inner: Rc::new(RefCell::new(HostInner {
                ip,
                egress: BlackHole::new(),
                sockets: ConnTable::new(),
                listeners: HashMap::new(),
                catch_all: None,
                next_ephemeral: 32768,
                ids,
                config: TcpConfig::default(),
                timer_mux: None,
                noise: None,
                last_dispatch_at: mm_sim::Timestamp::ZERO,
                stats: HostStats::default(),
            })),
        }
    }

    /// Create and attach to `ns` in one step.
    pub fn new_in(ip: IpAddr, ids: PacketIdGen, ns: &Namespace) -> Self {
        let host = Host::new(ip, ids);
        host.attach(ns);
        host
    }

    /// This host's IP address.
    pub fn ip(&self) -> IpAddr {
        self.inner.borrow().ip
    }

    /// Counters snapshot.
    pub fn stats(&self) -> HostStats {
        self.inner.borrow().stats
    }

    /// Replace the default TCP configuration used for new sockets.
    pub fn set_tcp_config(&self, config: TcpConfig) {
        self.inner.borrow_mut().config = config;
    }

    /// Current default TCP configuration.
    pub fn tcp_config(&self) -> TcpConfig {
        self.inner.borrow().config.clone()
    }

    /// Install per-packet processing noise (host profile).
    pub fn set_noise(&self, noise: HostNoise) {
        self.inner.borrow_mut().noise = Some(noise);
    }

    /// Route every *subsequently created* socket's timers through one
    /// shared per-host [`TimerMux`]. Idempotent. Population-scale worlds
    /// enable this on all hosts; single-load baselines leave it off so
    /// their event interleaving (and BENCH outputs) stay byte-identical.
    pub fn enable_timer_mux(&self) {
        let mut inner = self.inner.borrow_mut();
        if inner.timer_mux.is_none() {
            inner.timer_mux = Some(TimerMux::new());
        }
    }

    /// The shared timer mux, if enabled.
    pub fn timer_mux(&self) -> Option<TimerMux> {
        self.inner.borrow().timer_mux.clone()
    }

    /// Register this host in a namespace: sets the egress to the
    /// namespace's router and registers the delivery sink.
    pub fn attach(&self, ns: &Namespace) {
        self.inner.borrow_mut().egress = ns.router();
        ns.add_host(self.ip(), self.sink());
    }

    /// Point this host's egress at an arbitrary sink (used by proxy hosts
    /// that inject traffic into a namespace they are not addressed in).
    pub fn set_egress(&self, sink: SinkRef) {
        self.inner.borrow_mut().egress = sink;
    }

    /// The sink through which the network delivers packets to this host.
    pub fn sink(&self) -> SinkRef {
        Rc::new(HostSink { host: self.clone() })
    }

    /// Listen for connections on `port`. Panics if the port is taken.
    pub fn listen(&self, port: u16, listener: Rc<dyn Listener>) {
        let mut inner = self.inner.borrow_mut();
        assert!(
            !inner.listeners.contains_key(&port),
            "host {}: port {port} already listening",
            inner.ip
        );
        inner.listeners.insert(port, listener);
    }

    /// Install a transparent-intercept listener: every inbound SYN is
    /// accepted regardless of destination address, with the socket bound
    /// to the original destination (MITM proxying).
    pub fn listen_any(&self, listener: Rc<dyn Listener>) {
        let mut inner = self.inner.borrow_mut();
        assert!(inner.catch_all.is_none(), "catch-all listener already set");
        inner.catch_all = Some(listener);
    }

    /// Stop listening on `port`.
    pub fn unlisten(&self, port: u16) {
        self.inner.borrow_mut().listeners.remove(&port);
    }

    /// Open a connection to `remote`; `app` receives socket events.
    pub fn connect(
        &self,
        sim: &mut Simulator,
        remote: SocketAddr,
        app: Rc<dyn SocketApp>,
    ) -> TcpHandle {
        let (local, egress, ids, config, mux) = {
            let mut inner = self.inner.borrow_mut();
            let port = inner.alloc_ephemeral(remote);
            inner.stats.connections_initiated += 1;
            (
                SocketAddr::new(inner.ip, port),
                inner.egress.clone(),
                inner.ids.shared(),
                inner.config.clone(),
                inner.timer_mux.clone(),
            )
        };
        let handle = TcpHandle::connect(sim, local, remote, config, egress, ids, app, mux.as_ref());
        self.inner
            .borrow_mut()
            .sockets
            .insert((local, remote), handle.clone());
        handle
    }

    /// Number of live sockets (tests/diagnostics).
    pub fn socket_count(&self) -> usize {
        self.inner.borrow().sockets.len()
    }

    /// Live connection ids, in slot order (diagnostics; pair with
    /// [`Host::socket`]).
    pub fn socket_ids(&self) -> Vec<ConnId> {
        self.inner.borrow().sockets.ids().collect()
    }

    /// The socket for a [`ConnId`], if that incarnation is still live.
    pub fn socket(&self, id: ConnId) -> Option<TcpHandle> {
        self.inner.borrow().sockets.get(id).cloned()
    }

    /// Drop closed sockets from the connection table.
    pub fn reap_closed(&self) {
        self.inner
            .borrow_mut()
            .sockets
            .retain(|h| h.state() != crate::tcp::socket::TcpState::Closed);
    }

    fn dispatch(&self, sim: &mut Simulator, pkt: Packet) {
        enum Action {
            Socket(TcpHandle),
            Accept(Rc<dyn Listener>),
            Rst,
            Drop,
        }
        let action = {
            let mut inner = self.inner.borrow_mut();
            inner.stats.packets_in += 1;
            if pkt.corrupted {
                inner.stats.corrupted_dropped += 1;
                Action::Drop
            } else if pkt.dst.ip != inner.ip && inner.catch_all.is_none() {
                // Misdelivered packet (shouldn't happen with correct
                // routing); drop silently but count it.
                Action::Drop
            } else if let Some(h) = inner.sockets.get_by_addr(&(pkt.dst, pkt.src)) {
                Action::Socket(h.clone())
            } else if pkt.segment.flags.syn && !pkt.segment.flags.ack {
                match inner.listeners.get(&pkt.dst.port) {
                    Some(l) => Action::Accept(l.clone()),
                    None => match &inner.catch_all {
                        Some(l) => Action::Accept(l.clone()),
                        None => Action::Rst,
                    },
                }
            } else if pkt.segment.flags.rst {
                Action::Drop
            } else {
                Action::Rst
            }
        };
        match action {
            Action::Drop => {}
            Action::Socket(h) => h.handle_segment(sim, pkt.segment),
            Action::Accept(listener) => self.accept(sim, listener, pkt),
            Action::Rst => {
                let (egress, id) = {
                    let mut inner = self.inner.borrow_mut();
                    inner.stats.rst_sent += 1;
                    inner.stats.packets_out += 1;
                    let id = inner.ids.shared().get();
                    inner.ids.shared().set(id + 1);
                    (inner.egress.clone(), id)
                };
                let rst = Packet {
                    id,
                    src: pkt.dst,
                    dst: pkt.src,
                    segment: TcpSegment {
                        flags: TcpFlags::RST,
                        seq: pkt.segment.ack,
                        ack: pkt.segment.seq_end(),
                        window: 0,
                        sack: Default::default(),
                        payload: bytes::Bytes::new(),
                    },
                    corrupted: false,
                };
                egress.deliver(sim, rst);
            }
        }
    }

    fn accept(&self, sim: &mut Simulator, listener: Rc<dyn Listener>, pkt: Packet) {
        let (egress, ids, config, mux) = {
            let mut inner = self.inner.borrow_mut();
            inner.stats.connections_accepted += 1;
            (
                inner.egress.clone(),
                inner.ids.shared(),
                inner.config.clone(),
                inner.timer_mux.clone(),
            )
        };
        // Two-phase accept: the placeholder app is replaced before any
        // event can fire (SYN-ACK produces no app events).
        struct NoApp;
        impl SocketApp for NoApp {
            fn on_event(
                &self,
                _: &mut Simulator,
                _: &TcpHandle,
                _: crate::tcp::socket::SocketEvent,
            ) {
            }
        }
        let handle = TcpHandle::accept(
            sim,
            pkt.dst,
            pkt.src,
            &pkt.segment,
            config,
            egress,
            ids,
            Rc::new(NoApp),
            mux.as_ref(),
        );
        let app = listener.on_connection(sim, handle.clone());
        handle.set_app(app);
        self.inner
            .borrow_mut()
            .sockets
            .insert((pkt.dst, pkt.src), handle);
    }
}

impl HostInner {
    fn alloc_ephemeral(&mut self, remote: SocketAddr) -> u16 {
        // Linear probe from the cursor; 28k ports is far more than any
        // page load needs.
        for _ in 0..28_000 {
            let port = self.next_ephemeral;
            self.next_ephemeral = if self.next_ephemeral >= 60_999 {
                32768
            } else {
                self.next_ephemeral + 1
            };
            let local = SocketAddr::new(self.ip, port);
            if !self.sockets.contains_addr(&(local, remote)) && !self.listeners.contains_key(&port)
            {
                return port;
            }
        }
        panic!("host {}: ephemeral ports exhausted", self.ip);
    }
}

struct HostSink {
    host: Host,
}

impl PacketSink for HostSink {
    fn deliver(&self, sim: &mut Simulator, pkt: Packet) {
        // Defer through the event queue so application logic never runs
        // inside another element's borrow, applying host noise if any.
        let host = self.host.clone();
        let at = {
            let mut inner = self.host.inner.borrow_mut();
            let delay = match inner.noise.as_mut() {
                Some(n) => n.sample(),
                None => SimDuration::ZERO,
            };
            let at = (sim.now() + delay).max(inner.last_dispatch_at);
            inner.last_dispatch_at = at;
            at
        };
        sim.schedule_at_tagged("sim_events_host_total", at, move |sim| {
            host.dispatch(sim, pkt)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::socket::{SocketEvent, TcpState};
    use bytes::Bytes;

    /// An app that records events and can echo or respond.
    struct Recorder {
        events: Rc<RefCell<Vec<String>>>,
        data: Rc<RefCell<Vec<u8>>>,
    }

    type SharedLog = Rc<RefCell<Vec<String>>>;
    type SharedBuf = Rc<RefCell<Vec<u8>>>;

    impl Recorder {
        fn new() -> (Rc<Self>, SharedLog, SharedBuf) {
            let events = Rc::new(RefCell::new(Vec::new()));
            let data = Rc::new(RefCell::new(Vec::new()));
            (
                Rc::new(Recorder {
                    events: events.clone(),
                    data: data.clone(),
                }),
                events,
                data,
            )
        }
    }

    impl SocketApp for Recorder {
        fn on_event(&self, _sim: &mut Simulator, _h: &TcpHandle, ev: SocketEvent) {
            match ev {
                SocketEvent::Connected => self.events.borrow_mut().push("connected".into()),
                SocketEvent::Data(b) => {
                    self.events.borrow_mut().push(format!("data:{}", b.len()));
                    self.data.borrow_mut().extend_from_slice(&b);
                }
                SocketEvent::PeerClosed => self.events.borrow_mut().push("peer_closed".into()),
                SocketEvent::Reset => self.events.borrow_mut().push("reset".into()),
                SocketEvent::SendQueueDrained => {}
            }
        }
    }

    /// Echo server listener: replies with whatever it receives.
    struct EchoListener;
    impl Listener for EchoListener {
        fn on_connection(&self, _sim: &mut Simulator, _h: TcpHandle) -> Rc<dyn SocketApp> {
            struct Echo;
            impl SocketApp for Echo {
                fn on_event(&self, sim: &mut Simulator, h: &TcpHandle, ev: SocketEvent) {
                    if let SocketEvent::Data(b) = ev {
                        h.send(sim, b);
                    }
                }
            }
            Rc::new(Echo)
        }
    }

    fn two_host_world() -> (Simulator, Namespace, Host, Host) {
        let sim = Simulator::new();
        let ns = Namespace::root("world");
        let ids = PacketIdGen::new();
        let client = Host::new_in(IpAddr::new(10, 0, 0, 1), ids.clone(), &ns);
        let server = Host::new_in(IpAddr::new(10, 0, 0, 2), ids, &ns);
        (sim, ns, client, server)
    }

    #[test]
    fn connect_handshake_completes() {
        let (mut sim, _ns, client, server) = two_host_world();
        server.listen(80, Rc::new(EchoListener));
        let (app, events, _) = Recorder::new();
        let remote = SocketAddr::new(server.ip(), 80);
        let h = client.connect(&mut sim, remote, app);
        sim.run();
        assert_eq!(h.state(), TcpState::Established);
        assert_eq!(*events.borrow(), vec!["connected"]);
        assert_eq!(server.stats().connections_accepted, 1);
    }

    #[test]
    fn echo_round_trip() {
        let (mut sim, _ns, client, server) = two_host_world();
        server.listen(80, Rc::new(EchoListener));
        let (app, _events, data) = Recorder::new();
        let remote = SocketAddr::new(server.ip(), 80);
        let h = client.connect(&mut sim, remote, app);
        h.send(&mut sim, Bytes::from_static(b"ping"));
        sim.run();
        assert_eq!(&data.borrow()[..], b"ping");
    }

    #[test]
    fn large_transfer_integrity() {
        let (mut sim, _ns, client, server) = two_host_world();
        server.listen(80, Rc::new(EchoListener));
        let (app, _events, data) = Recorder::new();
        let remote = SocketAddr::new(server.ip(), 80);
        let h = client.connect(&mut sim, remote, app);
        let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        h.send(&mut sim, Bytes::from(payload.clone()));
        sim.run();
        assert_eq!(data.borrow().len(), payload.len());
        assert_eq!(&data.borrow()[..], &payload[..]);
    }

    #[test]
    fn connect_to_closed_port_resets() {
        let (mut sim, _ns, client, server) = two_host_world();
        let (app, events, _) = Recorder::new();
        let remote = SocketAddr::new(server.ip(), 81);
        let h = client.connect(&mut sim, remote, app);
        sim.run_until(mm_sim::Timestamp::from_secs(2));
        assert_eq!(h.state(), TcpState::Closed);
        assert_eq!(*events.borrow(), vec!["reset"]);
        assert_eq!(server.stats().rst_sent, 1);
    }

    #[test]
    fn graceful_close_both_directions() {
        let (mut sim, _ns, client, server) = two_host_world();
        struct CloseOnData;
        impl Listener for CloseOnData {
            fn on_connection(&self, _sim: &mut Simulator, _h: TcpHandle) -> Rc<dyn SocketApp> {
                struct App;
                impl SocketApp for App {
                    fn on_event(&self, sim: &mut Simulator, h: &TcpHandle, ev: SocketEvent) {
                        match ev {
                            SocketEvent::Data(b) => {
                                h.send(sim, b);
                                h.close(sim);
                            }
                            SocketEvent::PeerClosed => {}
                            _ => {}
                        }
                    }
                }
                Rc::new(App)
            }
        }
        server.listen(80, Rc::new(CloseOnData));
        let (app, events, data) = Recorder::new();
        let remote = SocketAddr::new(server.ip(), 80);
        let h = client.connect(&mut sim, remote, app);
        h.send(&mut sim, Bytes::from_static(b"bye"));
        sim.run_until(mm_sim::Timestamp::from_secs(1));
        // Server echoed then closed; client saw data + peer_closed.
        assert_eq!(&data.borrow()[..], b"bye");
        assert!(events.borrow().contains(&"peer_closed".to_string()));
        // Client closes too; both reach Closed.
        h.close(&mut sim);
        sim.run_until(mm_sim::Timestamp::from_secs(2));
        assert_eq!(h.state(), TcpState::Closed);
    }

    #[test]
    fn duplicate_listen_panics() {
        let (_sim, _ns, _client, server) = two_host_world();
        server.listen(80, Rc::new(EchoListener));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            server.listen(80, Rc::new(EchoListener));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn ephemeral_ports_distinct() {
        let (mut sim, _ns, client, server) = two_host_world();
        server.listen(80, Rc::new(EchoListener));
        let remote = SocketAddr::new(server.ip(), 80);
        let mut ports = std::collections::HashSet::new();
        for _ in 0..50 {
            let (app, _, _) = Recorder::new();
            let h = client.connect(&mut sim, remote, app);
            assert!(ports.insert(h.local_addr().port));
        }
        sim.run();
        assert_eq!(client.socket_count(), 50);
    }

    #[test]
    fn corrupted_packets_dropped_at_host() {
        let (mut sim, ns, client, server) = two_host_world();
        server.listen(80, Rc::new(EchoListener));
        // Deliver a corrupted packet directly to the server's sink.
        let pkt = Packet {
            id: 999,
            src: SocketAddr::new(client.ip(), 5555),
            dst: SocketAddr::new(server.ip(), 80),
            segment: TcpSegment {
                flags: TcpFlags::SYN,
                seq: 0,
                ack: 0,
                window: 0,
                sack: Default::default(),
                payload: Bytes::new(),
            },
            corrupted: true,
        };
        ns.router().deliver(&mut sim, pkt);
        sim.run();
        assert_eq!(server.stats().corrupted_dropped, 1);
        assert_eq!(server.stats().connections_accepted, 0);
    }

    #[test]
    fn reap_closed_removes_sockets() {
        let (mut sim, _ns, client, server) = two_host_world();
        let (app, _, _) = Recorder::new();
        // Connect to closed port: resets quickly.
        let remote = SocketAddr::new(server.ip(), 9);
        let _ = client.connect(&mut sim, remote, app);
        sim.run_until(mm_sim::Timestamp::from_secs(1));
        assert_eq!(client.socket_count(), 1);
        client.reap_closed();
        assert_eq!(client.socket_count(), 0);
    }

    #[test]
    fn host_noise_delays_processing() {
        let (mut sim, _ns, client, server) = two_host_world();
        server.listen(80, Rc::new(EchoListener));
        // 1 ms fixed "noise" per packet on the server.
        server.set_noise(HostNoise::new(
            RngStream::from_seed(1),
            Box::new(mm_sim::dist::Constant(1000.0)),
        ));
        let (app, events, _) = Recorder::new();
        let remote = SocketAddr::new(server.ip(), 80);
        let _h = client.connect(&mut sim, remote, app);
        sim.run();
        assert_eq!(*events.borrow(), vec!["connected"]);
        // Handshake took at least the server-side noise.
        assert!(sim.now() >= mm_sim::Timestamp::from_millis(1));
    }
}
