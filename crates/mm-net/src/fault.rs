//! Fault-injection elements, in the spirit of smoltcp's example harness:
//! random drop, random corruption, reordering, and a token-bucket rate
//! limiter. These compose like any other sink and are used by the test
//! suite to exercise TCP loss recovery and by examples demonstrating
//! adverse network conditions.

use std::cell::RefCell;
use std::rc::Rc;

use mm_sim::{RngStream, SimDuration, Simulator};

use crate::packet::Packet;
use crate::sink::{PacketSink, SinkRef};

/// Statistics shared by fault elements.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultStats {
    pub seen: u64,
    pub affected: u64,
}

/// Drops each packet independently with probability `p`.
pub struct RandomDrop {
    p: f64,
    rng: RefCell<RngStream>,
    stats: RefCell<FaultStats>,
    next: SinkRef,
}

impl RandomDrop {
    /// `p` in `[0, 1]`.
    pub fn new(p: f64, rng: RngStream, next: SinkRef) -> Rc<Self> {
        assert!((0.0..=1.0).contains(&p), "drop probability out of range");
        Rc::new(RandomDrop {
            p,
            rng: RefCell::new(rng),
            stats: RefCell::new(FaultStats::default()),
            next,
        })
    }

    /// (seen, dropped) so far.
    pub fn stats(&self) -> FaultStats {
        *self.stats.borrow()
    }
}

impl PacketSink for RandomDrop {
    fn deliver(&self, sim: &mut Simulator, pkt: Packet) {
        let drop = self.rng.borrow_mut().gen_bool(self.p);
        {
            let mut s = self.stats.borrow_mut();
            s.seen += 1;
            if drop {
                s.affected += 1;
            }
        }
        if !drop {
            self.next.deliver(sim, pkt);
        }
    }
}

/// Marks each packet corrupted with probability `p`. Receiving hosts treat
/// corrupted packets as checksum failures and discard them — the same
/// observable effect as real bit corruption, without modelling payload bits.
pub struct RandomCorrupt {
    p: f64,
    rng: RefCell<RngStream>,
    stats: RefCell<FaultStats>,
    next: SinkRef,
}

impl RandomCorrupt {
    /// `p` in `[0, 1]`.
    pub fn new(p: f64, rng: RngStream, next: SinkRef) -> Rc<Self> {
        assert!((0.0..=1.0).contains(&p), "corrupt probability out of range");
        Rc::new(RandomCorrupt {
            p,
            rng: RefCell::new(rng),
            stats: RefCell::new(FaultStats::default()),
            next,
        })
    }

    /// (seen, corrupted) so far.
    pub fn stats(&self) -> FaultStats {
        *self.stats.borrow()
    }
}

impl PacketSink for RandomCorrupt {
    fn deliver(&self, sim: &mut Simulator, mut pkt: Packet) {
        let corrupt = self.rng.borrow_mut().gen_bool(self.p);
        {
            let mut s = self.stats.borrow_mut();
            s.seen += 1;
            if corrupt {
                s.affected += 1;
            }
        }
        if corrupt {
            pkt.corrupted = true;
        }
        self.next.deliver(sim, pkt);
    }
}

/// With probability `p`, holds a packet for `extra_delay`, letting packets
/// behind it overtake — the classic reordering fault.
pub struct Reorder {
    p: f64,
    extra_delay: SimDuration,
    rng: RefCell<RngStream>,
    stats: RefCell<FaultStats>,
    next: SinkRef,
}

impl Reorder {
    /// `p` in `[0, 1]`; `extra_delay` is how far a reordered packet lags.
    pub fn new(p: f64, extra_delay: SimDuration, rng: RngStream, next: SinkRef) -> Rc<Self> {
        assert!((0.0..=1.0).contains(&p), "reorder probability out of range");
        Rc::new(Reorder {
            p,
            extra_delay,
            rng: RefCell::new(rng),
            stats: RefCell::new(FaultStats::default()),
            next,
        })
    }

    /// (seen, reordered) so far.
    pub fn stats(&self) -> FaultStats {
        *self.stats.borrow()
    }
}

impl PacketSink for Reorder {
    fn deliver(&self, sim: &mut Simulator, pkt: Packet) {
        let hold = self.rng.borrow_mut().gen_bool(self.p);
        {
            let mut s = self.stats.borrow_mut();
            s.seen += 1;
            if hold {
                s.affected += 1;
            }
        }
        if hold {
            let next = self.next.clone();
            sim.schedule_in_tagged("sim_events_fault_total", self.extra_delay, move |sim| {
                next.deliver(sim, pkt)
            });
        } else {
            self.next.deliver(sim, pkt);
        }
    }
}

/// Token-bucket policer: packets that arrive when the bucket lacks tokens
/// are dropped (policing, not shaping — shaping is LinkShell's job).
/// Tokens are denominated in bytes.
pub struct TokenBucket {
    rate_bytes_per_sec: f64,
    burst_bytes: f64,
    state: RefCell<BucketState>,
    stats: RefCell<FaultStats>,
    next: SinkRef,
}

struct BucketState {
    tokens: f64,
    last_refill: mm_sim::Timestamp,
}

impl TokenBucket {
    /// A bucket refilled at `rate_bytes_per_sec` with capacity
    /// `burst_bytes`, starting full.
    pub fn new(rate_bytes_per_sec: f64, burst_bytes: f64, next: SinkRef) -> Rc<Self> {
        assert!(rate_bytes_per_sec > 0.0 && burst_bytes > 0.0);
        Rc::new(TokenBucket {
            rate_bytes_per_sec,
            burst_bytes,
            state: RefCell::new(BucketState {
                tokens: burst_bytes,
                last_refill: mm_sim::Timestamp::ZERO,
            }),
            stats: RefCell::new(FaultStats::default()),
            next,
        })
    }

    /// (seen, policed) so far.
    pub fn stats(&self) -> FaultStats {
        *self.stats.borrow()
    }
}

impl PacketSink for TokenBucket {
    fn deliver(&self, sim: &mut Simulator, pkt: Packet) {
        let pass = {
            let mut st = self.state.borrow_mut();
            let elapsed = sim.now().saturating_duration_since(st.last_refill);
            st.tokens =
                (st.tokens + elapsed.as_secs_f64() * self.rate_bytes_per_sec).min(self.burst_bytes);
            st.last_refill = sim.now();
            let need = pkt.wire_size() as f64;
            if st.tokens >= need {
                st.tokens -= need;
                true
            } else {
                false
            }
        };
        {
            let mut s = self.stats.borrow_mut();
            s.seen += 1;
            if !pass {
                s.affected += 1;
            }
        }
        if pass {
            self.next.deliver(sim, pkt);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{IpAddr, SocketAddr};
    use crate::packet::{TcpFlags, TcpSegment};
    use crate::sink::{Capture, Tap};
    use bytes::Bytes;

    fn pkt(id: u64, payload: usize) -> Packet {
        Packet {
            id,
            src: SocketAddr::new(IpAddr::new(1, 1, 1, 1), 1),
            dst: SocketAddr::new(IpAddr::new(2, 2, 2, 2), 2),
            segment: TcpSegment {
                flags: TcpFlags::ACK,
                seq: 0,
                ack: 0,
                window: 0,
                sack: Default::default(),
                payload: Bytes::from(vec![0; payload]),
            },
            corrupted: false,
        }
    }

    fn capture_sink() -> (Capture, SinkRef) {
        let cap = Capture::new();
        let sink = Tap::new(cap.clone(), crate::sink::BlackHole::new());
        (cap, sink)
    }

    #[test]
    fn drop_rate_approximates_p() {
        let mut sim = Simulator::new();
        let (cap, sink) = capture_sink();
        let dropper = RandomDrop::new(0.3, RngStream::from_seed(1), sink);
        for i in 0..10_000 {
            dropper.deliver(&mut sim, pkt(i, 0));
        }
        let s = dropper.stats();
        assert_eq!(s.seen, 10_000);
        let rate = s.affected as f64 / s.seen as f64;
        assert!((rate - 0.3).abs() < 0.02, "drop rate {rate}");
        assert_eq!(cap.len() as u64, s.seen - s.affected);
    }

    #[test]
    fn drop_zero_and_one() {
        let mut sim = Simulator::new();
        let (cap, sink) = capture_sink();
        let never = RandomDrop::new(0.0, RngStream::from_seed(2), sink.clone());
        let always = RandomDrop::new(1.0, RngStream::from_seed(3), sink);
        for i in 0..100 {
            never.deliver(&mut sim, pkt(i, 0));
            always.deliver(&mut sim, pkt(i, 0));
        }
        assert_eq!(cap.len(), 100);
        assert_eq!(always.stats().affected, 100);
    }

    #[test]
    fn corrupt_marks_packets() {
        let mut sim = Simulator::new();
        let seen = Rc::new(RefCell::new(0u64));
        let s = seen.clone();
        let sink = crate::sink::FnSink::new(move |_, p: Packet| {
            if p.corrupted {
                *s.borrow_mut() += 1;
            }
        });
        let c = RandomCorrupt::new(0.5, RngStream::from_seed(4), sink);
        for i in 0..1000 {
            c.deliver(&mut sim, pkt(i, 10));
        }
        let frac = *seen.borrow() as f64 / 1000.0;
        assert!((frac - 0.5).abs() < 0.06, "corrupt frac {frac}");
    }

    #[test]
    fn reorder_delays_some_packets() {
        let mut sim = Simulator::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        let o = order.clone();
        let sink = crate::sink::FnSink::new(move |_, p: Packet| o.borrow_mut().push(p.id));
        let r = Reorder::new(
            0.5,
            SimDuration::from_millis(10),
            RngStream::from_seed(5),
            sink,
        );
        let r2 = r.clone();
        sim.schedule_now(move |sim| {
            for i in 0..20 {
                r2.deliver(sim, pkt(i, 0));
            }
        });
        sim.run();
        let got = order.borrow().clone();
        assert_eq!(got.len(), 20);
        assert_ne!(got, (0..20).collect::<Vec<_>>(), "expected reordering");
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn token_bucket_polices_burst() {
        let mut sim = Simulator::new();
        let (cap, sink) = capture_sink();
        // 1500 B/s, burst of 3000 B: two 1500-byte packets pass, rest drop.
        let tb = TokenBucket::new(1500.0, 3000.0, sink);
        for i in 0..5 {
            tb.deliver(&mut sim, pkt(i, 1460));
        }
        assert_eq!(cap.len(), 2);
        assert_eq!(tb.stats().affected, 3);
    }

    #[test]
    fn token_bucket_refills_over_time() {
        let mut sim = Simulator::new();
        let (cap, sink) = capture_sink();
        let tb = TokenBucket::new(1500.0, 1500.0, sink);
        let tb1 = tb.clone();
        sim.schedule_now(move |sim| tb1.deliver(sim, pkt(0, 1460)));
        let tb2 = tb.clone();
        // After 1 second the bucket has refilled enough for another MTU.
        sim.schedule_at(mm_sim::Timestamp::from_secs(1), move |sim| {
            tb2.deliver(sim, pkt(1, 1460))
        });
        sim.run();
        assert_eq!(cap.len(), 2);
    }
}
