//! Host profiles: the "two machines" of Table 1.
//!
//! A profile is a distribution of per-packet host processing jitter
//! (scheduler wakeups, timer quantization, softirq delays). Two machines
//! running the same experiment differ in their noise *realizations* but
//! not in distribution — which is exactly the property Table 1 tests:
//! means within 0.5% across machines, standard deviations within 1.6% of
//! the mean.

use mm_net::HostNoise;
use mm_sim::dist::LogNormal;
use mm_sim::RngStream;

/// A named host-machine profile.
#[derive(Debug, Clone)]
pub struct HostProfile {
    /// Label, e.g. `machine-1`.
    pub name: String,
    /// Median per-packet processing jitter, microseconds.
    pub median_jitter_us: f64,
    /// Lognormal sigma of the jitter.
    pub sigma: f64,
    /// Sigma of the browser's per-resource CPU-cost jitter (mean-one
    /// lognormal): renderer GC/scheduling variability, the dominant PLT
    /// variance source on one machine.
    pub cpu_sigma: f64,
}

impl HostProfile {
    /// The paper's "Machine 1": a typical 2014 desktop.
    pub fn machine_1() -> HostProfile {
        HostProfile {
            name: "machine-1".to_string(),
            median_jitter_us: 25.0,
            sigma: 0.7,
            cpu_sigma: 0.12,
        }
    }

    /// The paper's "Machine 2": same class of hardware, its own noise.
    pub fn machine_2() -> HostProfile {
        HostProfile {
            name: "machine-2".to_string(),
            median_jitter_us: 25.0,
            sigma: 0.7,
            cpu_sigma: 0.12,
        }
    }

    /// Instantiate the noise process for one host. Each (profile, seed,
    /// label) triple yields an independent, reproducible realization.
    pub fn noise(&self, seed: u64, label: &str) -> HostNoise {
        let rng = RngStream::from_seed(seed).fork(&self.name).fork(label);
        HostNoise::new(
            rng,
            Box::new(LogNormal::with_median(self.median_jitter_us, self.sigma)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_sim::dist::Distribution;

    #[test]
    fn profiles_share_distribution() {
        let a = HostProfile::machine_1();
        let b = HostProfile::machine_2();
        assert_eq!(a.median_jitter_us, b.median_jitter_us);
        assert_eq!(a.sigma, b.sigma);
        assert_ne!(a.name, b.name);
    }

    #[test]
    fn jitter_magnitudes_sane() {
        // Draw directly from the profile's distribution: tens of
        // microseconds, not milliseconds.
        let p = HostProfile::machine_1();
        let mut rng = RngStream::from_seed(1).fork(&p.name).fork("t");
        let d = LogNormal::with_median(p.median_jitter_us, p.sigma);
        let mean_us: f64 = (0..10_000).map(|_| d.sample(&mut rng)).sum::<f64>() / 10_000.0;
        assert!((10.0..100.0).contains(&mean_us), "mean {mean_us}us");
    }

    #[test]
    fn noise_realizations_differ_across_seeds_and_labels() {
        // Indirect check: the underlying forked RNG streams differ.
        let p = HostProfile::machine_1();
        let mut r1 = RngStream::from_seed(1).fork(&p.name).fork("x");
        let mut r2 = RngStream::from_seed(2).fork(&p.name).fork("x");
        let mut r3 = RngStream::from_seed(1).fork(&p.name).fork("y");
        let a = r1.next_f64();
        assert_ne!(a, r2.next_f64());
        assert_ne!(a, r3.next_f64());
    }
}
