//! # mm-web — host profiles and live-web variability
//!
//! Models for the parts of the paper's evaluation that involve the world
//! outside the toolkit: the two host machines of Table 1 ([`profile`]) and
//! the "Actual Web" arm of Figure 3 ([`liveweb`]).

pub mod liveweb;
pub mod profile;

pub use liveweb::{apply_live_web_variability, live_think_time, LiveWebConfig};
pub use profile::HostProfile;
