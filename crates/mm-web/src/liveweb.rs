//! The "Actual Web" model for Figure 3.
//!
//! Figure 3 compares page loads inside ReplayShell against loads of the
//! real www.nytimes.com over the Internet. The Internet arm differs from
//! replay in its *variability sources*: per-origin path latency spread
//! around the minimum RTT, server/CDN processing-time variation, and
//! packet-level jitter from cross traffic. This module reproduces those
//! sources on top of the same replay servers, so the only difference
//! between arms is the variability itself — the substitution DESIGN.md
//! documents.

use mm_net::HostNoise;
use mm_replay::ReplayShell;
use mm_sim::dist::LogNormal;
use mm_sim::{RngStream, SimDuration};

/// Variability parameters for the live-web arm.
#[derive(Debug, Clone)]
pub struct LiveWebConfig {
    /// Median extra one-way latency a real origin adds beyond the
    /// measured minimum RTT path (CDN hops, queueing), microseconds.
    pub median_extra_us: f64,
    /// Lognormal sigma of the per-packet extra latency.
    pub jitter_sigma: f64,
    /// Median server think time per request, microseconds. Real CDN edge
    /// servers answer cached content faster than mahimahi's CGI matcher —
    /// the source of replay's small positive bias in Figure 3.
    pub median_think_us: f64,
}

impl Default for LiveWebConfig {
    fn default() -> Self {
        LiveWebConfig {
            median_extra_us: 1_500.0,
            jitter_sigma: 0.9,
            median_think_us: 200.0,
        }
    }
}

/// Convert the config's think time into a replay `think_time` equivalent.
pub fn live_think_time(config: &LiveWebConfig) -> SimDuration {
    SimDuration::from_nanos((config.median_think_us * 1000.0) as u64)
}

/// Install per-origin live-web variability on a replay shell's servers.
///
/// Each server gets an independent lognormal per-packet jitter process
/// whose own median is drawn per origin (some origins sit behind slower
/// paths than others), seeded deterministically from `rng`.
pub fn apply_live_web_variability(shell: &ReplayShell, config: &LiveWebConfig, rng: &RngStream) {
    for (i, host) in shell.hosts.iter().enumerate() {
        let mut origin_rng = rng.fork_indexed("live-origin", i as u64);
        // Per-origin median: spread around the configured median.
        let origin_median = LogNormal::with_median(config.median_extra_us, 0.5);
        let median = mm_sim::dist::Distribution::sample(&origin_median, &mut origin_rng)
            .clamp(100.0, 50_000.0);
        let noise_rng = rng.fork_indexed("live-noise", i as u64);
        host.set_noise(HostNoise::new(
            noise_rng,
            Box::new(LogNormal::with_median(median, config.jitter_sigma)),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use mm_http::{Request, Response};
    use mm_net::{IpAddr, Namespace, PacketIdGen, SocketAddr};
    use mm_record::{RequestResponsePair, Scheme, StoredSite};
    use mm_replay::ReplayConfig;

    fn two_origin_site() -> StoredSite {
        let mut s = StoredSite::new("s", "http://23.200.0.1:80/");
        for (ip, path) in [
            (IpAddr::new(23, 200, 0, 1), "/"),
            (IpAddr::new(23, 200, 0, 2), "/a"),
        ] {
            s.push(RequestResponsePair {
                origin: SocketAddr::new(ip, 80),
                scheme: Scheme::Http,
                request: Request::get(path, ip.to_string()),
                response: Response::ok(Bytes::from_static(b"x"), "text/html"),
            });
        }
        s
    }

    #[test]
    fn applies_noise_to_every_server() {
        let ns = Namespace::root("live");
        let ids = PacketIdGen::new();
        let shell = ReplayShell::new(&ns, &two_origin_site(), ReplayConfig::default(), &ids);
        assert_eq!(shell.hosts.len(), 2);
        // No direct observability of noise; exercise the path and verify
        // it doesn't panic and is deterministic in structure.
        apply_live_web_variability(&shell, &LiveWebConfig::default(), &RngStream::from_seed(1));
    }

    #[test]
    fn think_time_conversion() {
        let cfg = LiveWebConfig {
            median_think_us: 500.0,
            ..LiveWebConfig::default()
        };
        assert_eq!(live_think_time(&cfg), SimDuration::from_micros(500));
    }
}
