//! The client (browser) end of a multiplexed connection.
//!
//! One [`MuxClient`] owns one TCP connection to one origin and carries
//! every request to that origin as a stream. Requests beyond the
//! concurrent-stream limit queue in priority order (lowest byte first,
//! FIFO within a priority), so the root document always dispatches ahead
//! of queued subresources.
//!
//! Re-entrancy discipline mirrors the rest of the workspace: no
//! application callback ever runs while the client's state is borrowed.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use bytes::{Bytes, BytesMut};
use mm_http::{Request, Response};
use mm_net::{Host, SocketAddr, SocketApp, SocketEvent, TcpHandle};
use mm_sim::{Simulator, Timestamp};

use crate::flow::WindowRefill;
use crate::frame::{request_fields, response_from_fields, Frame, FrameDecoder};
use crate::MuxConfig;

/// Why a request could not be completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MuxError {
    /// The connection died (reset, closed, or refused) with the request
    /// outstanding.
    ConnectionClosed,
    /// The peer sent bytes that do not decode as frames.
    Protocol,
}

impl std::fmt::Display for MuxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MuxError::ConnectionClosed => f.write_str("mux connection closed"),
            MuxError::Protocol => f.write_str("mux protocol error"),
        }
    }
}

impl std::error::Error for MuxError {}

/// Completion callback for one request.
pub type DoneFn = Box<dyn FnOnce(&mut Simulator, Result<Response, MuxError>)>;

/// Caller tag meaning "untagged" (observer notifications suppressed).
pub const NO_TAG: u32 = u32::MAX;

/// Stream-scheduler milestones surfaced to a [`StreamObserver`]: the
/// edges a span layer needs to split "waiting for a stream slot" from
/// "request on the wire" without reaching into the client's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamEvent {
    /// The connection finished its handshake (tag is [`NO_TAG`]).
    ConnReady,
    /// A queued request left the scheduler: its HEADERS hit the socket.
    Opened,
    /// The first response byte (the response HEADERS frame) arrived.
    FirstByte,
}

/// Observer of per-stream scheduling milestones, keyed by the caller's
/// request tag. Purely observational: called after the client releases
/// its borrow, must not touch the client.
pub type StreamObserver = Rc<dyn Fn(u32, StreamEvent, Timestamp)>;

struct PendingRequest {
    req: Request,
    priority: u8,
    tag: u32,
    done: DoneFn,
}

struct ActiveStream {
    /// Response head, once its HEADERS frame arrived.
    head: Option<Response>,
    body: BytesMut,
    refill: WindowRefill,
    tag: u32,
    done: Option<DoneFn>,
}

struct ClientInner {
    config: MuxConfig,
    handle: Option<TcpHandle>,
    connected: bool,
    dead: bool,
    decoder: FrameDecoder,
    /// The server's advertised concurrent-stream cap (ours until its
    /// SETTINGS arrive).
    peer_max_streams: u32,
    /// Next client-initiated stream id (odd, like HTTP/2).
    next_stream: u32,
    /// Queued requests by priority; BTreeMap keeps dispatch deterministic.
    pending: BTreeMap<u8, VecDeque<PendingRequest>>,
    active: BTreeMap<u32, ActiveStream>,
    conn_refill: WindowRefill,
    observer: Option<StreamObserver>,
}

impl ClientInner {
    fn stream_limit(&self) -> usize {
        self.config
            .max_concurrent_streams
            .min(self.peer_max_streams) as usize
    }

    fn pop_pending(&mut self) -> Option<PendingRequest> {
        let (&priority, _) = self.pending.iter().find(|(_, q)| !q.is_empty())?;
        let req = self.pending.get_mut(&priority).unwrap().pop_front();
        if self.pending.get(&priority).is_some_and(|q| q.is_empty()) {
            self.pending.remove(&priority);
        }
        req
    }
}

/// A multiplexed connection to one origin.
#[derive(Clone)]
pub struct MuxClient {
    inner: Rc<RefCell<ClientInner>>,
}

impl MuxClient {
    /// Open a multiplexed connection from `host` to `addr`.
    pub fn connect(
        sim: &mut Simulator,
        host: &Host,
        addr: SocketAddr,
        config: MuxConfig,
    ) -> MuxClient {
        let connection_window = config.connection_window;
        let peer_max = config.max_concurrent_streams;
        let client = MuxClient {
            inner: Rc::new(RefCell::new(ClientInner {
                config,
                handle: None,
                connected: false,
                dead: false,
                decoder: FrameDecoder::new(),
                peer_max_streams: peer_max,
                next_stream: 1,
                pending: BTreeMap::new(),
                active: BTreeMap::new(),
                conn_refill: WindowRefill::new(connection_window),
                observer: None,
            })),
        };
        let app = Rc::new(ClientApp {
            client: client.clone(),
        });
        let handle = host.connect(sim, addr, app);
        client.inner.borrow_mut().handle = Some(handle);
        client
    }

    /// Submit `req` as a new stream; `done` fires with the response (or
    /// the error that killed the connection). Queues behind the
    /// concurrent-stream limit in `priority` order.
    pub fn request(
        &self,
        sim: &mut Simulator,
        req: Request,
        priority: u8,
        done: impl FnOnce(&mut Simulator, Result<Response, MuxError>) + 'static,
    ) {
        self.request_tagged(sim, req, priority, NO_TAG, done);
    }

    /// [`MuxClient::request`] with a caller tag the installed
    /// [`StreamObserver`] receives on each milestone, so callers can
    /// attribute scheduler waits to their own request identities.
    pub fn request_tagged(
        &self,
        sim: &mut Simulator,
        req: Request,
        priority: u8,
        tag: u32,
        done: impl FnOnce(&mut Simulator, Result<Response, MuxError>) + 'static,
    ) {
        let done: DoneFn = Box::new(done);
        let dead = self.inner.borrow().dead;
        if dead {
            done(sim, Err(MuxError::ConnectionClosed));
            return;
        }
        self.inner
            .borrow_mut()
            .pending
            .entry(priority)
            .or_default()
            .push_back(PendingRequest {
                req,
                priority,
                tag,
                done,
            });
        self.pump(sim);
    }

    /// Install the milestone observer (replacing any previous one).
    pub fn set_observer(&self, observer: StreamObserver) {
        self.inner.borrow_mut().observer = Some(observer);
    }

    /// Local address of the underlying socket — the span layer's
    /// connection identity.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        let inner = self.inner.borrow();
        inner.handle.as_ref().map(|h| h.local_addr())
    }

    /// True once the connection has failed; outstanding and future
    /// requests on a dead client fail with `ConnectionClosed`.
    pub fn is_dead(&self) -> bool {
        self.inner.borrow().dead
    }

    /// Streams currently in flight (tests/diagnostics).
    pub fn active_streams(&self) -> usize {
        self.inner.borrow().active.len()
    }

    /// Requests queued behind the concurrent-stream limit.
    pub fn queued_requests(&self) -> usize {
        self.inner.borrow().pending.values().map(|q| q.len()).sum()
    }

    /// Dispatch queued requests while stream slots are free.
    fn pump(&self, sim: &mut Simulator) {
        loop {
            let step = {
                let mut inner = self.inner.borrow_mut();
                if !inner.connected || inner.dead || inner.active.len() >= inner.stream_limit() {
                    None
                } else {
                    match inner.pop_pending() {
                        None => None,
                        Some(p) => {
                            let stream = inner.next_stream;
                            inner.next_stream += 2;
                            let headers = Frame::Headers {
                                stream,
                                end_stream: p.req.body.is_empty(),
                                priority: p.priority,
                                fields: request_fields(&p.req),
                            }
                            .encode();
                            // Request bodies ride un-flow-controlled DATA:
                            // the page-load workload only sends GETs, and
                            // upload flow control would model a direction
                            // the experiments never stress.
                            let body = (!p.req.body.is_empty()).then(|| {
                                Frame::Data {
                                    stream,
                                    end_stream: true,
                                    payload: p.req.body.clone(),
                                }
                                .encode()
                            });
                            let window = inner.config.initial_stream_window;
                            inner.active.insert(
                                stream,
                                ActiveStream {
                                    head: None,
                                    body: BytesMut::new(),
                                    refill: WindowRefill::new(window),
                                    tag: p.tag,
                                    done: Some(p.done),
                                },
                            );
                            let handle = inner.handle.clone().expect("connected client has handle");
                            let observer =
                                (p.tag != NO_TAG).then(|| inner.observer.clone()).flatten();
                            Some((handle, headers, body, p.tag, observer))
                        }
                    }
                }
            };
            match step {
                None => return,
                Some((handle, headers, body, tag, observer)) => {
                    handle.send(sim, headers);
                    if let Some(body) = body {
                        handle.send(sim, body);
                    }
                    if let Some(obs) = observer {
                        obs(tag, StreamEvent::Opened, sim.now());
                    }
                }
            }
        }
    }

    /// Decode and act on inbound bytes.
    fn on_data(&self, sim: &mut Simulator, bytes: &[u8]) {
        type Completion = (DoneFn, Result<Response, MuxError>);
        let mut outgoing: Vec<Bytes> = Vec::new();
        let mut completions: Vec<Completion> = Vec::new();
        let mut first_bytes: Vec<u32> = Vec::new();
        let mut protocol_error = false;
        let (handle, observer) = {
            let mut inner = self.inner.borrow_mut();
            let frames = match inner.decoder.feed(bytes) {
                Ok(frames) => frames,
                Err(_) => {
                    protocol_error = true;
                    Vec::new()
                }
            };
            for frame in frames {
                match frame {
                    Frame::Settings {
                        max_concurrent_streams,
                        ..
                    } => {
                        inner.peer_max_streams = max_concurrent_streams;
                    }
                    Frame::Headers {
                        stream,
                        end_stream,
                        fields,
                        ..
                    } => {
                        let Ok(head) = response_from_fields(&fields) else {
                            protocol_error = true;
                            break;
                        };
                        let Some(active) = inner.active.get_mut(&stream) else {
                            continue; // stale stream; ignore
                        };
                        if active.head.is_none() && active.tag != NO_TAG {
                            first_bytes.push(active.tag);
                        }
                        active.head = Some(head);
                        if end_stream {
                            if let Some(c) = inner.complete_stream(stream) {
                                completions.push(c);
                            }
                        }
                    }
                    Frame::Data {
                        stream,
                        end_stream,
                        payload,
                    } => {
                        let n = payload.len() as u64;
                        let Some(active) = inner.active.get_mut(&stream) else {
                            continue;
                        };
                        active.body.extend_from_slice(&payload);
                        if !end_stream {
                            if let Some(inc) = active.refill.consumed(n) {
                                outgoing.push(
                                    Frame::WindowUpdate {
                                        stream,
                                        increment: inc.min(u32::MAX as u64) as u32,
                                    }
                                    .encode(),
                                );
                            }
                        }
                        if let Some(inc) = inner.conn_refill.consumed(n) {
                            outgoing.push(
                                Frame::WindowUpdate {
                                    stream: 0,
                                    increment: inc.min(u32::MAX as u64) as u32,
                                }
                                .encode(),
                            );
                        }
                        if end_stream {
                            if let Some(c) = inner.complete_stream(stream) {
                                completions.push(c);
                            }
                        }
                    }
                    // The client sends nothing flow controlled, so inbound
                    // WINDOW_UPDATEs carry no information for it.
                    Frame::WindowUpdate { .. } => {}
                }
            }
            (inner.handle.clone(), inner.observer.clone())
        };
        if let Some(obs) = &observer {
            let now = sim.now();
            for tag in first_bytes {
                obs(tag, StreamEvent::FirstByte, now);
            }
        }
        if protocol_error {
            if let Some(h) = &handle {
                h.abort(sim);
            }
            // Streams completed by valid frames earlier in this batch
            // already left `active`; deliver their results before failing
            // the rest, or their callbacks would be dropped and the page
            // load would never settle.
            for (done, result) in completions {
                done(sim, result);
            }
            self.fail_all(sim, MuxError::Protocol);
            return;
        }
        if let Some(h) = &handle {
            for wire in outgoing {
                h.send(sim, wire);
            }
        }
        for (done, result) in completions {
            done(sim, result);
        }
        self.pump(sim);
    }

    /// Fail every outstanding and queued request.
    fn fail_all(&self, sim: &mut Simulator, err: MuxError) {
        let callbacks: Vec<DoneFn> = {
            let mut inner = self.inner.borrow_mut();
            inner.dead = true;
            let mut cbs: Vec<DoneFn> = Vec::new();
            for s in std::mem::take(&mut inner.active).into_values() {
                if let Some(done) = s.done {
                    cbs.push(done);
                }
            }
            for q in std::mem::take(&mut inner.pending).into_values() {
                for p in q {
                    cbs.push(p.done);
                }
            }
            cbs
        };
        for done in callbacks {
            done(sim, Err(err));
        }
    }
}

impl ClientInner {
    /// Retire `stream`, producing its completion callback and response.
    fn complete_stream(&mut self, stream: u32) -> Option<(DoneFn, Result<Response, MuxError>)> {
        let s = self.active.remove(&stream)?;
        let done = s.done?;
        match s.head {
            Some(mut resp) => {
                resp.body = s.body.freeze();
                Some((done, Ok(resp)))
            }
            // DATA before HEADERS: the peer is broken.
            None => Some((done, Err(MuxError::Protocol))),
        }
    }
}

struct ClientApp {
    client: MuxClient,
}

impl SocketApp for ClientApp {
    fn on_event(&self, sim: &mut Simulator, handle: &TcpHandle, ev: SocketEvent) {
        match ev {
            SocketEvent::Connected => {
                let (wire, observer) = {
                    let mut inner = self.client.inner.borrow_mut();
                    inner.connected = true;
                    let wire = Frame::Settings {
                        max_concurrent_streams: inner.config.max_concurrent_streams,
                        initial_window: inner.config.initial_stream_window.min(u32::MAX as u64)
                            as u32,
                        connection_window: inner.config.connection_window.min(u32::MAX as u64)
                            as u32,
                    }
                    .encode();
                    (wire, inner.observer.clone())
                };
                if let Some(obs) = observer {
                    obs(NO_TAG, StreamEvent::ConnReady, sim.now());
                }
                handle.send(sim, wire);
                self.client.pump(sim);
            }
            SocketEvent::Data(bytes) => self.client.on_data(sim, &bytes),
            SocketEvent::PeerClosed | SocketEvent::Reset => {
                self.client.fail_all(sim, MuxError::ConnectionClosed);
            }
            // The client's writes (requests, WINDOW_UPDATEs) are small
            // and unpaced; drain edges carry no information for it.
            SocketEvent::SendQueueDrained => {}
        }
    }
}
