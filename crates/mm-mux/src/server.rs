//! The server (replay) end of a multiplexed connection.
//!
//! One [`MuxServerConn`] speaks the frame protocol on one accepted TCP
//! connection. Complete requests are handed to a [`MuxHandler`], which
//! answers — immediately or after simulated think time — through a
//! [`MuxResponder`]. Response bodies are cut into DATA frames no larger
//! than `frame_max_data` and scheduled across streams priority-weighted
//! (≈4:1 between adjacent classes), shortest-remaining-body first within
//! a class, each frame gated by the stream's and the connection's
//! flow-control windows. Run-to-completion (rather than round-robin)
//! lets early resources *complete* early, so a client's parser and
//! subresource discovery overlap with later transfers; a window-blocked
//! stream never blocks the others. Emission is self-clocked on the TCP
//! [`SocketEvent::SendQueueDrained`] writability edge, so scheduling
//! decisions track the connection's real drain rate instead of freezing
//! at enqueue time.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use bytes::{Bytes, BytesMut};
use mm_http::{Request, Response};
use mm_net::{SocketApp, SocketEvent, TcpHandle};
use mm_sim::Simulator;

use crate::flow::FlowWindow;
use crate::frame::{request_from_fields, response_fields, Frame, FrameDecoder};
use crate::MuxConfig;

/// Application logic behind a mux server connection.
pub trait MuxHandler {
    /// A complete request arrived on a stream. Answer by calling
    /// [`MuxResponder::respond`], now or from a scheduled event.
    fn handle(&self, sim: &mut Simulator, req: Request, responder: MuxResponder);
}

/// The write half of one server stream; consumed by responding.
pub struct MuxResponder {
    inner: Rc<RefCell<ServerInner>>,
    stream: u32,
}

impl MuxResponder {
    /// Send `resp` on this stream. The header block goes out at once;
    /// the body drains through flow-controlled DATA frames. No-op if the
    /// connection died in the meantime.
    pub fn respond(self, sim: &mut Simulator, resp: Response) {
        let (handle, headers) = {
            let mut inner = self.inner.borrow_mut();
            if inner.dead {
                return;
            }
            let Some(stream) = inner.streams.get_mut(&self.stream) else {
                return;
            };
            let body = resp.body.clone();
            let headers = Frame::Headers {
                stream: self.stream,
                end_stream: body.is_empty(),
                priority: stream.priority,
                fields: response_fields(&resp),
            }
            .encode();
            if body.is_empty() {
                inner.streams.remove(&self.stream);
            } else {
                stream.out = body;
                stream.responded = true;
            }
            (inner.handle.clone(), headers)
        };
        handle.send(sim, headers);
        pump(&self.inner, sim);
    }
}

/// Drain scheduled DATA onto the connection. All DATA emission funnels
/// through here: the `pumping` guard makes nested invocations (a
/// `SendQueueDrained` edge firing inside one of our own sends) defer to
/// the active loop, so frames always hit the wire in schedule order.
fn pump(inner_rc: &Rc<RefCell<ServerInner>>, sim: &mut Simulator) {
    {
        let mut inner = inner_rc.borrow_mut();
        if inner.pumping || inner.dead {
            return;
        }
        inner.pumping = true;
    }
    loop {
        let (handle, wires) = {
            let mut inner = inner_rc.borrow_mut();
            (inner.handle.clone(), inner.schedule_data())
        };
        if wires.is_empty() {
            break;
        }
        for wire in wires {
            handle.send(sim, wire);
        }
        // A nested drain edge during those sends hit the guard and
        // returned; looping re-probes the backlog and sends its frames.
    }
    inner_rc.borrow_mut().pumping = false;
}

/// One stream's server-side state.
struct Stream {
    priority: u8,
    /// Send window for this stream's DATA.
    window: FlowWindow,
    /// Request head + body being assembled (taken when complete).
    recv: Option<(Request, BytesMut)>,
    /// Response body remainder; `out_pos` bytes already framed.
    out: Bytes,
    out_pos: usize,
    responded: bool,
}

struct ServerInner {
    config: MuxConfig,
    handle: TcpHandle,
    decoder: FrameDecoder,
    dead: bool,
    /// Connection-level send window.
    conn_window: FlowWindow,
    /// Per-stream window size the client advertised in SETTINGS.
    peer_initial_window: u64,
    streams: BTreeMap<u32, Stream>,
    /// Frames sent to the top class since the last yield to a lower one.
    frames_since_yield: u32,
    /// Re-entrancy guard for [`pump`].
    pumping: bool,
}

impl ServerInner {
    /// How many frames' worth of DATA may sit unsent in the TCP send
    /// buffer. Small enough that scheduling decisions track the
    /// connection's real drain rate (a late-arriving high-priority
    /// response preempts almost immediately); large enough that the
    /// sender never starves between [`SocketEvent::SendQueueDrained`]
    /// edges.
    const SEND_BUDGET_FRAMES: usize = 2;

    /// After this many consecutive frames to the top class, one frame
    /// goes to the next class down (≈ a 4:1 HTTP/2 weight ratio between
    /// adjacent priority classes).
    const YIELD_INTERVAL: u32 = 4;

    /// Cut the next DATA frames from eligible streams until windows,
    /// queues, or the TCP backlog budget run out. Pure scheduling beyond
    /// the backlog probe: returns the wire bytes for the caller to send
    /// outside the borrow. Emission is self-clocked: each
    /// `SendQueueDrained` edge re-enters here for the next budget.
    fn schedule_data(&mut self) -> Vec<Bytes> {
        let mut wires = Vec::new();
        let mut budget = (self.config.frame_max_data * Self::SEND_BUDGET_FRAMES)
            .saturating_sub(self.handle.unsent_bytes() as usize);
        loop {
            if budget == 0 || self.conn_window.is_blocked() {
                break;
            }
            // Eligible: responded, body remaining, stream window open.
            // Scheduling is priority-weighted, not strict: most frames go
            // to the most urgent class present, but every
            // `YIELD_INTERVAL`-th frame serves the next class down, so a
            // large high-priority body cannot starve small leaf content
            // outright (HTTP/2's weight tree has the same effect). Within
            // a class: shortest remaining body first — the server knows
            // response sizes, and draining small responses early both
            // unblocks client-side discovery and overlaps client parse
            // with later transfers; stream id breaks ties.
            let eligible =
                |s: &Stream| s.responded && s.out_pos < s.out.len() && !s.window.is_blocked();
            let mut classes: Vec<u8> = self
                .streams
                .values()
                .filter(|s| eligible(s))
                .map(|s| s.priority)
                .collect();
            classes.sort_unstable();
            classes.dedup();
            let Some(&top) = classes.first() else {
                break;
            };
            let class = if classes.len() > 1 && self.frames_since_yield >= Self::YIELD_INTERVAL {
                self.frames_since_yield = 0;
                classes[1]
            } else {
                self.frames_since_yield += 1;
                top
            };
            let id = self
                .streams
                .iter()
                .filter(|(_, s)| s.priority == class && eligible(s))
                .min_by_key(|(&id, s)| (s.out.len() - s.out_pos, id))
                .map(|(&id, _)| id);
            let Some(id) = id else {
                break;
            };
            let stream = self.streams.get_mut(&id).unwrap();
            let remaining = stream.out.len() - stream.out_pos;
            let n = (self.config.frame_max_data)
                .min(remaining)
                .min(stream.window.available() as usize)
                .min(self.conn_window.available() as usize);
            let end_stream = n == remaining;
            let payload = stream.out.slice(stream.out_pos..stream.out_pos + n);
            stream.out_pos += n;
            stream.window.consume(n as u64);
            self.conn_window.consume(n as u64);
            wires.push(
                Frame::Data {
                    stream: id,
                    end_stream,
                    payload,
                }
                .encode(),
            );
            budget = budget.saturating_sub(n);
            if end_stream {
                self.streams.remove(&id);
            }
        }
        wires
    }
}

/// A mux protocol speaker for one accepted connection.
pub struct MuxServerConn {
    inner: Rc<RefCell<ServerInner>>,
    handler: Rc<dyn MuxHandler>,
}

impl MuxServerConn {
    /// Wrap an accepted connection; `handler` answers its requests.
    pub fn new(handle: TcpHandle, config: MuxConfig, handler: Rc<dyn MuxHandler>) -> MuxServerConn {
        let conn_window = config.connection_window;
        let initial_window = config.initial_stream_window;
        MuxServerConn {
            inner: Rc::new(RefCell::new(ServerInner {
                config,
                handle,
                decoder: FrameDecoder::new(),
                dead: false,
                conn_window: FlowWindow::new(conn_window),
                peer_initial_window: initial_window,
                streams: BTreeMap::new(),
                frames_since_yield: 0,
                pumping: false,
            })),
            handler,
        }
    }

    fn on_data(&self, sim: &mut Simulator, bytes: &[u8]) {
        let mut requests: Vec<(u32, Request)> = Vec::new();
        let mut protocol_error = false;
        let handle = {
            let mut inner = self.inner.borrow_mut();
            let frames = match inner.decoder.feed(bytes) {
                Ok(frames) => frames,
                Err(_) => {
                    protocol_error = true;
                    Vec::new()
                }
            };
            for frame in frames {
                match frame {
                    Frame::Settings {
                        initial_window,
                        connection_window,
                        ..
                    } => {
                        inner.peer_initial_window = initial_window as u64;
                        // The client's SETTINGS precede its first request
                        // on the byte stream, so no DATA credit has been
                        // spent yet: adopt its connection window outright.
                        // This keeps mismatched client/server configs from
                        // deadlocking (the sender's view must match the
                        // WINDOW_UPDATE cadence of the receiver).
                        inner.conn_window = FlowWindow::new(connection_window as u64);
                    }
                    Frame::Headers {
                        stream,
                        end_stream,
                        priority,
                        fields,
                    } => {
                        let Ok(req) = request_from_fields(&fields) else {
                            protocol_error = true;
                            break;
                        };
                        let window = inner.peer_initial_window;
                        inner.streams.insert(
                            stream,
                            Stream {
                                priority,
                                window: FlowWindow::new(window),
                                recv: Some((req, BytesMut::new())),
                                out: Bytes::new(),
                                out_pos: 0,
                                responded: false,
                            },
                        );
                        if end_stream {
                            if let Some(r) = inner.finish_request(stream) {
                                requests.push((stream, r));
                            }
                        }
                    }
                    Frame::Data {
                        stream,
                        end_stream,
                        payload,
                    } => {
                        let Some(s) = inner.streams.get_mut(&stream) else {
                            continue;
                        };
                        if let Some((_, body)) = s.recv.as_mut() {
                            body.extend_from_slice(&payload);
                        }
                        if end_stream {
                            if let Some(r) = inner.finish_request(stream) {
                                requests.push((stream, r));
                            }
                        }
                    }
                    Frame::WindowUpdate { stream, increment } => {
                        if stream == 0 {
                            inner.conn_window.grant(increment as u64);
                        } else if let Some(s) = inner.streams.get_mut(&stream) {
                            s.window.grant(increment as u64);
                        }
                        // Fresh credit may unblock queued DATA.
                    }
                }
            }
            inner.handle.clone()
        };
        if protocol_error {
            handle.abort(sim);
            self.inner.borrow_mut().dead = true;
            return;
        }
        // Window grants may have unblocked queued DATA.
        pump(&self.inner, sim);
        for (stream, req) in requests {
            self.handler.handle(
                sim,
                req,
                MuxResponder {
                    inner: self.inner.clone(),
                    stream,
                },
            );
        }
    }
}

impl ServerInner {
    /// Assemble the completed request on `stream`, leaving the stream
    /// registered for the response.
    fn finish_request(&mut self, stream: u32) -> Option<Request> {
        let s = self.streams.get_mut(&stream)?;
        let (mut req, body) = s.recv.take()?;
        req.body = body.freeze();
        Some(req)
    }
}

impl SocketApp for MuxServerConn {
    fn on_event(&self, sim: &mut Simulator, handle: &TcpHandle, ev: SocketEvent) {
        match ev {
            SocketEvent::Connected => {
                let wire = {
                    let inner = self.inner.borrow();
                    Frame::Settings {
                        max_concurrent_streams: inner.config.max_concurrent_streams,
                        initial_window: inner.config.initial_stream_window.min(u32::MAX as u64)
                            as u32,
                        connection_window: inner.config.connection_window.min(u32::MAX as u64)
                            as u32,
                    }
                    .encode()
                };
                handle.send(sim, wire);
            }
            SocketEvent::Data(bytes) => self.on_data(sim, &bytes),
            SocketEvent::SendQueueDrained => {
                // The connection drained its backlog: emit the next
                // budget of DATA frames.
                pump(&self.inner, sim);
            }
            SocketEvent::PeerClosed => {
                self.inner.borrow_mut().dead = true;
                handle.close(sim);
            }
            SocketEvent::Reset => {
                self.inner.borrow_mut().dead = true;
            }
        }
    }
}
