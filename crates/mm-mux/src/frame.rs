//! The binary frame codec.
//!
//! Layout (big-endian, HTTP/2 §4.1 shape):
//!
//! ```text
//! +-----------------------------------------------+
//! | length (24)   : payload bytes                 |
//! +---------------+---------------+---------------+
//! | type (8)      | flags (8)     |               |
//! +---------------+---------------+---------------+
//! | stream identifier (32)                        |
//! +===============================================+
//! | frame payload (0...)                          |
//! +-----------------------------------------------+
//! ```
//!
//! HEADERS payloads begin with a one-byte priority, then a block of
//! length-prefixed `(name, value)` fields. Pseudo-fields (`:method`,
//! `:path`, `:authority` on requests; `:status`, `:reason` on responses)
//! come first, exactly like HTTP/2's pseudo-headers.
//!
//! The decoder is incremental: bytes arrive in arbitrary TCP segment
//! boundaries and partial frames stay buffered until complete, which the
//! crate's property tests exercise by re-chunking encoded streams.

use bytes::{Bytes, BytesMut};
use mm_http::{HeaderMap, Method, Request, Response, Version};

/// Frame type codes (the HTTP/2 values, for familiarity).
const TYPE_DATA: u8 = 0x0;
const TYPE_HEADERS: u8 = 0x1;
const TYPE_SETTINGS: u8 = 0x4;
const TYPE_WINDOW_UPDATE: u8 = 0x8;

/// END_STREAM flag bit.
const FLAG_END_STREAM: u8 = 0x1;

/// Upper bound on a frame payload the decoder will buffer. DATA payloads
/// are bounded by `MuxConfig::frame_max_data` at the sender; anything
/// beyond this is garbage on the wire.
pub const MAX_FRAME_PAYLOAD: usize = 1 << 20;

/// One protocol frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Flow-controlled body bytes for a stream.
    Data {
        stream: u32,
        end_stream: bool,
        payload: Bytes,
    },
    /// A header block opening (request) or answering (response) a stream.
    Headers {
        stream: u32,
        end_stream: bool,
        /// Lower is more urgent; see [`crate::PRIORITY_ROOT`].
        priority: u8,
        fields: Vec<(String, String)>,
    },
    /// Connection preface: each side advertises its limits once. The
    /// receiver-side windows (`initial_window` per stream,
    /// `connection_window` for the whole connection) govern the DATA the
    /// *sender of this frame* is prepared to receive, so the peer adopts
    /// them for its send-side accounting.
    Settings {
        max_concurrent_streams: u32,
        initial_window: u32,
        connection_window: u32,
    },
    /// Window replenishment; `stream == 0` targets the connection window.
    WindowUpdate { stream: u32, increment: u32 },
}

/// Why a byte stream failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Unrecognised frame type code.
    UnknownType(u8),
    /// Structurally invalid payload for the declared type.
    Malformed(&'static str),
    /// Declared payload length exceeds [`MAX_FRAME_PAYLOAD`].
    Oversized(usize),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnknownType(t) => write!(f, "unknown frame type {t:#x}"),
            DecodeError::Malformed(what) => write!(f, "malformed frame: {what}"),
            DecodeError::Oversized(n) => write!(f, "frame payload of {n} bytes exceeds limit"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn put_u32(out: &mut BytesMut, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_field(out: &mut BytesMut, name: &str, value: &str) {
    debug_assert!(name.len() <= u16::MAX as usize && value.len() <= u16::MAX as usize);
    out.extend_from_slice(&(name.len() as u16).to_be_bytes());
    out.extend_from_slice(name.as_bytes());
    out.extend_from_slice(&(value.len() as u16).to_be_bytes());
    out.extend_from_slice(value.as_bytes());
}

impl Frame {
    /// The stream this frame belongs to (0 for connection-level frames).
    pub fn stream(&self) -> u32 {
        match *self {
            Frame::Data { stream, .. }
            | Frame::Headers { stream, .. }
            | Frame::WindowUpdate { stream, .. } => stream,
            Frame::Settings { .. } => 0,
        }
    }

    /// Serialize to wire bytes.
    pub fn encode(&self) -> Bytes {
        let mut payload = BytesMut::new();
        let (ty, flags, stream) = match self {
            Frame::Data {
                stream,
                end_stream,
                payload: body,
            } => {
                payload.extend_from_slice(body);
                (
                    TYPE_DATA,
                    if *end_stream { FLAG_END_STREAM } else { 0 },
                    *stream,
                )
            }
            Frame::Headers {
                stream,
                end_stream,
                priority,
                fields,
            } => {
                payload.extend_from_slice(&[*priority]);
                for (name, value) in fields {
                    put_field(&mut payload, name, value);
                }
                (
                    TYPE_HEADERS,
                    if *end_stream { FLAG_END_STREAM } else { 0 },
                    *stream,
                )
            }
            Frame::Settings {
                max_concurrent_streams,
                initial_window,
                connection_window,
            } => {
                put_u32(&mut payload, *max_concurrent_streams);
                put_u32(&mut payload, *initial_window);
                put_u32(&mut payload, *connection_window);
                (TYPE_SETTINGS, 0, 0)
            }
            Frame::WindowUpdate { stream, increment } => {
                put_u32(&mut payload, *increment);
                (TYPE_WINDOW_UPDATE, 0, *stream)
            }
        };
        assert!(
            payload.len() <= MAX_FRAME_PAYLOAD,
            "frame payload {} exceeds protocol limit",
            payload.len()
        );
        let mut out = BytesMut::with_capacity(9 + payload.len());
        let len = payload.len() as u32;
        out.extend_from_slice(&len.to_be_bytes()[1..]); // 24-bit length
        out.extend_from_slice(&[ty, flags]);
        put_u32(&mut out, stream);
        out.extend_from_slice(&payload);
        out.freeze()
    }
}

/// Incremental frame decoder: owns the reassembly buffer.
#[derive(Default)]
pub struct FrameDecoder {
    buf: BytesMut,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Bytes buffered awaiting a complete frame.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Consume `bytes`, returning every frame completed by them. A
    /// decode error poisons the connection; callers must reset it.
    pub fn feed(&mut self, bytes: &[u8]) -> Result<Vec<Frame>, DecodeError> {
        self.buf.extend_from_slice(bytes);
        let mut frames = Vec::new();
        loop {
            if self.buf.len() < 9 {
                return Ok(frames);
            }
            let head = &self.buf[..9];
            let len = ((head[0] as usize) << 16) | ((head[1] as usize) << 8) | head[2] as usize;
            if len > MAX_FRAME_PAYLOAD {
                return Err(DecodeError::Oversized(len));
            }
            if self.buf.len() < 9 + len {
                return Ok(frames);
            }
            let ty = head[3];
            let flags = head[4];
            let stream = u32::from_be_bytes([head[5], head[6], head[7], head[8]]);
            let frame_bytes = self.buf.split_to(9 + len);
            let payload = &frame_bytes[9..];
            frames.push(decode_payload(ty, flags, stream, payload)?);
        }
    }
}

fn decode_payload(ty: u8, flags: u8, stream: u32, payload: &[u8]) -> Result<Frame, DecodeError> {
    let end_stream = flags & FLAG_END_STREAM != 0;
    match ty {
        TYPE_DATA => Ok(Frame::Data {
            stream,
            end_stream,
            payload: Bytes::copy_from_slice(payload),
        }),
        TYPE_HEADERS => {
            let (&priority, mut rest) = payload
                .split_first()
                .ok_or(DecodeError::Malformed("HEADERS without priority octet"))?;
            let mut fields = Vec::new();
            while !rest.is_empty() {
                let (name, r) = take_field(rest)?;
                let (value, r) = take_field(r)?;
                fields.push((name, value));
                rest = r;
            }
            Ok(Frame::Headers {
                stream,
                end_stream,
                priority,
                fields,
            })
        }
        TYPE_SETTINGS => {
            if payload.len() != 12 {
                return Err(DecodeError::Malformed("SETTINGS payload must be 12 bytes"));
            }
            Ok(Frame::Settings {
                max_concurrent_streams: u32::from_be_bytes(payload[..4].try_into().unwrap()),
                initial_window: u32::from_be_bytes(payload[4..8].try_into().unwrap()),
                connection_window: u32::from_be_bytes(payload[8..].try_into().unwrap()),
            })
        }
        TYPE_WINDOW_UPDATE => {
            if payload.len() != 4 {
                return Err(DecodeError::Malformed(
                    "WINDOW_UPDATE payload must be 4 bytes",
                ));
            }
            Ok(Frame::WindowUpdate {
                stream,
                increment: u32::from_be_bytes(payload.try_into().unwrap()),
            })
        }
        other => Err(DecodeError::UnknownType(other)),
    }
}

fn take_field(bytes: &[u8]) -> Result<(String, &[u8]), DecodeError> {
    if bytes.len() < 2 {
        return Err(DecodeError::Malformed("truncated field length"));
    }
    let len = u16::from_be_bytes([bytes[0], bytes[1]]) as usize;
    if bytes.len() < 2 + len {
        return Err(DecodeError::Malformed("truncated field body"));
    }
    let text = std::str::from_utf8(&bytes[2..2 + len])
        .map_err(|_| DecodeError::Malformed("field is not UTF-8"))?;
    Ok((text.to_string(), &bytes[2 + len..]))
}

// --- HTTP mapping -----------------------------------------------------

/// Header-block fields for `req` (pseudo-fields first, Host elided in
/// favour of `:authority`).
pub fn request_fields(req: &Request) -> Vec<(String, String)> {
    let mut fields = vec![
        (":method".to_string(), req.method.as_str().to_string()),
        (":path".to_string(), req.target.clone()),
        (
            ":authority".to_string(),
            req.host().unwrap_or_default().to_string(),
        ),
    ];
    for h in req.headers.iter() {
        if !h.name.eq_ignore_ascii_case("host") {
            fields.push((h.name.clone(), h.value.clone()));
        }
    }
    fields
}

/// Rebuild a request from a header block (body arrives via DATA frames).
pub fn request_from_fields(fields: &[(String, String)]) -> Result<Request, DecodeError> {
    let pseudo = |name: &str| {
        fields
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    };
    let method = pseudo(":method").ok_or(DecodeError::Malformed("missing :method"))?;
    let target = pseudo(":path").ok_or(DecodeError::Malformed("missing :path"))?;
    let authority = pseudo(":authority").ok_or(DecodeError::Malformed("missing :authority"))?;
    let mut headers = HeaderMap::new();
    headers.append("Host", authority);
    for (name, value) in fields {
        if !name.starts_with(':') {
            headers.append(name.clone(), value.clone());
        }
    }
    Ok(Request {
        method: Method::from_token(method),
        target: target.to_string(),
        version: Version::Http11,
        headers,
        body: Bytes::new(),
    })
}

/// Header-block fields for a response head (the body travels as DATA).
pub fn response_fields(resp: &Response) -> Vec<(String, String)> {
    let mut fields = vec![
        (":status".to_string(), resp.status.to_string()),
        (":reason".to_string(), resp.reason.clone()),
    ];
    for h in resp.headers.iter() {
        fields.push((h.name.clone(), h.value.clone()));
    }
    fields
}

/// Rebuild a response head from a header block; the returned response has
/// an empty body for DATA frames to fill.
pub fn response_from_fields(fields: &[(String, String)]) -> Result<Response, DecodeError> {
    let status = fields
        .iter()
        .find(|(n, _)| n == ":status")
        .and_then(|(_, v)| v.parse::<u16>().ok())
        .ok_or(DecodeError::Malformed("missing or invalid :status"))?;
    let reason = fields
        .iter()
        .find(|(n, _)| n == ":reason")
        .map(|(_, v)| v.clone())
        .unwrap_or_default();
    let mut headers = HeaderMap::new();
    for (name, value) in fields {
        if !name.starts_with(':') {
            headers.append(name.clone(), value.clone());
        }
    }
    Ok(Response {
        version: Version::Http11,
        status,
        reason,
        headers,
        body: Bytes::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: Frame) {
        let wire = frame.encode();
        let mut dec = FrameDecoder::new();
        let got = dec.feed(&wire).unwrap();
        assert_eq!(got, vec![frame]);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn data_round_trip() {
        round_trip(Frame::Data {
            stream: 7,
            end_stream: true,
            payload: Bytes::from_static(b"hello world"),
        });
    }

    #[test]
    fn headers_round_trip() {
        round_trip(Frame::Headers {
            stream: 3,
            end_stream: false,
            priority: 1,
            fields: vec![
                (":method".into(), "GET".into()),
                (":path".into(), "/a?b=c".into()),
                ("Accept".into(), "*/*".into()),
            ],
        });
    }

    #[test]
    fn settings_and_window_update_round_trip() {
        round_trip(Frame::Settings {
            max_concurrent_streams: 32,
            initial_window: 1 << 18,
            connection_window: 1 << 21,
        });
        round_trip(Frame::WindowUpdate {
            stream: 0,
            increment: 65535,
        });
    }

    #[test]
    fn split_delivery_reassembles() {
        let frames = vec![
            Frame::Settings {
                max_concurrent_streams: 8,
                initial_window: 4096,
                connection_window: 65536,
            },
            Frame::Headers {
                stream: 1,
                end_stream: true,
                priority: 0,
                fields: vec![(":method".into(), "GET".into())],
            },
            Frame::Data {
                stream: 1,
                end_stream: true,
                payload: Bytes::from_static(b"abcdefgh"),
            },
        ];
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&f.encode());
        }
        // One byte at a time: worst-case segmentation.
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for b in &wire {
            got.extend(dec.feed(std::slice::from_ref(b)).unwrap());
        }
        assert_eq!(got, frames);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn unknown_type_rejected() {
        let mut wire = Frame::WindowUpdate {
            stream: 1,
            increment: 1,
        }
        .encode()
        .to_vec();
        wire[3] = 0x7f;
        assert_eq!(
            FrameDecoder::new().feed(&wire),
            Err(DecodeError::UnknownType(0x7f))
        );
    }

    #[test]
    fn oversized_frame_rejected() {
        let wire = [0xff, 0xff, 0xff, 0, 0, 0, 0, 0, 1];
        assert!(matches!(
            FrameDecoder::new().feed(&wire),
            Err(DecodeError::Oversized(_))
        ));
    }

    #[test]
    fn request_maps_through_fields() {
        let mut req = Request::get("/x/y?q=1", "example.com");
        req.headers.append("Accept", "*/*");
        let fields = request_fields(&req);
        let back = request_from_fields(&fields).unwrap();
        assert_eq!(back.method, req.method);
        assert_eq!(back.target, req.target);
        assert_eq!(back.host(), Some("example.com"));
        assert_eq!(back.headers.get("accept"), Some("*/*"));
    }

    #[test]
    fn response_maps_through_fields() {
        let resp = Response::ok(Bytes::from_static(b"body"), "text/html");
        let fields = response_fields(&resp);
        let back = response_from_fields(&fields).unwrap();
        assert_eq!(back.status, 200);
        assert_eq!(back.reason, "OK");
        assert_eq!(back.headers.get("content-type"), Some("text/html"));
        assert!(back.body.is_empty(), "body travels as DATA");
    }
}
