//! # mm-mux — an HTTP/2-style multiplexed transport
//!
//! The paper's SPDY case study loads the same recorded pages over HTTP/1.1
//! and a multiplexed transport under identical emulated conditions. This
//! crate is that multiplexed transport, rebuilt over the simulated TCP in
//! `mm-net`: one connection per origin carries every request as an
//! independent *stream*, with binary framing ([`frame`]), per-stream and
//! per-connection flow control ([`flow`]), a configurable cap on concurrent
//! streams, and a simple priority scheme (the root document preempts
//! subresources).
//!
//! Wire model (HTTP/2 §4 shape, simplified):
//!
//! ```text
//! frame  = length(3, payload bytes) type(1) flags(1) stream-id(4) payload
//! types  = DATA 0x0 | HEADERS 0x1 | SETTINGS 0x4 | WINDOW_UPDATE 0x8
//! flags  = END_STREAM 0x1
//! ```
//!
//! Only DATA frames are flow controlled, in the server→client direction
//! (responses dwarf requests in the page-load workload). The client
//! replenishes windows with WINDOW_UPDATE once half the window has been
//! consumed, so a response larger than `initial_stream_window` stalls for
//! an RTT mid-transfer — the same behaviour real HTTP/2 deployments tune
//! around.
//!
//! [`client::MuxClient`] is the browser side; [`server::MuxServerConn`] is
//! the replay-server side; both speak the codec in [`frame`].

pub mod client;
pub mod flow;
pub mod frame;
pub mod server;

pub use client::{MuxClient, MuxError, StreamEvent, StreamObserver, NO_TAG};
pub use frame::{DecodeError, Frame, FrameDecoder};
pub use server::{MuxHandler, MuxResponder, MuxServerConn};

/// Multiplexed-transport knobs, shared by both endpoints of a connection.
///
/// The harness hands the same config to the browser and the replay
/// servers, mirroring how the paper's SPDY study deploys one protocol
/// build on both sides of the emulated path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MuxConfig {
    /// Cap on streams a client may have open at once on one connection
    /// (SPDY and HTTP/2 deployments of the era advertised 32–128).
    pub max_concurrent_streams: u32,
    /// Flow-control window per stream, bytes of DATA.
    pub initial_stream_window: u64,
    /// Flow-control window for the whole connection, bytes of DATA.
    pub connection_window: u64,
    /// Largest DATA payload the sender will put in one frame. Smaller
    /// frames interleave streams more fairly at the cost of header
    /// overhead (HTTP/2's default is 16 KiB).
    pub frame_max_data: usize,
    /// Initial congestion window (in segments) for the *servers* of a
    /// mux deployment; `None` keeps the host TCP default (IW10). SPDY-era
    /// deployments raised server IW — Google's SPDY experiments ran
    /// IW32 — because one multiplexed connection must match the burst
    /// capacity of a browser's six parallel connections. The default
    /// models that deployed stack; set `None` for a stock-TCP ablation.
    pub server_initial_cwnd_segments: Option<u32>,
}

impl Default for MuxConfig {
    fn default() -> Self {
        MuxConfig {
            max_concurrent_streams: 32,
            initial_stream_window: 512 * 1024,
            connection_window: 2 * 1024 * 1024,
            frame_max_data: 16 * 1024,
            server_initial_cwnd_segments: Some(32),
        }
    }
}

/// Stream priority carried in HEADERS: lower values are served first.
/// The browser marks the root document [`PRIORITY_ROOT`], discovery-
/// bearing subresources (markup, styles, scripts) [`PRIORITY_SUBRESOURCE`],
/// and leaf content (images, fonts, media) [`PRIORITY_BULK`] — the
/// resource-class scheme SPDY-era browsers used, because serving
/// scannable resources first unblocks further discovery.
pub const PRIORITY_ROOT: u8 = 0;
/// Priority of subresources that can reference further resources.
pub const PRIORITY_SUBRESOURCE: u8 = 1;
/// Priority of leaf content that references nothing.
pub const PRIORITY_BULK: u8 = 2;
