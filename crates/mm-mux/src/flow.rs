//! Flow-control accounting.
//!
//! Two small state machines, used on both ends of a connection:
//!
//! * [`FlowWindow`] — the sender's view of how many DATA bytes it may
//!   still put on the wire (per stream and per connection). Consumed as
//!   frames are sent, replenished by WINDOW_UPDATE.
//! * [`WindowRefill`] — the receiver's accounting of consumed bytes,
//!   deciding when to emit a WINDOW_UPDATE. Updates are batched until
//!   half the window has been consumed, halving update traffic versus
//!   per-frame acks while never letting the sender's window run dry as
//!   long as updates arrive within an RTT.

/// A sender-side flow-control window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowWindow {
    available: u64,
}

impl FlowWindow {
    /// A window with `initial` bytes of credit.
    pub fn new(initial: u64) -> FlowWindow {
        FlowWindow { available: initial }
    }

    /// Bytes that may still be sent.
    pub fn available(&self) -> u64 {
        self.available
    }

    /// True when no DATA may be sent.
    pub fn is_blocked(&self) -> bool {
        self.available == 0
    }

    /// Spend `n` bytes of credit. Panics if `n` exceeds the available
    /// window — callers size frames from [`Self::available`] first, so
    /// overspending is a protocol-logic bug, not a wire condition.
    pub fn consume(&mut self, n: u64) {
        assert!(
            n <= self.available,
            "flow-control overspend: {} > {}",
            n,
            self.available
        );
        self.available -= n;
    }

    /// Add `n` bytes of credit (a WINDOW_UPDATE arrived).
    pub fn grant(&mut self, n: u64) {
        self.available = self.available.saturating_add(n);
    }
}

/// Receiver-side accounting that batches WINDOW_UPDATEs.
#[derive(Debug, Clone)]
pub struct WindowRefill {
    window: u64,
    consumed_since_update: u64,
}

impl WindowRefill {
    /// Accounting for a window of `window` bytes.
    pub fn new(window: u64) -> WindowRefill {
        WindowRefill {
            window,
            consumed_since_update: 0,
        }
    }

    /// Record `n` consumed bytes. Returns the increment to advertise in a
    /// WINDOW_UPDATE once at least half the window has been consumed
    /// since the last one, `None` while batching.
    pub fn consumed(&mut self, n: u64) -> Option<u64> {
        self.consumed_since_update += n;
        if self.consumed_since_update * 2 >= self.window {
            Some(std::mem::take(&mut self.consumed_since_update))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consume_and_grant_balance() {
        let mut w = FlowWindow::new(100);
        w.consume(60);
        assert_eq!(w.available(), 40);
        assert!(!w.is_blocked());
        w.consume(40);
        assert!(w.is_blocked());
        w.grant(25);
        assert_eq!(w.available(), 25);
    }

    #[test]
    #[should_panic(expected = "flow-control overspend")]
    fn overspend_panics() {
        let mut w = FlowWindow::new(10);
        w.consume(11);
    }

    #[test]
    fn grant_saturates() {
        let mut w = FlowWindow::new(u64::MAX - 1);
        w.grant(100);
        assert_eq!(w.available(), u64::MAX);
    }

    #[test]
    fn refill_batches_until_half_window() {
        let mut r = WindowRefill::new(100);
        assert_eq!(r.consumed(20), None);
        assert_eq!(r.consumed(20), None);
        // 40 + 10 = 50 = half the window: flush the whole batch.
        assert_eq!(r.consumed(10), Some(50));
        // Counter reset; batching starts over.
        assert_eq!(r.consumed(49), None);
        assert_eq!(r.consumed(1), Some(50));
    }

    #[test]
    fn refill_flushes_big_single_consumption() {
        let mut r = WindowRefill::new(64);
        assert_eq!(r.consumed(64), Some(64));
    }
}
