//! Property tests: frame encode ∘ decode is the identity for arbitrary
//! frame sequences under arbitrary re-chunking of the byte stream — the
//! split-across-TCP-segment delivery the client and server see in
//! practice.

use bytes::Bytes;
use mm_mux::{Frame, FrameDecoder};
use proptest::prelude::*;

fn arb_stream_id() -> impl Strategy<Value = u32> {
    1u32..10_000
}

fn arb_field() -> impl Strategy<Value = (String, String)> {
    (
        "[:]?[a-zA-Z][a-zA-Z0-9-]{0,15}",
        "[a-zA-Z0-9 ;=/.,_-]{0,40}",
    )
}

fn arb_frame() -> BoxedStrategy<Frame> {
    prop_oneof![
        (
            arb_stream_id(),
            any::<bool>(),
            prop::collection::vec(any::<u8>(), 0..4000)
        )
            .prop_map(|(stream, end_stream, body)| Frame::Data {
                stream,
                end_stream,
                payload: Bytes::from(body),
            }),
        (
            arb_stream_id(),
            any::<bool>(),
            0u8..4,
            prop::collection::vec(arb_field(), 0..10)
        )
            .prop_map(|(stream, end_stream, priority, fields)| Frame::Headers {
                stream,
                end_stream,
                priority,
                fields,
            }),
        (1u32..1024, 1u32..(1 << 24), 1u32..(1 << 26)).prop_map(
            |(max_concurrent_streams, initial_window, connection_window)| Frame::Settings {
                max_concurrent_streams,
                initial_window,
                connection_window,
            }
        ),
        (0u32..10_000, 1u32..(1 << 30))
            .prop_map(|(stream, increment)| Frame::WindowUpdate { stream, increment }),
    ]
    .boxed()
}

proptest! {
    #[test]
    fn frame_stream_round_trip(
        frames in prop::collection::vec(arb_frame(), 1..20),
        chunk in 1usize..257,
    ) {
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&f.encode());
        }
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for piece in wire.chunks(chunk) {
            got.extend(dec.feed(piece).unwrap());
        }
        prop_assert_eq!(&got, &frames);
        prop_assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn decoder_never_panics_on_garbage(
        junk in prop::collection::vec(any::<u8>(), 0..2000),
        chunk in 1usize..97,
    ) {
        // Arbitrary bytes: the decoder must either produce frames or
        // return an error, never panic or loop.
        let mut dec = FrameDecoder::new();
        for piece in junk.chunks(chunk) {
            if dec.feed(piece).is_err() {
                break;
            }
        }
    }
}
