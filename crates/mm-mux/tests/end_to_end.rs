//! Client ↔ server over the simulated network: streams, concurrency
//! limits, priorities, flow control, and connection death.

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;
use mm_http::{Request, Response};
use mm_mux::{MuxClient, MuxConfig, MuxError, MuxHandler, MuxResponder, MuxServerConn};
use mm_net::{Host, IpAddr, Listener, Namespace, PacketIdGen, SocketAddr, SocketApp, TcpHandle};
use mm_sim::{SimDuration, Simulator};

/// Serves `/echo/<n>` with an `n`-byte body; tracks peak concurrency.
struct TestHandler {
    in_flight: Rc<RefCell<(usize, usize)>>, // (current, peak)
    delay: SimDuration,
}

impl MuxHandler for TestHandler {
    fn handle(&self, sim: &mut Simulator, req: Request, responder: MuxResponder) {
        let n: usize = req
            .path()
            .rsplit('/')
            .next()
            .and_then(|s| s.parse().ok())
            .unwrap_or(4);
        let body: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
        let resp = Response::ok(Bytes::from(body), "application/octet-stream");
        {
            let mut f = self.in_flight.borrow_mut();
            f.0 += 1;
            f.1 = f.1.max(f.0);
        }
        let in_flight = self.in_flight.clone();
        if self.delay.is_zero() {
            in_flight.borrow_mut().0 -= 1;
            responder.respond(sim, resp);
        } else {
            let at = sim.now() + self.delay;
            sim.schedule_at(at, move |sim| {
                in_flight.borrow_mut().0 -= 1;
                responder.respond(sim, resp);
            });
        }
    }
}

struct MuxListener {
    config: MuxConfig,
    handler: Rc<TestHandler>,
}

impl Listener for MuxListener {
    fn on_connection(&self, _sim: &mut Simulator, h: TcpHandle) -> Rc<dyn SocketApp> {
        Rc::new(MuxServerConn::new(
            h,
            self.config.clone(),
            self.handler.clone(),
        ))
    }
}

struct World {
    sim: Simulator,
    client_host: Host,
    server_addr: SocketAddr,
    in_flight: Rc<RefCell<(usize, usize)>>,
}

fn world(config: &MuxConfig, server_delay: SimDuration) -> World {
    let sim = Simulator::new();
    let ns = Namespace::root("mux-test");
    let ids = PacketIdGen::new();
    let server = Host::new_in(IpAddr::new(10, 0, 0, 1), ids.clone(), &ns);
    let client_host = Host::new_in(IpAddr::new(10, 0, 0, 2), ids, &ns);
    let in_flight = Rc::new(RefCell::new((0, 0)));
    server.listen(
        80,
        Rc::new(MuxListener {
            config: config.clone(),
            handler: Rc::new(TestHandler {
                in_flight: in_flight.clone(),
                delay: server_delay,
            }),
        }),
    );
    World {
        sim,
        client_host,
        server_addr: SocketAddr::new(IpAddr::new(10, 0, 0, 1), 80),
        in_flight,
    }
}

type Results = Rc<RefCell<Vec<(String, Result<Response, MuxError>)>>>;

fn fetch(w: &mut World, client: &MuxClient, path: &str, priority: u8, out: &Results) {
    let slot = out.clone();
    let label = path.to_string();
    client.request(
        &mut w.sim,
        Request::get(path, "10.0.0.1"),
        priority,
        move |_sim, result| {
            slot.borrow_mut().push((label, result));
        },
    );
}

#[test]
fn many_streams_one_connection() {
    let cfg = MuxConfig::default();
    let mut w = world(&cfg, SimDuration::ZERO);
    let client = MuxClient::connect(&mut w.sim, &w.client_host, w.server_addr, cfg);
    let out: Results = Rc::new(RefCell::new(Vec::new()));
    for i in 0..20 {
        fetch(&mut w, &client, &format!("/echo/{}", 100 + i), 1, &out);
    }
    w.sim.run();
    let results = out.borrow();
    assert_eq!(results.len(), 20);
    for (path, result) in results.iter() {
        let resp = result.as_ref().expect("stream completed");
        assert_eq!(resp.status, 200);
        let n: usize = path.rsplit('/').next().unwrap().parse().unwrap();
        assert_eq!(resp.body.len(), n);
        assert!(resp
            .body
            .iter()
            .enumerate()
            .all(|(i, &b)| b == (i % 251) as u8));
    }
    // Everything rode one TCP connection.
    assert_eq!(w.client_host.stats().connections_initiated, 1);
}

#[test]
fn concurrent_streams_capped() {
    let cfg = MuxConfig {
        max_concurrent_streams: 4,
        ..MuxConfig::default()
    };
    // Server think time keeps streams open long enough to overlap.
    let mut w = world(&cfg, SimDuration::from_millis(50));
    let client = MuxClient::connect(&mut w.sim, &w.client_host, w.server_addr, cfg);
    let out: Results = Rc::new(RefCell::new(Vec::new()));
    for _ in 0..12 {
        fetch(&mut w, &client, "/echo/64", 1, &out);
    }
    assert_eq!(
        client.queued_requests(),
        12,
        "nothing dispatches pre-connect"
    );
    w.sim.run();
    assert_eq!(out.borrow().len(), 12);
    let peak = w.in_flight.borrow().1;
    assert!(peak <= 4, "server saw {peak} concurrent requests");
    assert!(peak >= 2, "streams never overlapped");
}

#[test]
fn priority_jumps_the_queue() {
    let cfg = MuxConfig {
        max_concurrent_streams: 1,
        ..MuxConfig::default()
    };
    let mut w = world(&cfg, SimDuration::from_millis(10));
    let client = MuxClient::connect(&mut w.sim, &w.client_host, w.server_addr, cfg);
    let out: Results = Rc::new(RefCell::new(Vec::new()));
    // Three subresources queued first, then the "root" at priority 0.
    fetch(&mut w, &client, "/echo/8", 1, &out);
    fetch(&mut w, &client, "/echo/9", 1, &out);
    fetch(&mut w, &client, "/echo/10", 1, &out);
    fetch(&mut w, &client, "/root", 0, &out);
    w.sim.run();
    let order: Vec<String> = out.borrow().iter().map(|(p, _)| p.clone()).collect();
    // One stream at a time, so completion order == dispatch order; the
    // priority-0 request must run first.
    assert_eq!(order[0], "/root");
}

#[test]
fn large_body_flow_controlled() {
    // Windows far smaller than the body: the transfer must stall for
    // WINDOW_UPDATEs and still complete intact.
    let cfg = MuxConfig {
        initial_stream_window: 8 * 1024,
        connection_window: 16 * 1024,
        frame_max_data: 2 * 1024,
        ..MuxConfig::default()
    };
    let mut w = world(&cfg, SimDuration::ZERO);
    let client = MuxClient::connect(&mut w.sim, &w.client_host, w.server_addr, cfg);
    let out: Results = Rc::new(RefCell::new(Vec::new()));
    fetch(&mut w, &client, "/echo/200000", 1, &out);
    w.sim.run();
    let results = out.borrow();
    let resp = results[0].1.as_ref().expect("completed");
    assert_eq!(resp.body.len(), 200_000);
    assert!(resp
        .body
        .iter()
        .enumerate()
        .all(|(i, &b)| b == (i % 251) as u8));
}

#[test]
fn two_streams_interleave_under_tiny_frames() {
    let cfg = MuxConfig {
        frame_max_data: 1024,
        ..MuxConfig::default()
    };
    let mut w = world(&cfg, SimDuration::ZERO);
    let client = MuxClient::connect(&mut w.sim, &w.client_host, w.server_addr, cfg);
    let out: Results = Rc::new(RefCell::new(Vec::new()));
    fetch(&mut w, &client, "/echo/50000", 1, &out);
    fetch(&mut w, &client, "/echo/50000", 1, &out);
    w.sim.run();
    let results = out.borrow();
    assert_eq!(results.len(), 2);
    for (_, r) in results.iter() {
        assert_eq!(r.as_ref().unwrap().body.len(), 50_000);
    }
}

#[test]
fn refused_connection_fails_requests() {
    let cfg = MuxConfig::default();
    let mut w = world(&cfg, SimDuration::ZERO);
    // Port 81 has no listener: the SYN is refused with RST.
    let addr = SocketAddr::new(IpAddr::new(10, 0, 0, 1), 81);
    let client = MuxClient::connect(&mut w.sim, &w.client_host, addr, cfg);
    let out: Results = Rc::new(RefCell::new(Vec::new()));
    fetch(&mut w, &client, "/echo/1", 1, &out);
    w.sim.run();
    assert!(client.is_dead());
    let results = out.borrow();
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].1, Err(MuxError::ConnectionClosed));
    // Requests after death fail immediately, too.
    drop(results);
    fetch(&mut w, &client, "/echo/2", 1, &out);
    assert_eq!(out.borrow().len(), 2);
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let cfg = MuxConfig::default();
        let mut w = world(&cfg, SimDuration::from_millis(5));
        let client = MuxClient::connect(&mut w.sim, &w.client_host, w.server_addr, cfg);
        let out: Results = Rc::new(RefCell::new(Vec::new()));
        for i in 0..10 {
            fetch(
                &mut w,
                &client,
                &format!("/echo/{}", 1000 * (i + 1)),
                1,
                &out,
            );
        }
        w.sim.run();
        w.sim.now()
    };
    assert_eq!(run(), run());
}

#[test]
fn mismatched_connection_windows_negotiate() {
    // Server configured with a large connection window, client with a
    // tiny one: SETTINGS negotiation must make the server respect the
    // client's window (and its WINDOW_UPDATE cadence), or the transfer
    // would stall forever mid-body.
    let server_cfg = MuxConfig::default(); // 2 MiB connection window
    let client_cfg = MuxConfig {
        initial_stream_window: 32 * 1024,
        connection_window: 64 * 1024,
        ..MuxConfig::default()
    };
    let mut w = world(&server_cfg, SimDuration::ZERO);
    let client = MuxClient::connect(&mut w.sim, &w.client_host, w.server_addr, client_cfg);
    let out: Results = Rc::new(RefCell::new(Vec::new()));
    fetch(&mut w, &client, "/echo/500000", 1, &out);
    w.sim.run();
    let results = out.borrow();
    let resp = results[0].1.as_ref().expect("completed despite mismatch");
    assert_eq!(resp.body.len(), 500_000);
}
