//! An index over a [`StoredSite`] for fast request matching.
//!
//! Real mahimahi's CGI scans all recorded pairs per request; with a
//! 500-site corpus and hundreds of loads we index by (host, path) once per
//! site instead. The observable matching semantics are identical.

use std::collections::HashMap;

use mm_record::{RequestResponsePair, StoredSite};

/// Immutable (host, path) → candidate-pair-indices index.
pub struct StoreIndex {
    pairs: Vec<RequestResponsePair>,
    by_host_path: HashMap<(String, String), Vec<usize>>,
    empty: Vec<usize>,
}

impl StoreIndex {
    /// Build the index (clones the pairs out of the site).
    pub fn build(site: &StoredSite) -> StoreIndex {
        let pairs = site.pairs.clone();
        let mut by_host_path: HashMap<(String, String), Vec<usize>> = HashMap::new();
        for (i, p) in pairs.iter().enumerate() {
            let host = p.request.host().unwrap_or("").to_ascii_lowercase();
            let path = p.request.path().to_string();
            by_host_path.entry((host, path)).or_default().push(i);
        }
        StoreIndex {
            pairs,
            by_host_path,
            empty: Vec::new(),
        }
    }

    /// Candidate pair indices for a (host, path), in recording order.
    pub fn candidates(&self, host: &str, path: &str) -> &[usize] {
        self.by_host_path
            .get(&(host.to_ascii_lowercase(), path.to_string()))
            .unwrap_or(&self.empty)
    }

    /// Fetch a pair by index.
    pub fn pair(&self, idx: usize) -> &RequestResponsePair {
        &self.pairs[idx]
    }

    /// Number of pairs indexed.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if the site had no pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use mm_http::{Request, Response};
    use mm_net::{IpAddr, SocketAddr};
    use mm_record::Scheme;

    fn site() -> StoredSite {
        let origin = SocketAddr::new(IpAddr::new(1, 1, 1, 1), 80);
        let mut s = StoredSite::new("s", "http://1.1.1.1:80/");
        for (host, target) in [
            ("a.com", "/x"),
            ("a.com", "/x?q=1"),
            ("A.COM", "/y"),
            ("b.com", "/x"),
        ] {
            s.push(RequestResponsePair {
                origin,
                scheme: Scheme::Http,
                request: Request::get(target, host),
                response: Response::ok(Bytes::new(), "text/plain"),
            });
        }
        s
    }

    #[test]
    fn groups_by_host_and_path() {
        let idx = StoreIndex::build(&site());
        assert_eq!(idx.len(), 4);
        assert_eq!(idx.candidates("a.com", "/x").len(), 2);
        assert_eq!(idx.candidates("b.com", "/x").len(), 1);
        assert_eq!(idx.candidates("c.com", "/x").len(), 0);
        assert_eq!(idx.candidates("a.com", "/z").len(), 0);
    }

    #[test]
    fn host_lookup_case_insensitive() {
        let idx = StoreIndex::build(&site());
        assert_eq!(idx.candidates("a.com", "/y").len(), 1);
        assert_eq!(idx.candidates("A.com", "/y").len(), 1);
    }

    #[test]
    fn candidates_in_recording_order() {
        let idx = StoreIndex::build(&site());
        let c = idx.candidates("a.com", "/x");
        assert!(c[0] < c[1]);
        assert_eq!(idx.pair(c[0]).request.target, "/x");
        assert_eq!(idx.pair(c[1]).request.target, "/x?q=1");
    }
}
