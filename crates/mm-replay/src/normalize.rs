//! Response normalization for replay.
//!
//! Recorded bodies are stored de-chunked; before a replay server sends a
//! recorded response back onto the wire it must carry consistent framing:
//! a `Content-Length` matching the stored body, no `Transfer-Encoding`,
//! and no stale `Connection: close` (replay connections are persistent —
//! Apache with keep-alive in the real system).

use mm_http::Response;

/// Produce a wire-consistent copy of a recorded response.
pub fn normalize_for_replay(recorded: &Response) -> Response {
    let mut resp = recorded.clone();
    resp.headers.remove("transfer-encoding");
    resp.headers.remove("connection");
    if Response::bodyless_status(resp.status) {
        resp.headers.remove("content-length");
    } else {
        resp.headers
            .set("Content-Length", resp.body.len().to_string());
    }
    resp
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn chunked_recording_becomes_sized() {
        let mut r = Response::ok(Bytes::from_static(b"stream"), "text/plain");
        r.headers.remove("Content-Length");
        r.headers.set("Transfer-Encoding", "chunked");
        let n = normalize_for_replay(&r);
        assert!(!n.headers.is_chunked());
        assert_eq!(n.headers.content_length(), Some(6));
    }

    #[test]
    fn content_length_corrected() {
        let mut r = Response::ok(Bytes::from_static(b"abcdef"), "text/plain");
        r.headers.set("Content-Length", "999"); // stale/wrong
        let n = normalize_for_replay(&r);
        assert_eq!(n.headers.content_length(), Some(6));
    }

    #[test]
    fn connection_close_stripped() {
        let mut r = Response::ok(Bytes::new(), "text/plain");
        r.headers.set("Connection", "close");
        let n = normalize_for_replay(&r);
        assert!(!n.headers.connection_close());
    }

    #[test]
    fn bodyless_status_keeps_no_length() {
        let r = Response::status_only(304, "Not Modified");
        let n = normalize_for_replay(&r);
        assert_eq!(n.headers.content_length(), None);
        assert!(n.body.is_empty());
    }

    #[test]
    fn body_and_status_untouched() {
        let r = Response::ok(Bytes::from_static(b"data"), "image/png");
        let n = normalize_for_replay(&r);
        assert_eq!(n.status, 200);
        assert_eq!(&n.body[..], b"data");
        assert_eq!(n.headers.get("content-type"), Some("image/png"));
    }
}
