//! ReplayShell: mirroring a recorded website.
//!
//! From the paper: "ReplayShell accurately emulates the multi-origin nature
//! of websites by spawning an Apache Web server for each distinct IP/port
//! pair seen while recording. To operate transparently, ReplayShell binds
//! its Apache Web servers to the same IP address and port number as their
//! recorded counterparts. [...] All browser requests are handled by one of
//! ReplayShell's servers, each of which can access the entire recorded
//! content for the site."
//!
//! The single-server ablation (§4, Table 2, Figure 3) is [`ReplayMode::SingleServer`]:
//! all recorded content is served from one host, and the address map —
//! the browser's stand-in for DNS — points every origin at it.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use mm_capture::{HttpEvent, HttpPhase, TapHandle, NO_RESOURCE};
use mm_http::{write_response, Request, RequestParser, Response};
use mm_mux::{MuxConfig, MuxHandler, MuxResponder, MuxServerConn};
use mm_net::{
    Host, Listener, Namespace, Origin, PacketIdGen, SocketAddr, SocketApp, SocketEvent, TcpHandle,
};
use mm_sim::{SimDuration, Simulator, Timestamp};
use mm_trace::{Span, SpanHandle, SpanKind};

use crate::matcher::Matcher;
use crate::store_index::StoreIndex;
use mm_record::StoredSite;

/// Replay topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplayMode {
    /// One virtual server per recorded ip:port (the paper's design).
    #[default]
    MultiOrigin,
    /// Everything served from a single server (the ablation the paper
    /// evaluates to show why multi-origin preservation matters).
    SingleServer,
}

/// Application protocol the replay servers speak. Must match what the
/// browser speaks — the harness keeps the two in sync.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum ServerProtocol {
    /// Plain HTTP/1.1, one request at a time per connection.
    #[default]
    Http1,
    /// The mm-mux multiplexed transport: one connection, many streams.
    Mux(MuxConfig),
}

/// ReplayShell configuration.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    pub mode: ReplayMode,
    /// Per-request server processing time. Mahimahi's replay path forks a
    /// CGI process that scans the recording per request — a few
    /// milliseconds on 2014 hardware — and this cost is part of what
    /// Figure 3 measures (replay is slightly *slower* than the live CDN
    /// serving the same bytes).
    pub think_time: SimDuration,
    /// Wire protocol spoken on every listening port.
    pub protocol: ServerProtocol,
    /// TCP configuration for every replay server host (`None` keeps the
    /// host default). The harness passes its per-load TCP knob — e.g.
    /// `TcpConfig::recovery` for the figcell/figrack experiments —
    /// through here so a replay world built outside the harness gets
    /// the same wiring.
    pub tcp: Option<mm_net::TcpConfig>,
    /// Per-request observability tap: every server reports `ServerRecv`
    /// when a request parses and `ServerSent` when its response goes on
    /// the wire (after think time). `resource` is [`NO_RESOURCE`] — the
    /// server has no notion of the browser's resource indices; analyzers
    /// join on URL. Taps observe only.
    pub capture: Option<TapHandle>,
    /// Causal-span sink: every served request emits one `ServerThink`
    /// span covering request-parsed → response-written (the think-time
    /// window, including any CPU-serialization wait). `conn` is the
    /// *initiator's* address id — the same id the browser-side socket
    /// stamps — and `url` the request target, so `mmpath` splits the
    /// browser's request→first-byte interval at the server's actual
    /// service window. Sinks observe only.
    pub span: Option<SpanHandle>,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            mode: ReplayMode::MultiOrigin,
            think_time: SimDuration::from_millis(25),
            protocol: ServerProtocol::Http1,
            tcp: None,
            capture: None,
            span: None,
        }
    }
}

/// Emit an [`HttpEvent`] if a tap is attached (server side: no resource
/// index, the URL target is the join key).
fn tap_http(
    tap: &Option<TapHandle>,
    now: Timestamp,
    phase: HttpPhase,
    url: &str,
    status: u16,
    bytes: u64,
) {
    if let Some(tap) = tap {
        tap.on_http(&HttpEvent {
            t_ns: now.as_nanos(),
            phase,
            resource: NO_RESOURCE,
            url: url.to_string(),
            status,
            bytes,
        });
    }
}

/// The span layer's connection id for the peer at `addr` (the browser
/// side packs its *local* address the same way, which is the join).
fn span_conn_id(addr: SocketAddr) -> u64 {
    ((addr.ip.0 as u64) << 16) | addr.port as u64
}

/// Emit one `ServerThink` span if a sink is attached.
fn span_think(span: &Option<SpanHandle>, conn: u64, url: &str, t0: Timestamp, t1: Timestamp) {
    if let Some(sp) = span {
        let id = sp.next_id();
        sp.record(Span {
            load: 0, // stamped by the recording buffer
            id,
            parent: 0,
            kind: SpanKind::ServerThink,
            t0_ns: t0.as_nanos(),
            t1_ns: t1.as_nanos(),
            res: mm_trace::NO_RESOURCE,
            conn,
            url: url.to_string(),
            detail: String::new(),
        });
    }
}

/// A running ReplayShell: virtual servers bound to recorded addresses.
pub struct ReplayShell {
    /// The namespace the servers live in (ReplayShell is outermost).
    pub ns: Namespace,
    /// One host per distinct server IP.
    pub hosts: Vec<Host>,
    /// Origin → actual server address. Identity for multi-origin replay;
    /// all-to-one for single-server. This is the browser's "DNS".
    address_map: HashMap<Origin, SocketAddr>,
    /// The shared matcher (all servers see the whole recording).
    pub matcher: Rc<Matcher>,
}

impl ReplayShell {
    /// Spawn replay servers for `site` inside `ns`.
    ///
    /// Panics if the recording is empty — replaying nothing is a harness
    /// bug, not a runtime condition.
    pub fn new(ns: &Namespace, site: &StoredSite, config: ReplayConfig, ids: &PacketIdGen) -> Self {
        assert!(!site.pairs.is_empty(), "cannot replay an empty recording");
        let matcher = Rc::new(Matcher::new(StoreIndex::build(site)));
        let apply_tcp = |host: &Host| {
            if let Some(tcp) = &config.tcp {
                host.set_tcp_config(tcp.clone());
            }
        };
        let origins = site.origins();

        let mut hosts: Vec<Host> = Vec::new();
        let mut by_ip: HashMap<mm_net::IpAddr, Host> = HashMap::new();
        let mut address_map = HashMap::new();

        match config.mode {
            ReplayMode::MultiOrigin => {
                let mut cpus: HashMap<mm_net::IpAddr, Rc<Cell<Timestamp>>> = HashMap::new();
                for origin in &origins {
                    let host = by_ip.entry(origin.ip).or_insert_with(|| {
                        let h = Host::new_in(origin.ip, ids.clone(), ns);
                        apply_tcp(&h);
                        hosts.push(h.clone());
                        h
                    });
                    let cpu = cpus
                        .entry(origin.ip)
                        .or_insert_with(|| Rc::new(Cell::new(Timestamp::ZERO)))
                        .clone();
                    host.listen(
                        origin.port,
                        Rc::new(ReplayListener {
                            matcher: matcher.clone(),
                            think_time: config.think_time,
                            protocol: config.protocol.clone(),
                            tap: config.capture.clone(),
                            span: config.span.clone(),
                            cpu,
                        }),
                    );
                    address_map.insert(*origin, *origin);
                }
            }
            ReplayMode::SingleServer => {
                // Serve everything from the root document's IP (or the
                // first origin if the root is alien), on every recorded
                // port.
                let the_ip = origins[0].ip;
                let host = Host::new_in(the_ip, ids.clone(), ns);
                apply_tcp(&host);
                hosts.push(host.clone());
                // One CPU shared by everything: the whole point of the
                // ablation is that a single machine serves the site.
                let cpu = Rc::new(Cell::new(Timestamp::ZERO));
                let mut ports_bound = std::collections::BTreeSet::new();
                for origin in &origins {
                    if ports_bound.insert(origin.port) {
                        host.listen(
                            origin.port,
                            Rc::new(ReplayListener {
                                matcher: matcher.clone(),
                                think_time: config.think_time,
                                protocol: config.protocol.clone(),
                                tap: config.capture.clone(),
                                span: config.span.clone(),
                                cpu: cpu.clone(),
                            }),
                        );
                    }
                    address_map.insert(*origin, SocketAddr::new(the_ip, origin.port));
                }
            }
        }

        ReplayShell {
            ns: ns.clone(),
            hosts,
            address_map,
            matcher,
        }
    }

    /// Resolve an origin to the address actually serving it.
    pub fn resolve(&self, origin: Origin) -> SocketAddr {
        *self.address_map.get(&origin).unwrap_or(&origin) // unseen origins fall through unchanged
    }

    /// Number of distinct server hosts spawned.
    pub fn server_count(&self) -> usize {
        self.hosts.len()
    }

    /// Route every server host's socket timers through a shared per-host
    /// [`mm_net::Host::enable_timer_mux`] mux. Population-scale worlds
    /// call this; single-load baselines leave the global timer heap.
    pub fn enable_timer_mux(&self) {
        for host in &self.hosts {
            host.enable_timer_mux();
        }
    }
}

struct ReplayListener {
    matcher: Rc<Matcher>,
    think_time: SimDuration,
    protocol: ServerProtocol,
    tap: Option<TapHandle>,
    span: Option<SpanHandle>,
    /// The server machine's CPU: request matching (Apache + CGI in the
    /// real system) serializes per host. Under the single-server ablation
    /// every connection shares one CPU — the contention this models is a
    /// large part of why consolidating origins hurts.
    cpu: Rc<Cell<Timestamp>>,
}

impl Listener for ReplayListener {
    fn on_connection(&self, _sim: &mut Simulator, h: TcpHandle) -> Rc<dyn SocketApp> {
        match &self.protocol {
            ServerProtocol::Http1 => Rc::new(ReplayConn {
                matcher: self.matcher.clone(),
                think_time: self.think_time,
                cpu: self.cpu.clone(),
                tap: self.tap.clone(),
                span: self.span.clone(),
                parser: RefCell::new(RequestParser::new()),
            }),
            ServerProtocol::Mux(config) => {
                let conn = span_conn_id(h.remote_addr());
                Rc::new(MuxServerConn::new(
                    h,
                    config.clone(),
                    Rc::new(MuxReplayHandler {
                        matcher: self.matcher.clone(),
                        think_time: self.think_time,
                        cpu: self.cpu.clone(),
                        tap: self.tap.clone(),
                        span: self.span.clone(),
                        conn,
                    }),
                ))
            }
        }
    }
}

/// Request handler behind a mux-speaking replay server: the same matcher
/// lookup and CPU-serialized think time as the HTTP/1.1 path, so a
/// protocol A/B study varies the wire protocol and nothing else.
struct MuxReplayHandler {
    matcher: Rc<Matcher>,
    think_time: SimDuration,
    cpu: Rc<Cell<Timestamp>>,
    tap: Option<TapHandle>,
    span: Option<SpanHandle>,
    /// Span-layer id of this connection's initiator.
    conn: u64,
}

impl MuxHandler for MuxReplayHandler {
    fn handle(&self, sim: &mut Simulator, req: Request, responder: MuxResponder) {
        let recv_at = sim.now();
        tap_http(&self.tap, recv_at, HttpPhase::ServerRecv, &req.target, 0, 0);
        let resp = self
            .matcher
            .lookup(&req)
            .unwrap_or_else(Response::not_found);
        if self.think_time.is_zero() {
            tap_http(
                &self.tap,
                sim.now(),
                HttpPhase::ServerSent,
                &req.target,
                resp.status,
                resp.body.len() as u64,
            );
            span_think(&self.span, self.conn, &req.target, recv_at, sim.now());
            responder.respond(sim, resp);
        } else {
            // Serialize the matching work on this server's CPU, exactly
            // like the HTTP/1.1 replay path.
            let start = self.cpu.get().max(sim.now());
            let done = start + self.think_time;
            self.cpu.set(done);
            let tap = self.tap.clone();
            let span = self.span.clone();
            let conn = self.conn;
            sim.schedule_at(done, move |sim| {
                tap_http(
                    &tap,
                    sim.now(),
                    HttpPhase::ServerSent,
                    &req.target,
                    resp.status,
                    resp.body.len() as u64,
                );
                span_think(&span, conn, &req.target, recv_at, sim.now());
                responder.respond(sim, resp);
            });
        }
    }
}

struct ReplayConn {
    matcher: Rc<Matcher>,
    think_time: SimDuration,
    cpu: Rc<Cell<Timestamp>>,
    tap: Option<TapHandle>,
    span: Option<SpanHandle>,
    parser: RefCell<RequestParser>,
}

impl SocketApp for ReplayConn {
    fn on_event(&self, sim: &mut Simulator, h: &TcpHandle, ev: SocketEvent) {
        match ev {
            SocketEvent::Data(bytes) => {
                let reqs = match self.parser.borrow_mut().feed(&bytes) {
                    Ok(reqs) => reqs,
                    Err(_) => {
                        // Garbage on a replay connection: reset, like a
                        // real server would.
                        h.abort(sim);
                        return;
                    }
                };
                for req in reqs {
                    let recv_at = sim.now();
                    tap_http(&self.tap, recv_at, HttpPhase::ServerRecv, &req.target, 0, 0);
                    let resp = self
                        .matcher
                        .lookup(&req)
                        .unwrap_or_else(Response::not_found);
                    let status = resp.status;
                    let body_len = resp.body.len() as u64;
                    let wire = write_response(&resp);
                    let conn = span_conn_id(h.remote_addr());
                    if self.think_time.is_zero() {
                        tap_http(
                            &self.tap,
                            sim.now(),
                            HttpPhase::ServerSent,
                            &req.target,
                            status,
                            body_len,
                        );
                        span_think(&self.span, conn, &req.target, recv_at, sim.now());
                        h.send(sim, wire);
                    } else {
                        // Serialize the matching work on this server's CPU.
                        let start = self.cpu.get().max(sim.now());
                        let done = start + self.think_time;
                        self.cpu.set(done);
                        let h2 = h.clone();
                        let tap = self.tap.clone();
                        let span = self.span.clone();
                        sim.schedule_at(done, move |sim| {
                            tap_http(
                                &tap,
                                sim.now(),
                                HttpPhase::ServerSent,
                                &req.target,
                                status,
                                body_len,
                            );
                            span_think(&span, conn, &req.target, recv_at, sim.now());
                            h2.send(sim, wire);
                        });
                    }
                }
            }
            SocketEvent::PeerClosed => h.close(sim),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use mm_http::Request;
    use mm_net::IpAddr;
    use mm_record::{fetch_via, RequestResponsePair, Scheme};
    use mm_sim::Timestamp;

    fn site() -> StoredSite {
        let mut s = StoredSite::new("example.com", "http://10.0.0.1:80/");
        let mut add = |ip: [u8; 4], port: u16, host: &str, target: &str, body: &str| {
            s.push(RequestResponsePair {
                origin: SocketAddr::new(IpAddr::new(ip[0], ip[1], ip[2], ip[3]), port),
                scheme: Scheme::Http,
                request: Request::get(target, host),
                response: Response::ok(Bytes::copy_from_slice(body.as_bytes()), "text/html"),
            });
        };
        add([10, 0, 0, 1], 80, "example.com", "/", "<html>root</html>");
        add(
            [10, 0, 0, 2],
            80,
            "cdn.example.com",
            "/lib.js",
            "console.log(1)",
        );
        add(
            [10, 0, 0, 2],
            443,
            "cdn.example.com",
            "/secure.js",
            "console.log(2)",
        );
        add([10, 0, 0, 3], 80, "img.example.com", "/a.png", "PNGDATA");
        s
    }

    fn fetch_body(
        sim: &mut Simulator,
        client: &Host,
        addr: SocketAddr,
        req: Request,
    ) -> Rc<RefCell<Vec<u8>>> {
        fetch_via(sim, client, addr, req)
    }

    fn body_text(buf: &Rc<RefCell<Vec<u8>>>) -> String {
        let got = buf.borrow();
        let pos = got
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .expect("response head");
        String::from_utf8_lossy(&got[pos + 4..]).into_owned()
    }

    #[test]
    fn multi_origin_spawns_one_server_per_ip() {
        let ns = Namespace::root("replay");
        let ids = PacketIdGen::new();
        let shell = ReplayShell::new(&ns, &site(), ReplayConfig::default(), &ids);
        assert_eq!(shell.server_count(), 3, "3 distinct IPs");
        // 10.0.0.2 binds both :80 and :443.
        assert_eq!(
            shell.resolve(SocketAddr::new(IpAddr::new(10, 0, 0, 2), 443)),
            SocketAddr::new(IpAddr::new(10, 0, 0, 2), 443)
        );
    }

    #[test]
    fn replays_recorded_content_at_recorded_addresses() {
        let mut sim = Simulator::new();
        let ns = Namespace::root("replay");
        let ids = PacketIdGen::new();
        let _shell = ReplayShell::new(
            &ns,
            &site(),
            ReplayConfig {
                think_time: SimDuration::ZERO,
                ..ReplayConfig::default()
            },
            &ids,
        );
        let client = Host::new_in(IpAddr::new(100, 64, 0, 2), ids, &ns);
        let b = fetch_body(
            &mut sim,
            &client,
            SocketAddr::new(IpAddr::new(10, 0, 0, 1), 80),
            Request::get("/", "example.com"),
        );
        let b2 = fetch_body(
            &mut sim,
            &client,
            SocketAddr::new(IpAddr::new(10, 0, 0, 2), 443),
            Request::get("/secure.js", "cdn.example.com"),
        );
        sim.run_until(Timestamp::from_secs(5));
        assert_eq!(body_text(&b), "<html>root</html>");
        assert_eq!(body_text(&b2), "console.log(2)");
    }

    #[test]
    fn unrecorded_request_gets_404() {
        let mut sim = Simulator::new();
        let ns = Namespace::root("replay");
        let ids = PacketIdGen::new();
        let _shell = ReplayShell::new(&ns, &site(), ReplayConfig::default(), &ids);
        let client = Host::new_in(IpAddr::new(100, 64, 0, 2), ids, &ns);
        let b = fetch_body(
            &mut sim,
            &client,
            SocketAddr::new(IpAddr::new(10, 0, 0, 1), 80),
            Request::get("/nope", "example.com"),
        );
        sim.run_until(Timestamp::from_secs(5));
        let text = String::from_utf8_lossy(&b.borrow()).into_owned();
        assert!(text.starts_with("HTTP/1.1 404"), "got: {text}");
    }

    #[test]
    fn single_server_mode_maps_all_origins_to_one() {
        let ns = Namespace::root("replay");
        let ids = PacketIdGen::new();
        let shell = ReplayShell::new(
            &ns,
            &site(),
            ReplayConfig {
                mode: ReplayMode::SingleServer,
                ..ReplayConfig::default()
            },
            &ids,
        );
        assert_eq!(shell.server_count(), 1);
        let one_ip = shell.hosts[0].ip();
        for origin in site().origins() {
            assert_eq!(shell.resolve(origin).ip, one_ip);
            assert_eq!(shell.resolve(origin).port, origin.port);
        }
    }

    #[test]
    fn single_server_serves_other_origins_content() {
        let mut sim = Simulator::new();
        let ns = Namespace::root("replay");
        let ids = PacketIdGen::new();
        let shell = ReplayShell::new(
            &ns,
            &site(),
            ReplayConfig {
                mode: ReplayMode::SingleServer,
                think_time: SimDuration::ZERO,
                ..ReplayConfig::default()
            },
            &ids,
        );
        let client = Host::new_in(IpAddr::new(100, 64, 0, 2), ids, &ns);
        // Fetch img.example.com content through the single server.
        let addr = shell.resolve(SocketAddr::new(IpAddr::new(10, 0, 0, 3), 80));
        let b = fetch_body(
            &mut sim,
            &client,
            addr,
            Request::get("/a.png", "img.example.com"),
        );
        sim.run_until(Timestamp::from_secs(5));
        assert_eq!(body_text(&b), "PNGDATA");
    }

    #[test]
    fn think_time_delays_response() {
        let mut sim = Simulator::new();
        let ns = Namespace::root("replay");
        let ids = PacketIdGen::new();
        let _shell = ReplayShell::new(
            &ns,
            &site(),
            ReplayConfig {
                mode: ReplayMode::MultiOrigin,
                think_time: SimDuration::from_millis(50),
                ..ReplayConfig::default()
            },
            &ids,
        );
        let client = Host::new_in(IpAddr::new(100, 64, 0, 2), ids, &ns);
        let b = fetch_body(
            &mut sim,
            &client,
            SocketAddr::new(IpAddr::new(10, 0, 0, 1), 80),
            Request::get("/", "example.com"),
        );
        sim.run_until(Timestamp::from_millis(40));
        assert!(b.borrow().is_empty(), "response gated by think time");
        sim.run_until(Timestamp::from_secs(5));
        assert_eq!(body_text(&b), "<html>root</html>");
    }

    #[test]
    #[should_panic(expected = "empty recording")]
    fn empty_recording_rejected() {
        let ns = Namespace::root("replay");
        let ids = PacketIdGen::new();
        let empty = StoredSite::new("empty", "http://10.0.0.1:80/");
        let _ = ReplayShell::new(&ns, &empty, ReplayConfig::default(), &ids);
    }
}
