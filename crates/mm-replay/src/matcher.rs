//! ReplayShell's request-matching algorithm.
//!
//! From the paper: "The Apache configuration redirects incoming requests to
//! a CGI script which compares each request to the set of all recorded
//! request-response pairs to locate a matching response."
//!
//! The algorithm, mirroring mahimahi's `replayserver`:
//! 1. candidates must match on **Host header** and **path** (and method);
//! 2. among candidates, an exact query-string match wins;
//! 3. otherwise the candidate with the **longest common prefix** of query
//!    string wins (ties broken by recording order);
//! 4. no candidate → no match (the server answers 404).
//!
//! Every server matches against the *entire* recorded site — this is what
//! lets any origin serve any resource, and what makes the single-server
//! ablation a pure topology change.

use mm_http::{Request, Response};

use crate::normalize::normalize_for_replay;
use crate::store_index::StoreIndex;

/// Statistics from matching (for diagnostics and tests).
#[derive(Debug, Clone, Copy, Default)]
pub struct MatchStats {
    pub exact: u64,
    pub prefix: u64,
    pub miss: u64,
}

/// A compiled matcher over one recorded site.
pub struct Matcher {
    index: StoreIndex,
    stats: std::cell::RefCell<MatchStats>,
}

impl Matcher {
    /// Build from a store index.
    pub fn new(index: StoreIndex) -> Self {
        Matcher {
            index,
            stats: std::cell::RefCell::new(MatchStats::default()),
        }
    }

    /// Counters snapshot.
    pub fn stats(&self) -> MatchStats {
        *self.stats.borrow()
    }

    /// Locate the recorded response for `req`, or `None` (404).
    /// The returned response is normalized for replay (sized body,
    /// no chunked framing).
    pub fn lookup(&self, req: &Request) -> Option<Response> {
        let host = req.host().unwrap_or("");
        let candidates = self.index.candidates(host, req.path());
        if candidates.is_empty() {
            self.stats.borrow_mut().miss += 1;
            return None;
        }
        let want_query = req.query().unwrap_or("");
        // Exact query match first.
        for &idx in candidates {
            let cand = self.index.pair(idx);
            if cand.request.method == req.method && cand.request.query().unwrap_or("") == want_query
            {
                self.stats.borrow_mut().exact += 1;
                return Some(normalize_for_replay(&cand.response));
            }
        }
        // Longest-common-prefix of query string.
        let mut best: Option<(usize, usize)> = None; // (lcp, idx)
        for &idx in candidates {
            let cand = self.index.pair(idx);
            if cand.request.method != req.method {
                continue;
            }
            let lcp = common_prefix_len(want_query, cand.request.query().unwrap_or(""));
            let better = match best {
                None => true,
                Some((best_lcp, _)) => lcp > best_lcp,
            };
            if better {
                best = Some((lcp, idx));
            }
        }
        match best {
            Some((_, idx)) => {
                self.stats.borrow_mut().prefix += 1;
                Some(normalize_for_replay(&self.index.pair(idx).response))
            }
            None => {
                self.stats.borrow_mut().miss += 1;
                None
            }
        }
    }
}

fn common_prefix_len(a: &str, b: &str) -> usize {
    a.bytes().zip(b.bytes()).take_while(|(x, y)| x == y).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use mm_net::{IpAddr, SocketAddr};
    use mm_record::{RequestResponsePair, Scheme, StoredSite};

    fn site() -> StoredSite {
        let origin = SocketAddr::new(IpAddr::new(10, 0, 0, 1), 80);
        let mut s = StoredSite::new("example.com", "http://10.0.0.1:80/");
        let mut add = |target: &str, body: &str| {
            s.push(RequestResponsePair {
                origin,
                scheme: Scheme::Http,
                request: Request::get(target, "example.com"),
                response: Response::ok(Bytes::copy_from_slice(body.as_bytes()), "text/plain"),
            });
        };
        add("/", "root");
        add("/search?q=cats&page=1", "cats1");
        add("/search?q=cats&page=2", "cats2");
        add("/search?q=dogs", "dogs");
        add("/other/path", "other");
        s
    }

    fn matcher() -> Matcher {
        Matcher::new(StoreIndex::build(&site()))
    }

    #[test]
    fn exact_match_wins() {
        let m = matcher();
        let r = m
            .lookup(&Request::get("/search?q=cats&page=2", "example.com"))
            .unwrap();
        assert_eq!(&r.body[..], b"cats2");
        assert_eq!(m.stats().exact, 1);
    }

    #[test]
    fn prefix_match_used_for_unseen_query() {
        let m = matcher();
        // q=cats&page=9 shares "q=cats&page=" with both cats pages;
        // page=1 vs page=2 tie on prefix; recording order breaks the tie.
        let r = m
            .lookup(&Request::get("/search?q=cats&page=9", "example.com"))
            .unwrap();
        assert_eq!(&r.body[..], b"cats1");
        assert_eq!(m.stats().prefix, 1);
        // q=dogs&extra=1 is closest to the dogs recording.
        let r = m
            .lookup(&Request::get("/search?q=dogs&extra=1", "example.com"))
            .unwrap();
        assert_eq!(&r.body[..], b"dogs");
    }

    #[test]
    fn path_mismatch_is_404() {
        let m = matcher();
        assert!(m.lookup(&Request::get("/missing", "example.com")).is_none());
        assert_eq!(m.stats().miss, 1);
    }

    #[test]
    fn host_mismatch_is_404() {
        let m = matcher();
        assert!(m.lookup(&Request::get("/", "other.com")).is_none());
    }

    #[test]
    fn method_must_match() {
        let m = matcher();
        let mut req = Request::get("/", "example.com");
        req.method = mm_http::Method::Post;
        assert!(m.lookup(&req).is_none());
    }

    #[test]
    fn bare_query_matches_query_free_recording() {
        let m = matcher();
        let r = m.lookup(&Request::get("/?utm=x", "example.com")).unwrap();
        assert_eq!(&r.body[..], b"root");
    }

    #[test]
    fn any_origin_can_serve_any_path() {
        // The matcher is origin-agnostic: content recorded from one origin
        // matches requests arriving at any server (multi-origin property).
        let m = matcher();
        let r = m
            .lookup(&Request::get("/other/path", "example.com"))
            .unwrap();
        assert_eq!(&r.body[..], b"other");
    }

    #[test]
    fn common_prefix_len_basics() {
        assert_eq!(common_prefix_len("", ""), 0);
        assert_eq!(common_prefix_len("abc", "abd"), 2);
        assert_eq!(common_prefix_len("abc", "abc"), 3);
        assert_eq!(common_prefix_len("abc", ""), 0);
    }
}
