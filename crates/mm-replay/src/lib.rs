//! # mm-replay — ReplayShell
//!
//! The replay half of the toolkit: per-origin virtual servers bound to the
//! recorded addresses ([`server`]), mahimahi's request-matching algorithm
//! ([`matcher`]) over an indexed store ([`store_index`]), and response
//! normalization for the wire ([`normalize`]). The single-server ablation
//! the paper evaluates is a mode, not a fork.

pub mod matcher;
pub mod normalize;
pub mod server;
pub mod store_index;

pub use matcher::{MatchStats, Matcher};
pub use normalize::normalize_for_replay;
pub use server::{ReplayConfig, ReplayMode, ReplayShell, ServerProtocol};
pub use store_index::StoreIndex;
