//! Property tests on the trace format: round-trips, wrap monotonicity,
//! and search correctness for arbitrary valid traces.

use mm_trace::{constant_rate, Trace};
use proptest::prelude::*;

fn arb_trace() -> impl Strategy<Value = Trace> {
    prop::collection::vec(0u64..200, 1..60).prop_filter_map("positive period", |mut v| {
        v.sort_unstable();
        Trace::from_timestamps(v).ok()
    })
}

proptest! {
    #[test]
    fn file_format_round_trips(t in arb_trace()) {
        let parsed = Trace::parse(&t.to_file_format()).unwrap();
        prop_assert_eq!(parsed, t);
    }

    #[test]
    fn opportunity_walk_is_monotone(t in arb_trace(), n in 1u64..500) {
        let mut last = 0;
        for i in 0..n {
            let ts = t.opportunity_ms(i);
            prop_assert!(ts >= last);
            last = ts;
        }
    }

    #[test]
    fn first_opportunity_is_correct(t in arb_trace(), q in 0u64..1000) {
        let i = t.first_opportunity_at_or_after(q);
        prop_assert!(t.opportunity_ms(i) >= q);
        if i > 0 {
            prop_assert!(t.opportunity_ms(i - 1) < q);
        }
    }

    #[test]
    fn wrap_preserves_rate(t in arb_trace()) {
        // Opportunities per period stay constant across cycles.
        let n = t.len() as u64;
        let d0 = t.opportunity_ms(n) - t.opportunity_ms(0);
        let d1 = t.opportunity_ms(2 * n) - t.opportunity_ms(n);
        prop_assert_eq!(d0, d1);
    }

    #[test]
    fn cbr_rate_accurate(mbps in 1.0f64..500.0, period in 200u64..3000) {
        let t = constant_rate(mbps, period);
        let measured = t.mean_rate_mbps();
        prop_assert!((measured - mbps).abs() / mbps < 0.05,
            "target {} measured {}", mbps, measured);
    }
}
