//! Trace generators: constant bit rate, cellular-like time-varying links,
//! and on-off links.
//!
//! The paper's own repository ships recorded Verizon/AT&T LTE traces; since
//! those are not redistributable here, [`cellular`] synthesizes traces with
//! the same qualitative structure (bursty, autocorrelated rate variation
//! with outages) from a seeded Markov-modulated process. DESIGN.md records
//! this substitution.

use mm_sim::RngStream;

use crate::format::{Trace, TRACE_MTU};

/// A constant-bit-rate trace of the given rate and period.
///
/// Opportunities are laid out by accumulating the exact fractional number
/// of opportunities per millisecond and emitting on integer crossings —
/// the same quantization a real mm-link CBR trace has, which is the source
/// of LinkShell's small overhead in Figure 2.
pub fn constant_rate(mbps: f64, period_ms: u64) -> Trace {
    assert!(mbps > 0.0, "rate must be positive");
    assert!(period_ms > 0, "period must be positive");
    let opps_per_ms = mbps * 1e6 / 8.0 / TRACE_MTU as f64 / 1000.0;
    let mut deliveries = Vec::with_capacity((opps_per_ms * period_ms as f64) as usize + 1);
    let mut acc = 0.0;
    for ms in 1..=period_ms {
        acc += opps_per_ms;
        while acc >= 1.0 {
            deliveries.push(ms);
            acc -= 1.0;
        }
    }
    // Guarantee the trace is non-empty and ends at the period so the wrap
    // preserves the mean rate.
    if deliveries.is_empty() || *deliveries.last().unwrap() != period_ms {
        deliveries.push(period_ms);
    }
    Trace::from_timestamps(deliveries).expect("generated CBR trace is valid")
}

/// Parameters for the cellular-like generator.
#[derive(Debug, Clone)]
pub struct CellularParams {
    /// Long-run mean rate, Mbit/s.
    pub mean_mbps: f64,
    /// Multiplicative spread of the rate process (lognormal sigma of the
    /// per-step factor). 0 = constant.
    pub volatility: f64,
    /// Mean sojourn in each rate state, ms.
    pub state_ms: u64,
    /// Probability a state is an outage (zero delivery).
    pub outage_prob: f64,
    /// Trace period, ms.
    pub period_ms: u64,
}

impl Default for CellularParams {
    fn default() -> Self {
        CellularParams {
            mean_mbps: 10.0,
            volatility: 0.6,
            state_ms: 200,
            outage_prob: 0.03,
            period_ms: 60_000,
        }
    }
}

/// Markov-modulated cellular-like trace: the rate takes a new lognormal
/// multiple of the mean every ~`state_ms`, with occasional outages, and
/// per-millisecond delivery counts accumulate fractionally at the state
/// rate.
pub fn cellular(params: &CellularParams, rng: &mut RngStream) -> Trace {
    assert!(params.mean_mbps > 0.0 && params.period_ms > 0);
    let mean_opps_per_ms = params.mean_mbps * 1e6 / 8.0 / TRACE_MTU as f64 / 1000.0;
    let mut deliveries = Vec::new();
    let mut state_left: u64 = 0;
    let mut state_rate = mean_opps_per_ms;
    let mut acc = 0.0;
    for ms in 1..=params.period_ms {
        if state_left == 0 {
            // Enter a new state.
            state_left = 1 + (rng.next_f64() * 2.0 * params.state_ms as f64) as u64;
            if rng.gen_bool(params.outage_prob) {
                state_rate = 0.0;
            } else {
                // Lognormal factor with mean 1 (mu = -sigma^2/2).
                let sigma = params.volatility;
                let u1 = (1.0 - rng.next_f64()).max(f64::MIN_POSITIVE);
                let u2 = rng.next_f64();
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                let factor = (sigma * z - sigma * sigma / 2.0).exp();
                state_rate = mean_opps_per_ms * factor;
            }
        }
        state_left -= 1;
        acc += state_rate;
        while acc >= 1.0 {
            deliveries.push(ms);
            acc -= 1.0;
        }
    }
    if deliveries.is_empty() || *deliveries.last().unwrap() != params.period_ms {
        deliveries.push(params.period_ms);
    }
    Trace::from_timestamps(deliveries).expect("generated cellular trace is valid")
}

/// An on-off trace: `rate_mbps` for `on_ms`, silence for `off_ms`,
/// repeating for `period_ms`.
pub fn on_off(rate_mbps: f64, on_ms: u64, off_ms: u64, period_ms: u64) -> Trace {
    assert!(rate_mbps > 0.0 && on_ms > 0 && period_ms > 0);
    let opps_per_ms = rate_mbps * 1e6 / 8.0 / TRACE_MTU as f64 / 1000.0;
    let cycle = on_ms + off_ms;
    let mut deliveries = Vec::new();
    let mut acc = 0.0;
    for ms in 1..=period_ms {
        let phase = (ms - 1) % cycle;
        if phase < on_ms {
            acc += opps_per_ms;
            while acc >= 1.0 {
                deliveries.push(ms);
                acc -= 1.0;
            }
        }
    }
    if deliveries.is_empty() || *deliveries.last().unwrap() != period_ms {
        deliveries.push(period_ms);
    }
    Trace::from_timestamps(deliveries).expect("generated on-off trace is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cbr_mean_rate_accurate() {
        for mbps in [1.0, 14.0, 25.0, 100.0, 1000.0] {
            let t = constant_rate(mbps, 1000);
            let measured = t.mean_rate_mbps();
            assert!(
                (measured - mbps).abs() / mbps < 0.01,
                "target {mbps}, measured {measured}"
            );
        }
    }

    #[test]
    fn cbr_low_rate_sparse() {
        // 0.12 Mbit/s = 10 opportunities per second.
        let t = constant_rate(0.12, 1000);
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn cbr_high_rate_many_per_ms() {
        // 1000 Mbit/s ≈ 83.3 opportunities per ms.
        let t = constant_rate(1000.0, 100);
        let per_ms = t.len() as f64 / 100.0;
        assert!((per_ms - 83.3).abs() < 1.0, "per-ms {per_ms}");
    }

    #[test]
    fn cellular_mean_near_target() {
        let params = CellularParams {
            mean_mbps: 10.0,
            period_ms: 120_000,
            ..CellularParams::default()
        };
        let mut rng = RngStream::from_seed(42);
        let t = cellular(&params, &mut rng);
        let measured = t.mean_rate_mbps();
        assert!((measured - 10.0).abs() / 10.0 < 0.35, "measured {measured}");
    }

    #[test]
    fn cellular_is_time_varying() {
        let params = CellularParams::default();
        let mut rng = RngStream::from_seed(7);
        let t = cellular(&params, &mut rng);
        let series = t.rate_timeseries(1000);
        let rates: Vec<f64> = series.iter().map(|s| s.1).collect();
        let mean = rates.iter().sum::<f64>() / rates.len() as f64;
        let var = rates.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / rates.len() as f64;
        assert!(var.sqrt() / mean > 0.2, "cv {}", var.sqrt() / mean);
    }

    #[test]
    fn cellular_deterministic_per_seed() {
        let params = CellularParams::default();
        let a = cellular(&params, &mut RngStream::from_seed(3));
        let b = cellular(&params, &mut RngStream::from_seed(3));
        let c = cellular(&params, &mut RngStream::from_seed(4));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn on_off_has_silent_gaps() {
        let t = on_off(12.0, 100, 100, 1000);
        let series = t.rate_timeseries(100);
        let silent = series.iter().filter(|(_, r)| *r < 0.5).count();
        assert!(silent >= 4, "expected silent windows, got {silent}");
    }

    #[test]
    fn generated_traces_wrap_cleanly() {
        let t = constant_rate(14.0, 1000);
        // Walking opportunities across the wrap must stay monotonic.
        let mut last = 0;
        for i in 0..(t.len() as u64 * 3) {
            let ts = t.opportunity_ms(i);
            assert!(ts >= last);
            last = ts;
        }
    }
}
