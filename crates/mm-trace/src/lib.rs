//! # mm-trace — Mahimahi packet-delivery traces and causal spans
//!
//! The trace file format ([`format`]: parse, validate, serialize, wrap
//! semantics) and synthetic generators ([`generate`]: constant-bit-rate,
//! cellular-like Markov-modulated, on-off). LinkShell consumes these.
//!
//! The crate also hosts the causal span layer ([`span`]): a [`SpanSink`]
//! observer trait plus a bounded [`TraceBuffer`] the whole stack records
//! typed, parented wait intervals into — the raw material for `mmpath`'s
//! critical-path PLT attribution.

pub mod format;
pub mod generate;
pub mod span;

pub use format::{Trace, TraceError, TRACE_MTU};
pub use generate::{cellular, constant_rate, on_off, CellularParams};
pub use span::{
    parse_span_line, parse_spans_jsonl, span_to_jsonl_line, spans_to_jsonl, FanoutSpan, Span,
    SpanHandle, SpanKind, SpanSink, TraceBuffer, NO_RESOURCE,
};
