//! # mm-trace — Mahimahi packet-delivery traces
//!
//! The trace file format ([`format`]: parse, validate, serialize, wrap
//! semantics) and synthetic generators ([`generate`]: constant-bit-rate,
//! cellular-like Markov-modulated, on-off). LinkShell consumes these.

pub mod format;
pub mod generate;

pub use format::{Trace, TraceError, TRACE_MTU};
pub use generate::{cellular, constant_rate, on_off, CellularParams};
