//! The Mahimahi packet-delivery trace format.
//!
//! A trace file is a list of integer millisecond timestamps, one per line,
//! each a *packet-delivery opportunity*: an instant at which the emulated
//! link can deliver one MTU-sized (1500-byte) packet. Rates above one
//! packet per millisecond are expressed by repeating timestamps. When
//! emulation reaches the end of a trace, the trace repeats (wraps) with its
//! last timestamp as the period — exactly `mm-link`'s semantics.

use std::fmt;

/// The MTU assumed by the trace format, bytes per delivery opportunity.
pub const TRACE_MTU: usize = 1500;

/// Errors loading a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The trace has no delivery opportunities.
    Empty,
    /// A line was not a non-negative integer.
    BadLine { line_no: usize, content: String },
    /// Timestamps must be non-decreasing.
    NotMonotonic { line_no: usize },
    /// The final timestamp (the period) must be positive.
    ZeroDuration,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Empty => write!(f, "trace contains no delivery opportunities"),
            TraceError::BadLine { line_no, content } => {
                write!(f, "trace line {line_no}: not a timestamp: {content:?}")
            }
            TraceError::NotMonotonic { line_no } => {
                write!(f, "trace line {line_no}: timestamps must be non-decreasing")
            }
            TraceError::ZeroDuration => write!(f, "trace period must be positive"),
        }
    }
}

impl std::error::Error for TraceError {}

/// An immutable, validated packet-delivery trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Millisecond timestamps, non-decreasing.
    deliveries_ms: Vec<u64>,
    /// Period of the trace: its last timestamp.
    period_ms: u64,
}

impl Trace {
    /// Build from raw timestamps. Validates monotonicity and a positive
    /// period.
    pub fn from_timestamps(deliveries_ms: Vec<u64>) -> Result<Trace, TraceError> {
        if deliveries_ms.is_empty() {
            return Err(TraceError::Empty);
        }
        for (i, w) in deliveries_ms.windows(2).enumerate() {
            if w[1] < w[0] {
                return Err(TraceError::NotMonotonic { line_no: i + 2 });
            }
        }
        let period_ms = *deliveries_ms.last().unwrap();
        if period_ms == 0 {
            return Err(TraceError::ZeroDuration);
        }
        Ok(Trace {
            deliveries_ms,
            period_ms,
        })
    }

    /// Parse the on-disk format: one integer per line; blank lines and
    /// `#` comments tolerated.
    pub fn parse(text: &str) -> Result<Trace, TraceError> {
        let mut out = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let ts: u64 = line.parse().map_err(|_| TraceError::BadLine {
                line_no: i + 1,
                content: line.to_string(),
            })?;
            out.push(ts);
        }
        Trace::from_timestamps(out)
    }

    /// Serialize to the on-disk format.
    pub fn to_file_format(&self) -> String {
        let mut s = String::with_capacity(self.deliveries_ms.len() * 6);
        for ts in &self.deliveries_ms {
            s.push_str(&ts.to_string());
            s.push('\n');
        }
        s
    }

    /// Number of opportunities in one period.
    pub fn len(&self) -> usize {
        self.deliveries_ms.len()
    }

    /// Never true: construction rejects empty traces.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The trace period in milliseconds.
    pub fn period_ms(&self) -> u64 {
        self.period_ms
    }

    /// The opportunity timestamps of one period, milliseconds,
    /// non-decreasing (what capture metadata embeds so offline analyzers
    /// can reconstruct the capacity series).
    pub fn deliveries_ms(&self) -> &[u64] {
        &self.deliveries_ms
    }

    /// Timestamp (ms) of the `i`-th delivery opportunity, wrapping the
    /// trace indefinitely: `t(i) = (i / n) * period + deliveries[i % n]`.
    pub fn opportunity_ms(&self, i: u64) -> u64 {
        let n = self.deliveries_ms.len() as u64;
        (i / n) * self.period_ms + self.deliveries_ms[(i % n) as usize]
    }

    /// Index of the first opportunity at or after `t_ms`. Pairing with
    /// [`Trace::opportunity_ms`] lets a link walk opportunities from any
    /// starting time.
    pub fn first_opportunity_at_or_after(&self, t_ms: u64) -> u64 {
        let n = self.deliveries_ms.len() as u64;
        let cycle = t_ms / self.period_ms;
        let offset = t_ms % self.period_ms;
        // Binary search within one period, then walk back over any equal
        // timestamps straddling the cycle boundary (a trace whose last
        // entry equals its period has an opportunity exactly at each
        // boundary instant).
        let idx = self.deliveries_ms.partition_point(|&d| d < offset) as u64;
        let mut candidate = cycle * n + idx;
        while candidate > 0 && self.opportunity_ms(candidate - 1) >= t_ms {
            candidate -= 1;
        }
        debug_assert!(self.opportunity_ms(candidate) >= t_ms);
        candidate
    }

    /// Average rate over one period, in Mbit/s, assuming MTU-sized use of
    /// every opportunity.
    pub fn mean_rate_mbps(&self) -> f64 {
        let bits = (self.len() * TRACE_MTU * 8) as f64;
        let secs = self.period_ms as f64 / 1000.0;
        bits / secs / 1e6
    }

    /// Per-window delivered-opportunity counts (for plotting rate over
    /// time); `window_ms` must be positive.
    pub fn rate_timeseries(&self, window_ms: u64) -> Vec<(u64, f64)> {
        assert!(window_ms > 0);
        let windows = self.period_ms.div_ceil(window_ms);
        let mut counts = vec![0u64; windows as usize];
        for &d in &self.deliveries_ms {
            let w = (d.min(self.period_ms - 1)) / window_ms;
            counts[w as usize] += 1;
        }
        counts
            .iter()
            .enumerate()
            .map(|(w, &c)| {
                let mbps = (c as f64 * TRACE_MTU as f64 * 8.0) / (window_ms as f64 / 1000.0) / 1e6;
                (w as u64 * window_ms, mbps)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_serialize_round_trip() {
        let t = Trace::parse("0\n5\n5\n10\n").unwrap();
        assert_eq!(t.len(), 4);
        assert_eq!(t.period_ms(), 10);
        assert_eq!(t.to_file_format(), "0\n5\n5\n10\n");
        let t2 = Trace::parse(&t.to_file_format()).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn comments_and_blanks_tolerated() {
        let t = Trace::parse("# cellular trace\n\n1\n2\n\n# end\n3\n").unwrap();
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn rejects_empty_and_garbage() {
        assert_eq!(Trace::parse(""), Err(TraceError::Empty));
        assert!(matches!(
            Trace::parse("1\nxyz\n"),
            Err(TraceError::BadLine { line_no: 2, .. })
        ));
        assert_eq!(
            Trace::parse("5\n3\n"),
            Err(TraceError::NotMonotonic { line_no: 2 })
        );
        assert_eq!(Trace::parse("0\n0\n"), Err(TraceError::ZeroDuration));
    }

    #[test]
    fn wrap_formula() {
        let t = Trace::from_timestamps(vec![2, 4, 10]).unwrap();
        assert_eq!(t.opportunity_ms(0), 2);
        assert_eq!(t.opportunity_ms(1), 4);
        assert_eq!(t.opportunity_ms(2), 10);
        // Second cycle adds the 10 ms period.
        assert_eq!(t.opportunity_ms(3), 12);
        assert_eq!(t.opportunity_ms(4), 14);
        assert_eq!(t.opportunity_ms(5), 20);
        assert_eq!(t.opportunity_ms(6), 22);
    }

    #[test]
    fn first_opportunity_search() {
        let t = Trace::from_timestamps(vec![2, 4, 10]).unwrap();
        assert_eq!(t.first_opportunity_at_or_after(0), 0); // ts 2
        assert_eq!(t.first_opportunity_at_or_after(2), 0);
        assert_eq!(t.first_opportunity_at_or_after(3), 1); // ts 4
        assert_eq!(t.first_opportunity_at_or_after(5), 2); // ts 10
        assert_eq!(t.first_opportunity_at_or_after(11), 3); // ts 12 (wrap)

        // Boundary instant: t=20 is exactly opportunity 5 (10 + period).
        assert_eq!(t.first_opportunity_at_or_after(20), 5);
        assert_eq!(t.opportunity_ms(5), 20);
        // Exhaustive invariant sweep: the returned index is the first at
        // or after t.
        for t_ms in 0..60 {
            let i = t.first_opportunity_at_or_after(t_ms);
            assert!(t.opportunity_ms(i) >= t_ms, "t={t_ms}");
            if i > 0 {
                assert!(t.opportunity_ms(i - 1) < t_ms, "t={t_ms}");
            }
        }
    }

    #[test]
    fn mean_rate_computation() {
        // 1000 opportunities over 1000 ms = 1 opp/ms = 12 Mbit/s.
        let t = Trace::from_timestamps((1..=1000).collect()).unwrap();
        assert!((t.mean_rate_mbps() - 12.0).abs() < 0.05);
    }

    #[test]
    fn rate_timeseries_windows() {
        let t = Trace::from_timestamps(vec![1, 2, 3, 4, 5, 100]).unwrap();
        let series = t.rate_timeseries(50);
        assert_eq!(series.len(), 2);
        // First window holds 5 opportunities, second 1.
        assert!(series[0].1 > series[1].1);
    }
}
