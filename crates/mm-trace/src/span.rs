//! Causal spans: typed, parented time intervals over a page load.
//!
//! PRs 7–8 gave the stack counters ([`mm-metrics`]) and per-packet
//! captures ([`mm-capture`]) — signals that say *that* a PLT moved, not
//! *which milliseconds* moved. This module is the third observer layer:
//! every component that makes a resource wait (the browser's request
//! scheduler, the TCP handshake and reassembly queue, the mux stream
//! scheduler, the replay server's think time) emits a [`Span`] naming
//! the wait, bounded in time, and linked to its causal parent. The
//! `mmpath` analyzer (`crates/mm-path`) rebuilds the tree and walks the
//! chain of blocking spans whose durations sum *exactly* to the page's
//! PLT — WProf-style critical-path attribution over Dapper-style spans.
//!
//! The integration contract matches `MetricsSink`/`PacketTap`: a
//! [`SpanSink`] trait with no-op defaults, an `Option<SpanHandle>` on
//! each component's config defaulting to `None`, and the rule that
//! sinks only *observe* — a recording sink never schedules simulator
//! events, so every simulation is byte-identical with the sink on or
//! off (the harness tests pin this).
//!
//! Span identity: ids are allocated by the sink ([`SpanSink::next_id`],
//! starting at 1) so emitters can hand a parent id to children before
//! the parent interval closes; id 0 means "no parent". Spans may be
//! recorded in any order and the per-resource phase spans of one
//! resource tile `[queued, parse_end]` contiguously — the property the
//! critical-path walk relies on.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::ops::Deref;
use std::rc::Rc;

/// `res` value for spans not attached to a browser resource.
pub const NO_RESOURCE: u32 = u32::MAX;

/// What a span's interval measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// Whole page load: navigation start → last parse completion (PLT).
    Page,
    /// One resource: queued → parse completion. Parent is the resource
    /// whose parse discovered it (the root resource's parent is the
    /// page span).
    Resource,
    /// Waiting in the browser's request scheduler for a connection
    /// slot (http1 pool) or before submission (mux).
    Queued,
    /// Waiting on the transport handshake.
    ConnSetup,
    /// Waiting in the mux client's stream scheduler for a concurrent-
    /// stream slot (the application-level head-of-line wait).
    MuxWait,
    /// Request serialized and on the wire → first response byte. The
    /// analyzer splits a matched server-think window out of this.
    RequestTx,
    /// Replay server's service time: request parsed → response written.
    ServerThink,
    /// First response byte → response complete.
    Transfer,
    /// Response complete → parse starts (waiting on the single CPU).
    RenderQueue,
    /// The parse/execute slice itself.
    Parse,
    /// A resource that failed; closes the phase chain at failure time.
    Failed,
    /// Connection lifetime: connect started → teardown (initiator side).
    Conn,
    /// TCP reassembly-gap wait on the receive side: bytes sat in the
    /// out-of-order queue waiting for a retransmission to fill a hole.
    /// This is the transport-level head-of-line signal — absent on a
    /// clean in-order link by construction, present under loss.
    HolWait,
}

impl SpanKind {
    /// Stable wire name (JSONL `kind` field).
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Page => "page",
            SpanKind::Resource => "resource",
            SpanKind::Queued => "queued",
            SpanKind::ConnSetup => "conn_setup",
            SpanKind::MuxWait => "mux_wait",
            SpanKind::RequestTx => "request_tx",
            SpanKind::ServerThink => "server_think",
            SpanKind::Transfer => "transfer",
            SpanKind::RenderQueue => "render_queue",
            SpanKind::Parse => "parse",
            SpanKind::Failed => "failed",
            SpanKind::Conn => "conn",
            SpanKind::HolWait => "hol_wait",
        }
    }

    /// Inverse of [`SpanKind::as_str`]. An inherent method (not
    /// `FromStr`) so call sites get `Option` without an error type.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<SpanKind> {
        Some(match s {
            "page" => SpanKind::Page,
            "resource" => SpanKind::Resource,
            "queued" => SpanKind::Queued,
            "conn_setup" => SpanKind::ConnSetup,
            "mux_wait" => SpanKind::MuxWait,
            "request_tx" => SpanKind::RequestTx,
            "server_think" => SpanKind::ServerThink,
            "transfer" => SpanKind::Transfer,
            "render_queue" => SpanKind::RenderQueue,
            "parse" => SpanKind::Parse,
            "failed" => SpanKind::Failed,
            "conn" => SpanKind::Conn,
            "hol_wait" => SpanKind::HolWait,
            _ => return None,
        })
    }

    /// True for the per-resource phase kinds that tile a resource span.
    pub fn is_phase(self) -> bool {
        matches!(
            self,
            SpanKind::Queued
                | SpanKind::ConnSetup
                | SpanKind::MuxWait
                | SpanKind::RequestTx
                | SpanKind::ServerThink
                | SpanKind::Transfer
                | SpanKind::RenderQueue
                | SpanKind::Parse
                | SpanKind::Failed
        )
    }
}

/// A closed time interval attributed to one causal wait.
///
/// `parent == 0` means no parent (roots, and spans joined analyzer-side
/// by `conn`/`url` instead of by id). `res == NO_RESOURCE` marks spans
/// not attached to a browser resource. Times are simulation nanoseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Page-load id (one simulated world per load).
    pub load: u64,
    /// Sink-allocated id, unique within the load; 0 only from no-op sinks.
    pub id: u64,
    /// Causal parent's span id; 0 for none.
    pub parent: u64,
    pub kind: SpanKind,
    /// Interval start, simulation nanoseconds.
    pub t0_ns: u64,
    /// Interval end, simulation nanoseconds (`t1_ns >= t0_ns`).
    pub t1_ns: u64,
    /// Browser resource index, or [`NO_RESOURCE`].
    pub res: u32,
    /// Connection id (initiator's local `ip << 16 | port`); 0 for none.
    pub conn: u64,
    /// Resource URL (resource/server spans); empty when inapplicable.
    pub url: String,
    /// Free-form qualifier: the experiment arm on page spans
    /// (`"http1"`/`"mux"`), protocol details elsewhere.
    pub detail: String,
}

impl Span {
    /// Interval length in nanoseconds.
    pub fn dur_ns(&self) -> u64 {
        self.t1_ns.saturating_sub(self.t0_ns)
    }
}

/// Receiver of spans. All methods default to no-ops so instrumented
/// components pay one branch when recording is off; implementations
/// must only observe (never schedule simulator work).
pub trait SpanSink {
    /// Allocate a fresh span id (> 0). The no-op default returns 0,
    /// which recording sinks never allocate.
    fn next_id(&self) -> u64 {
        0
    }
    /// Record a finished span.
    fn record(&self, _span: Span) {}
}

/// Shared handle to a [`SpanSink`], cheap to clone into configs.
///
/// `Debug` is opaque so configs that derive `Debug` stay printable
/// without constraining sink implementations.
#[derive(Clone)]
pub struct SpanHandle(Rc<dyn SpanSink>);

impl SpanHandle {
    pub fn new(sink: Rc<dyn SpanSink>) -> SpanHandle {
        SpanHandle(sink)
    }
}

impl Deref for SpanHandle {
    type Target = dyn SpanSink;
    fn deref(&self) -> &Self::Target {
        &*self.0
    }
}

impl fmt::Debug for SpanHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SpanHandle")
    }
}

/// A bounded in-memory [`SpanSink`] for one page load.
///
/// Bounded so a runaway emitter cannot exhaust memory in long soaks;
/// overflow increments [`TraceBuffer::dropped`] rather than evicting
/// (the earliest spans — page, root resource — are the ones the
/// critical path needs).
pub struct TraceBuffer {
    load: u64,
    max_spans: usize,
    next: Cell<u64>,
    spans: RefCell<Vec<Span>>,
    dropped: Cell<u64>,
}

impl TraceBuffer {
    /// Default span cap per load; generous (a heavy page emits a few
    /// hundred spans) while bounding soak memory.
    pub const DEFAULT_MAX_SPANS: usize = 64 * 1024;

    pub fn for_load(load: u64) -> Rc<TraceBuffer> {
        TraceBuffer::with_capacity(load, TraceBuffer::DEFAULT_MAX_SPANS)
    }

    pub fn with_capacity(load: u64, max_spans: usize) -> Rc<TraceBuffer> {
        Rc::new(TraceBuffer {
            load,
            max_spans,
            next: Cell::new(0),
            spans: RefCell::new(Vec::new()),
            dropped: Cell::new(0),
        })
    }

    /// A [`SpanHandle`] feeding this buffer.
    pub fn handle(self: &Rc<Self>) -> SpanHandle {
        SpanHandle(self.clone() as Rc<dyn SpanSink>)
    }

    /// The load id this buffer stamps onto recorded spans.
    pub fn load(&self) -> u64 {
        self.load
    }

    /// Snapshot of the recorded spans, in record order.
    pub fn spans(&self) -> Vec<Span> {
        self.spans.borrow().clone()
    }

    /// Spans rejected by the bound.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// Serialize the recorded spans as JSONL.
    pub fn to_jsonl(&self) -> String {
        spans_to_jsonl(&self.spans.borrow())
    }
}

impl SpanSink for TraceBuffer {
    fn next_id(&self) -> u64 {
        let id = self.next.get() + 1;
        self.next.set(id);
        id
    }

    fn record(&self, mut span: Span) {
        let mut spans = self.spans.borrow_mut();
        if spans.len() >= self.max_spans {
            self.dropped.set(self.dropped.get() + 1);
            return;
        }
        // Stamp the load here so emitters need not thread it through.
        span.load = self.load;
        spans.push(span);
    }
}

/// A [`SpanSink`] that forwards every span to several child sinks.
///
/// Allocates its own monotonic ids (children may disagree on theirs),
/// so emitters see one consistent id space; each child receives the
/// span with the fanout's id. Lets a harness feed both a recording
/// [`TraceBuffer`] and an online auditor from one instrumented world.
pub struct FanoutSpan {
    sinks: Vec<SpanHandle>,
    next: Cell<u64>,
}

impl FanoutSpan {
    pub fn new(sinks: Vec<SpanHandle>) -> Rc<FanoutSpan> {
        Rc::new(FanoutSpan {
            sinks,
            next: Cell::new(0),
        })
    }

    /// A [`SpanHandle`] feeding this fanout.
    pub fn handle(self: &Rc<Self>) -> SpanHandle {
        SpanHandle(self.clone() as Rc<dyn SpanSink>)
    }
}

impl SpanSink for FanoutSpan {
    fn next_id(&self) -> u64 {
        let id = self.next.get() + 1;
        self.next.set(id);
        id
    }

    fn record(&self, span: Span) {
        for sink in &self.sinks {
            sink.record(span.clone());
        }
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One span as a flat JSONL object (the shape `mm-path` parses).
pub fn span_to_jsonl_line(s: &Span) -> String {
    format!(
        "{{\"ev\":\"span\",\"load\":{},\"id\":{},\"parent\":{},\"kind\":\"{}\",\
         \"t0_ns\":{},\"t1_ns\":{},\"res\":{},\"conn\":{},\"url\":\"{}\",\"detail\":\"{}\"}}\n",
        s.load,
        s.id,
        s.parent,
        s.kind.as_str(),
        s.t0_ns,
        s.t1_ns,
        s.res,
        s.conn,
        escape_json(&s.url),
        escape_json(&s.detail),
    )
}

/// Serialize spans as JSONL, one object per line.
pub fn spans_to_jsonl(spans: &[Span]) -> String {
    let mut out = String::new();
    for s in spans {
        out.push_str(&span_to_jsonl_line(s));
    }
    out
}

// --- JSONL scanner (same restricted-shape approach as mm-graph's
// capture parser: flat objects, known keys, escape-aware key search) ---

fn find_key(line: &str, key: &str) -> Option<usize> {
    let pat = format!("\"{key}\":");
    let bytes = line.as_bytes();
    let mut start = 0;
    while let Some(rel) = line[start..].find(&pat) {
        let pos = start + rel;
        if pos == 0 || bytes[pos - 1] != b'\\' {
            return Some(pos + pat.len());
        }
        start = pos + 1;
    }
    None
}

fn get_u64(line: &str, key: &str) -> Result<u64, String> {
    let at = find_key(line, key).ok_or_else(|| format!("missing field {key:?}"))?;
    let digits: &str = &line[at..];
    let end = digits
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(digits.len());
    if end == 0 {
        return Err(format!("field {key:?} is not a number"));
    }
    digits[..end]
        .parse()
        .map_err(|e| format!("field {key:?}: {e}"))
}

fn get_str(line: &str, key: &str) -> Result<String, String> {
    let at = find_key(line, key).ok_or_else(|| format!("missing field {key:?}"))?;
    let rest = &line[at..];
    if !rest.starts_with('"') {
        return Err(format!("field {key:?} is not a string"));
    }
    let mut out = String::new();
    let mut chars = rest[1..].chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Ok(out),
            '\\' => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('u') => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16)
                        .map_err(|e| format!("field {key:?}: bad \\u escape: {e}"))?;
                    out.push(
                        char::from_u32(code)
                            .ok_or_else(|| format!("field {key:?}: bad codepoint {code}"))?,
                    );
                }
                other => return Err(format!("field {key:?}: bad escape {other:?}")),
            },
            c => out.push(c),
        }
    }
    Err(format!("field {key:?}: unterminated string"))
}

/// Parse one JSONL span line.
pub fn parse_span_line(line: &str) -> Result<Span, String> {
    let ev = get_str(line, "ev")?;
    if ev != "span" {
        return Err(format!("unknown event type {ev:?}"));
    }
    let kind_s = get_str(line, "kind")?;
    let kind =
        SpanKind::from_str(&kind_s).ok_or_else(|| format!("unknown span kind {kind_s:?}"))?;
    Ok(Span {
        load: get_u64(line, "load")?,
        id: get_u64(line, "id")?,
        parent: get_u64(line, "parent")?,
        kind,
        t0_ns: get_u64(line, "t0_ns")?,
        t1_ns: get_u64(line, "t1_ns")?,
        res: get_u64(line, "res")? as u32,
        conn: get_u64(line, "conn")?,
        url: get_str(line, "url")?,
        detail: get_str(line, "detail")?,
    })
}

/// Parse a JSONL span file (blank lines skipped, errors carry line
/// numbers). Spans are returned in file order; callers group by `load`.
pub fn parse_spans_jsonl(text: &str) -> Result<Vec<Span>, String> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        out.push(parse_span_line(line).map_err(|e| format!("line {}: {e}", idx + 1))?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample(load: u64, id: u64, kind: SpanKind) -> Span {
        Span {
            load,
            id,
            parent: id.saturating_sub(1),
            kind,
            t0_ns: 10,
            t1_ns: 30,
            res: 2,
            conn: 0x0a00_0001_0d05,
            url: "http://10.0.0.1/a\"b\\c".to_string(),
            detail: "http1".to_string(),
        }
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in [
            SpanKind::Page,
            SpanKind::Resource,
            SpanKind::Queued,
            SpanKind::ConnSetup,
            SpanKind::MuxWait,
            SpanKind::RequestTx,
            SpanKind::ServerThink,
            SpanKind::Transfer,
            SpanKind::RenderQueue,
            SpanKind::Parse,
            SpanKind::Failed,
            SpanKind::Conn,
            SpanKind::HolWait,
        ] {
            assert_eq!(SpanKind::from_str(kind.as_str()), Some(kind));
        }
        assert_eq!(SpanKind::from_str("nope"), None);
    }

    #[test]
    fn jsonl_round_trip_exact() {
        let spans = vec![
            sample(3, 1, SpanKind::Page),
            sample(3, 2, SpanKind::Resource),
            sample(3, 3, SpanKind::HolWait),
        ];
        let parsed = parse_spans_jsonl(&spans_to_jsonl(&spans)).unwrap();
        assert_eq!(parsed, spans);
    }

    #[test]
    fn buffer_allocates_ids_and_stamps_load() {
        let buf = TraceBuffer::for_load(7);
        let h = buf.handle();
        let a = h.next_id();
        let b = h.next_id();
        assert_eq!((a, b), (1, 2));
        h.record(Span {
            load: 0, // overwritten by the buffer
            ..sample(0, a, SpanKind::Queued)
        });
        let spans = buf.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].load, 7);
        assert_eq!(buf.dropped(), 0);
    }

    #[test]
    fn buffer_bound_drops_not_evicts() {
        let buf = TraceBuffer::with_capacity(1, 2);
        let h = buf.handle();
        for _ in 0..5 {
            let id = h.next_id();
            h.record(sample(1, id, SpanKind::Queued));
        }
        assert_eq!(buf.spans().len(), 2);
        assert_eq!(buf.dropped(), 3);
        // The *first* spans survive.
        assert_eq!(buf.spans()[0].id, 1);
    }

    #[test]
    fn noop_sink_defaults() {
        struct Nop;
        impl SpanSink for Nop {}
        let h = SpanHandle::new(Rc::new(Nop));
        assert_eq!(h.next_id(), 0);
        h.record(sample(0, 0, SpanKind::Page));
        assert_eq!(format!("{h:?}"), "SpanHandle");
    }

    #[test]
    fn bad_lines_carry_line_numbers() {
        let err = parse_spans_jsonl("{\"ev\":\"span\",\"load\":1}\n").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
        let err = parse_spans_jsonl("{\"ev\":\"pkt\",\"load\":1}").unwrap_err();
        assert!(err.contains("unknown event type"), "{err}");
    }

    proptest! {
        #[test]
        fn jsonl_round_trip_any_span(
            load in 0u64..1_000,
            id in 0u64..10_000,
            parent in 0u64..10_000,
            kind_idx in 0usize..13,
            t0 in 0u64..u64::MAX / 2,
            dur in 0u64..u64::MAX / 2,
            res in prop_oneof![Just(NO_RESOURCE), 0u32..512u32],
            conn in 0u64..u64::MAX,
            url in "[ -~]{0,40}",
            detail in "[ -~]{0,16}",
        ) {
            let kinds = [
                SpanKind::Page, SpanKind::Resource, SpanKind::Queued,
                SpanKind::ConnSetup, SpanKind::MuxWait, SpanKind::RequestTx,
                SpanKind::ServerThink, SpanKind::Transfer, SpanKind::RenderQueue,
                SpanKind::Parse, SpanKind::Failed, SpanKind::Conn, SpanKind::HolWait,
            ];
            let span = Span {
                load, id, parent,
                kind: kinds[kind_idx],
                t0_ns: t0,
                t1_ns: t0 + dur,
                res, conn, url, detail,
            };
            let parsed = parse_spans_jsonl(&spans_to_jsonl(std::slice::from_ref(&span))).unwrap();
            prop_assert_eq!(parsed, vec![span]);
        }
    }
}
