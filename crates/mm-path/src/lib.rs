//! # mm-path — critical-path PLT attribution over causal spans
//!
//! `mm-trace`'s span layer records *which component made a resource
//! wait, when, and on whose behalf*. This crate is the offline half:
//! it rebuilds the span tree of each page load ([`build_pages`]),
//! checks the structural invariants the emitters promise
//! ([`validate`]), extracts the **critical path** — the chain of
//! blocking spans whose durations sum *exactly* to the page's PLT
//! ([`critical_path`]) — renders per-phase attribution tables
//! ([`render_attribution`]), diffs two trace sets to answer "where did
//! the +11% come from" ([`render_diff`]), and draws a waterfall SVG
//! through `mm-graph`'s deterministic SVG writer ([`waterfall_svg`]).
//!
//! ## The critical-path identity
//!
//! The browser emits, for every resource, a contiguous phase chain
//! tiling `[queued, parse_end]`, and it queues a discovered resource at
//! the *exact* instant its discoverer's parse completes (the fetch call
//! runs synchronously in the parse callback). The root resource is
//! queued at navigation start, and PLT is the last parse completion.
//! So walking from the last-finishing resource up the discovery chain
//! to the root and concatenating each resource's phases yields a
//! gapless tiling of `[navigation, PLT]` — the segment durations sum
//! exactly to PLT, with no residue to hide mis-attribution in. The
//! proptest in `tests/` pins this under arbitrary loss.
//!
//! ## The mux subtlety
//!
//! Under HTTP/1.1 two in-flight resources never share a connection, so
//! sibling `Transfer` spans on one connection may not overlap (and
//! [`validate`] rejects them). Under mux they *legitimately* overlap —
//! that interleaving is the whole point of multiplexing — so the
//! non-overlap check is http1-only, and what mux pays instead shows up
//! as explicit `MuxWait` (stream-scheduler slot wait) and transport
//! `HolWait` (TCP reassembly-gap) spans.

use std::collections::{BTreeMap, HashMap, HashSet};

use mm_trace::{Span, SpanKind};

pub mod waterfall;

pub use waterfall::waterfall_svg;

/// One page load's reconstructed span tree.
#[derive(Debug, Clone)]
pub struct PageTree {
    /// The `Page` span (PLT = its duration; `detail` = experiment arm).
    pub page: Span,
    /// `Resource` spans, in id order.
    pub resources: Vec<Span>,
    /// Phase spans per resource span id, sorted by start time.
    pub phases: HashMap<u64, Vec<Span>>,
    /// Connection lifecycle spans (initiator side).
    pub conns: Vec<Span>,
    /// TCP reassembly-gap waits, joined to resources by `conn`.
    pub hol_waits: Vec<Span>,
    /// Replay-server service windows, joined by `conn` + `url`.
    pub thinks: Vec<Span>,
}

impl PageTree {
    /// Page load time in nanoseconds.
    pub fn plt_ns(&self) -> u64 {
        self.page.dur_ns()
    }
}

/// One segment of a page's critical path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathSeg {
    /// Browser resource index the segment belongs to.
    pub res: u32,
    pub url: String,
    pub kind: SpanKind,
    pub t0_ns: u64,
    pub t1_ns: u64,
}

impl PathSeg {
    pub fn dur_ns(&self) -> u64 {
        self.t1_ns.saturating_sub(self.t0_ns)
    }
}

/// Group a span set into per-load page trees, ordered by load id.
///
/// Loads without a `Page` span (e.g. truncated by a buffer bound) are
/// skipped. Spans of unknown parentage still land in the tree's side
/// tables (`conns`/`hol_waits`/`thinks`) — [`validate`] reports orphans.
pub fn build_pages(spans: &[Span]) -> Vec<PageTree> {
    let mut by_load: BTreeMap<u64, Vec<&Span>> = BTreeMap::new();
    for s in spans {
        by_load.entry(s.load).or_default().push(s);
    }
    let mut out = Vec::new();
    for (_, load_spans) in by_load {
        let Some(page) = load_spans
            .iter()
            .find(|s| s.kind == SpanKind::Page)
            .map(|s| (*s).clone())
        else {
            continue;
        };
        let mut resources: Vec<Span> = load_spans
            .iter()
            .filter(|s| s.kind == SpanKind::Resource)
            .map(|s| (*s).clone())
            .collect();
        resources.sort_by_key(|s| s.id);
        let mut phases: HashMap<u64, Vec<Span>> = HashMap::new();
        let mut conns = Vec::new();
        let mut hol_waits = Vec::new();
        let mut thinks = Vec::new();
        for s in &load_spans {
            match s.kind {
                SpanKind::Page | SpanKind::Resource => {}
                SpanKind::Conn => conns.push((*s).clone()),
                SpanKind::HolWait => hol_waits.push((*s).clone()),
                SpanKind::ServerThink => thinks.push((*s).clone()),
                // Transport-level spans (the socket's own handshake
                // `ConnSetup`, parent 0) are connection lifecycle, not
                // part of any resource's phase chain.
                _ if s.parent == 0 => conns.push((*s).clone()),
                _ => phases.entry(s.parent).or_default().push((*s).clone()),
            }
        }
        for v in phases.values_mut() {
            v.sort_by_key(|s| (s.t0_ns, s.t1_ns, s.id));
        }
        conns.sort_by_key(|s| (s.t0_ns, s.conn));
        hol_waits.sort_by_key(|s| (s.t0_ns, s.conn));
        thinks.sort_by_key(|s| (s.t0_ns, s.conn));
        out.push(PageTree {
            page,
            resources,
            phases,
            conns,
            hol_waits,
            thinks,
        });
    }
    out
}

/// Check a tree's structural invariants; returns human-readable
/// violations (empty = well-formed).
///
/// Checked: every parent id resolves inside the load; each completed
/// resource's phases tile its interval contiguously (start at the
/// resource's start, each phase starting where the previous ended,
/// ending at the resource's end); on http1 pages, sibling `Transfer`
/// spans sharing one connection do not overlap. The overlap check is
/// skipped for mux pages — interleaved transfers on the one connection
/// are mux working as designed, not a malformed tree.
pub fn validate(tree: &PageTree) -> Vec<String> {
    let mut errs = Vec::new();
    let mut ids: HashSet<u64> = HashSet::new();
    ids.insert(tree.page.id);
    for r in &tree.resources {
        ids.insert(r.id);
    }
    for r in &tree.resources {
        if r.parent != 0 && !ids.contains(&r.parent) {
            errs.push(format!(
                "resource {} ({}) has orphan parent {}",
                r.res, r.url, r.parent
            ));
        }
    }
    for (parent, phases) in &tree.phases {
        if !ids.contains(parent) {
            errs.push(format!(
                "{} phase span(s) have orphan parent {parent}",
                phases.len()
            ));
        }
    }
    for r in &tree.resources {
        let Some(phases) = tree.phases.get(&r.id) else {
            continue;
        };
        if phases.iter().any(|p| p.kind == SpanKind::Failed) {
            continue; // failed chains end at give-up time, not parse end
        }
        let mut t = r.t0_ns;
        for p in phases {
            if p.t0_ns != t {
                errs.push(format!(
                    "resource {} ({}): {} starts at {} but previous phase ended at {t}",
                    r.res,
                    r.url,
                    p.kind.as_str(),
                    p.t0_ns
                ));
            }
            t = p.t1_ns;
        }
        if t != r.t1_ns {
            errs.push(format!(
                "resource {} ({}): phases end at {t}, resource ends at {}",
                r.res, r.url, r.t1_ns
            ));
        }
    }
    if tree.page.detail == "http1" {
        let mut by_conn: BTreeMap<u64, Vec<(u64, u64, u32)>> = BTreeMap::new();
        for phases in tree.phases.values() {
            for p in phases {
                if p.kind == SpanKind::Transfer && p.conn != 0 {
                    by_conn
                        .entry(p.conn)
                        .or_default()
                        .push((p.t0_ns, p.t1_ns, p.res));
                }
            }
        }
        for (conn, mut spans) in by_conn {
            spans.sort();
            for w in spans.windows(2) {
                if w[1].0 < w[0].1 {
                    errs.push(format!(
                        "http1 conn {conn:#x}: transfers of resources {} and {} overlap",
                        w[0].2, w[1].2
                    ));
                }
            }
        }
    }
    errs
}

/// Extract the page's critical path: the gapless chain of phase
/// segments from navigation start to the last parse completion.
///
/// Walks discovery parents up from the last-finishing resource, then
/// concatenates each chain member's phases in time order, splitting a
/// `RequestTx` segment at a matched `ServerThink` window (same
/// connection and URL, window contained in the segment) so server
/// service time is attributed to the server rather than the network.
/// The split is sum-preserving, so the identity
/// `sum(seg durations) == PLT` survives it.
pub fn critical_path(tree: &PageTree) -> Vec<PathSeg> {
    let by_id: HashMap<u64, &Span> = tree.resources.iter().map(|r| (r.id, r)).collect();
    // The resource whose parse completion *is* the PLT instant.
    let Some(last) = tree
        .resources
        .iter()
        .filter(|r| r.t1_ns <= tree.page.t1_ns)
        .max_by_key(|r| (r.t1_ns, r.id))
    else {
        return Vec::new();
    };
    // Discovery chain, last → root (cycle-guarded).
    let mut chain = vec![last];
    let mut seen: HashSet<u64> = [last.id].into();
    let mut cur = last;
    while cur.parent != 0 && cur.parent != tree.page.id {
        match by_id.get(&cur.parent) {
            Some(parent) if seen.insert(parent.id) => {
                chain.push(parent);
                cur = parent;
            }
            _ => break,
        }
    }
    chain.reverse();
    let mut path = Vec::new();
    for r in chain {
        let Some(phases) = tree.phases.get(&r.id) else {
            continue;
        };
        for p in phases {
            if p.kind == SpanKind::RequestTx {
                if let Some(think) = tree
                    .thinks
                    .iter()
                    .filter(|t| {
                        t.conn == p.conn
                            && t.url == r.url
                            && t.t0_ns >= p.t0_ns
                            && t.t1_ns <= p.t1_ns
                    })
                    .max_by_key(|t| t.t0_ns)
                {
                    for (kind, a, b) in [
                        (SpanKind::RequestTx, p.t0_ns, think.t0_ns),
                        (SpanKind::ServerThink, think.t0_ns, think.t1_ns),
                        (SpanKind::RequestTx, think.t1_ns, p.t1_ns),
                    ] {
                        if b > a {
                            path.push(PathSeg {
                                res: r.res,
                                url: r.url.clone(),
                                kind,
                                t0_ns: a,
                                t1_ns: b,
                            });
                        }
                    }
                    continue;
                }
            }
            path.push(PathSeg {
                res: r.res,
                url: r.url.clone(),
                kind: p.kind,
                t0_ns: p.t0_ns,
                t1_ns: p.t1_ns,
            });
        }
    }
    path
}

/// Stable display order for attribution rows.
pub const PHASE_ORDER: [SpanKind; 9] = [
    SpanKind::Queued,
    SpanKind::ConnSetup,
    SpanKind::MuxWait,
    SpanKind::RequestTx,
    SpanKind::ServerThink,
    SpanKind::Transfer,
    SpanKind::RenderQueue,
    SpanKind::Parse,
    SpanKind::Failed,
];

/// Sum critical-path segment durations per phase kind.
pub fn attribute(path: &[PathSeg]) -> Vec<(SpanKind, u64, usize)> {
    let mut totals: HashMap<SpanKind, (u64, usize)> = HashMap::new();
    for seg in path {
        let e = totals.entry(seg.kind).or_insert((0, 0));
        e.0 += seg.dur_ns();
        e.1 += 1;
    }
    PHASE_ORDER
        .iter()
        .filter_map(|k| totals.get(k).map(|&(ns, n)| (*k, ns, n)))
        .collect()
}

/// Sum *all* phase spans of the page per kind (not just the critical
/// path), plus transport `HolWait` time — the page-wide waiting budget.
pub fn aggregate(tree: &PageTree) -> Vec<(SpanKind, u64, usize)> {
    let mut totals: HashMap<SpanKind, (u64, usize)> = HashMap::new();
    for phases in tree.phases.values() {
        for p in phases {
            let e = totals.entry(p.kind).or_insert((0, 0));
            e.0 += p.dur_ns();
            e.1 += 1;
        }
    }
    for h in &tree.hol_waits {
        let e = totals.entry(SpanKind::HolWait).or_insert((0, 0));
        e.0 += h.dur_ns();
        e.1 += 1;
    }
    for t in &tree.thinks {
        let e = totals.entry(SpanKind::ServerThink).or_insert((0, 0));
        e.0 += t.dur_ns();
        e.1 += 1;
    }
    let mut order: Vec<SpanKind> = PHASE_ORDER.to_vec();
    order.push(SpanKind::HolWait);
    order
        .iter()
        .filter_map(|k| totals.get(k).map(|&(ns, n)| (*k, ns, n)))
        .collect()
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Render one page's attribution table: critical-path and page-wide
/// per-phase totals, with the exact-sum check on the last line.
pub fn render_attribution(tree: &PageTree, path: &[PathSeg]) -> String {
    let mut out = String::new();
    let plt = tree.plt_ns();
    out.push_str(&format!(
        "load {}  arm {}  root {}\n",
        tree.page.load,
        if tree.page.detail.is_empty() {
            "-"
        } else {
            &tree.page.detail
        },
        tree.page.url
    ));
    out.push_str(&format!(
        "  PLT {:>10.3} ms   resources {}   critical-path resources {}\n",
        ms(plt),
        tree.resources.len(),
        path.iter().map(|s| s.res).collect::<HashSet<_>>().len()
    ));
    out.push_str("  phase           critical ms      %PLT     page-wide ms  spans\n");
    let crit = attribute(path);
    let aggr = aggregate(tree);
    let crit_by: HashMap<SpanKind, u64> = crit.iter().map(|&(k, ns, _)| (k, ns)).collect();
    for (kind, total_ns, n) in &aggr {
        let c = crit_by.get(kind).copied().unwrap_or(0);
        out.push_str(&format!(
            "  {:<14} {:>12.3} {:>8.1}% {:>14.3} {:>6}\n",
            kind.as_str(),
            ms(c),
            if plt > 0 {
                c as f64 / plt as f64 * 100.0
            } else {
                0.0
            },
            ms(*total_ns),
            n
        ));
    }
    let sum: u64 = path.iter().map(|s| s.dur_ns()).sum();
    out.push_str(&format!(
        "  critical path sums to {:.3} ms (PLT {:.3} ms){}\n",
        ms(sum),
        ms(plt),
        if sum == plt {
            "  [exact]"
        } else {
            "  [MISMATCH]"
        }
    ));
    out
}

fn median(mut v: Vec<f64>) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Number of load pairs [`render_diff`] will match: loads sharing a
/// root URL across the two arms, counted min-wise per URL. Zero means
/// the diff would be vacuous (disjoint corpora, or a mislabeled arm) —
/// `mmpath --diff` refuses to print a table in that case.
pub fn paired_loads(a: &[PageTree], b: &[PageTree]) -> usize {
    let mut count_a: BTreeMap<&str, usize> = BTreeMap::new();
    for t in a {
        *count_a.entry(&t.page.url).or_default() += 1;
    }
    let mut count_b: BTreeMap<&str, usize> = BTreeMap::new();
    for t in b {
        *count_b.entry(&t.page.url).or_default() += 1;
    }
    count_a
        .iter()
        .map(|(url, &na)| na.min(count_b.get(url).copied().unwrap_or(0)))
        .sum()
}

/// Diff two arms' trees, paired by root URL: per-phase medians of
/// critical-path time, so a PLT delta decomposes into named phases.
pub fn render_diff(a: &[PageTree], b: &[PageTree], label_a: &str, label_b: &str) -> String {
    let mut by_url: BTreeMap<&str, (Vec<&PageTree>, Vec<&PageTree>)> = BTreeMap::new();
    for t in a {
        by_url.entry(&t.page.url).or_default().0.push(t);
    }
    for t in b {
        by_url.entry(&t.page.url).or_default().1.push(t);
    }
    let mut plt_a = Vec::new();
    let mut plt_b = Vec::new();
    let mut phase_a: HashMap<SpanKind, Vec<f64>> = HashMap::new();
    let mut phase_b: HashMap<SpanKind, Vec<f64>> = HashMap::new();
    let mut pairs = 0usize;
    for (pa, pb) in by_url.values() {
        if pa.is_empty() || pb.is_empty() {
            continue;
        }
        pairs += pa.len().min(pb.len());
        for (side, trees, plts) in [("a", pa, &mut plt_a), ("b", pb, &mut plt_b)] {
            for t in trees.iter() {
                plts.push(ms(t.plt_ns()));
                let path = critical_path(t);
                let phases = if side == "a" {
                    &mut phase_a
                } else {
                    &mut phase_b
                };
                let mut per: HashMap<SpanKind, u64> = HashMap::new();
                for seg in &path {
                    *per.entry(seg.kind).or_insert(0) += seg.dur_ns();
                }
                for kind in PHASE_ORDER {
                    phases
                        .entry(kind)
                        .or_default()
                        .push(ms(per.get(&kind).copied().unwrap_or(0)));
                }
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "critical-path diff: {label_a} vs {label_b} ({pairs} paired loads)\n"
    ));
    out.push_str(&format!(
        "  {:<14} {:>12} {:>12} {:>12}\n",
        "phase",
        format!("{label_a} ms"),
        format!("{label_b} ms"),
        "delta ms"
    ));
    let ma = median(plt_a);
    let mb = median(plt_b);
    out.push_str(&format!(
        "  {:<14} {:>12.3} {:>12.3} {:>+12.3}\n",
        "PLT",
        ma,
        mb,
        mb - ma
    ));
    for kind in PHASE_ORDER {
        let va = median(phase_a.get(&kind).cloned().unwrap_or_default());
        let vb = median(phase_b.get(&kind).cloned().unwrap_or_default());
        if va == 0.0 && vb == 0.0 {
            continue;
        }
        out.push_str(&format!(
            "  {:<14} {:>12.3} {:>12.3} {:>+12.3}\n",
            kind.as_str(),
            va,
            vb,
            vb - va
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, parent: u64, kind: SpanKind, t0: u64, t1: u64, res: u32) -> Span {
        Span {
            load: 1,
            id,
            parent,
            kind,
            t0_ns: t0,
            t1_ns: t1,
            res,
            conn: 7,
            url: format!("http://h/{res}"),
            detail: String::new(),
        }
    }

    /// A minimal two-resource page: root [0,100] discovered child
    /// [100,180]; PLT 180.
    fn sample_page() -> Vec<Span> {
        let mut page = span(1, 0, SpanKind::Page, 0, 180, mm_trace::NO_RESOURCE);
        page.detail = "http1".into();
        vec![
            page,
            span(2, 1, SpanKind::Resource, 0, 100, 0),
            span(3, 2, SpanKind::Queued, 0, 10, 0),
            span(4, 2, SpanKind::RequestTx, 10, 40, 0),
            span(5, 2, SpanKind::Transfer, 40, 80, 0),
            span(6, 2, SpanKind::RenderQueue, 80, 90, 0),
            span(7, 2, SpanKind::Parse, 90, 100, 0),
            span(8, 2, SpanKind::Resource, 100, 180, 1),
            span(9, 8, SpanKind::Queued, 100, 120, 1),
            span(10, 8, SpanKind::RequestTx, 120, 140, 1),
            span(11, 8, SpanKind::Transfer, 140, 160, 1),
            span(12, 8, SpanKind::Parse, 160, 180, 1),
        ]
    }

    #[test]
    fn builds_validates_and_sums_to_plt() {
        let pages = build_pages(&sample_page());
        assert_eq!(pages.len(), 1);
        let tree = &pages[0];
        assert!(validate(tree).is_empty(), "{:?}", validate(tree));
        let path = critical_path(tree);
        let sum: u64 = path.iter().map(|s| s.dur_ns()).sum();
        assert_eq!(sum, tree.plt_ns());
        assert_eq!(path.first().unwrap().t0_ns, 0);
        assert_eq!(path.last().unwrap().t1_ns, 180);
    }

    #[test]
    fn tiling_gap_is_reported() {
        let mut spans = sample_page();
        spans[3].t0_ns = 12; // RequestTx no longer starts where Queued ended
        let pages = build_pages(&spans);
        let errs = validate(&pages[0]);
        assert!(errs.iter().any(|e| e.contains("request_tx")), "{errs:?}");
    }

    #[test]
    fn http1_transfer_overlap_is_reported_mux_is_not() {
        let mut spans = sample_page();
        // Overlap the two transfers on the shared conn id.
        spans[10].t0_ns = 70; // child RequestTx 70..140 (breaks tiling too)
        spans[10].t1_ns = 75;
        let overlap = span(13, 8, SpanKind::Transfer, 75, 85, 1);
        spans.push(overlap);
        let errs = validate(&build_pages(&spans)[0]);
        assert!(errs.iter().any(|e| e.contains("overlap")), "{errs:?}");
        // Same shape under a mux arm: no overlap error.
        spans[0].detail = "mux".into();
        let errs = validate(&build_pages(&spans)[0]);
        assert!(!errs.iter().any(|e| e.contains("overlap")), "{errs:?}");
    }

    #[test]
    fn server_think_split_preserves_sum() {
        let mut spans = sample_page();
        let mut think = span(20, 0, SpanKind::ServerThink, 20, 30, mm_trace::NO_RESOURCE);
        think.url = "http://h/0".into();
        spans.push(think);
        let pages = build_pages(&spans);
        let path = critical_path(&pages[0]);
        let sum: u64 = path.iter().map(|s| s.dur_ns()).sum();
        assert_eq!(sum, pages[0].plt_ns());
        assert!(path.iter().any(|s| s.kind == SpanKind::ServerThink));
        // The split RequestTx halves flank the think window.
        let txs: Vec<_> = path
            .iter()
            .filter(|s| s.kind == SpanKind::RequestTx && s.res == 0)
            .collect();
        assert_eq!(txs.len(), 2);
        assert_eq!((txs[0].t0_ns, txs[0].t1_ns), (10, 20));
        assert_eq!((txs[1].t0_ns, txs[1].t1_ns), (30, 40));
    }

    #[test]
    fn diff_pairs_by_root_url() {
        let a = build_pages(&sample_page());
        let mut faster = sample_page();
        for s in &mut faster {
            s.detail = "mux".into();
            // Same structure, 20% faster.
            s.t0_ns = s.t0_ns * 8 / 10;
            s.t1_ns = s.t1_ns * 8 / 10;
        }
        let b = build_pages(&faster);
        let table = render_diff(&a, &b, "http1", "mux");
        assert!(table.contains("1 paired loads"), "{table}");
        assert!(table.contains("PLT"), "{table}");
        assert!(table.contains("transfer"), "{table}");
    }

    #[test]
    fn paired_loads_counts_shared_root_urls() {
        let a = build_pages(&sample_page());
        assert_eq!(paired_loads(&a, &a), 1);
        // Disjoint root URLs pair nothing.
        let mut other = sample_page();
        for s in &mut other {
            if s.kind == SpanKind::Page {
                s.url = "http://elsewhere/".into();
            }
        }
        let b = build_pages(&other);
        assert_eq!(paired_loads(&a, &b), 0);
        assert_eq!(paired_loads(&a, &[]), 0);
    }

    #[test]
    fn attribution_table_reports_exact() {
        let pages = build_pages(&sample_page());
        let path = critical_path(&pages[0]);
        let table = render_attribution(&pages[0], &path);
        assert!(table.contains("[exact]"), "{table}");
        assert!(!table.contains("MISMATCH"), "{table}");
    }
}
