//! `mmpath` — critical-path PLT attribution from a span JSONL file.
//!
//! ```text
//! mmpath <spans.jsonl> [--out <dir>]
//!     Per page load: validate the span tree, extract the critical
//!     path, print the per-phase attribution table. With --out, also
//!     write waterfall-load<N>.svg per load and attribution.txt.
//!
//! mmpath --diff <a.jsonl> [<b.jsonl>] [--out <dir>]
//!     Pair page loads by root URL and print per-phase critical-path
//!     medians side by side. With one file, the two arms are split by
//!     the page spans' `detail` labels (e.g. figmux records "http1"
//!     and "mux" pages into one file). With --out, write diff.txt.
//! ```
//!
//! Exits nonzero on parse errors, malformed trees, or a critical path
//! that fails to sum exactly to its page's PLT — so CI can assert the
//! attribution identity, not just produce artifacts.

use std::collections::BTreeSet;
use std::process::ExitCode;

use mm_path::{build_pages, critical_path, render_attribution, render_diff, waterfall_svg};

fn load_pages(path: &str) -> Result<Vec<mm_path::PageTree>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let spans = mm_trace::parse_spans_jsonl(&text).map_err(|e| format!("{path}: {e}"))?;
    Ok(build_pages(&spans))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let diff = args.iter().any(|a| a == "--diff");
    let files: Vec<&String> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            !a.starts_with("--") && !matches!(args.get(i.wrapping_sub(1)), Some(p) if p == "--out")
        })
        .map(|(_, a)| a)
        .collect();
    if files.is_empty() {
        eprintln!("usage: mmpath <spans.jsonl> [--out <dir>]");
        eprintln!("       mmpath --diff <a.jsonl> [<b.jsonl>] [--out <dir>]");
        return ExitCode::from(2);
    }

    let write_out = |name: &str, content: &str| -> bool {
        let Some(dir) = &out_dir else { return true };
        let res = std::fs::create_dir_all(dir).and_then(|()| {
            let p = std::path::Path::new(dir).join(name);
            std::fs::write(&p, content)?;
            println!("wrote {}", p.display());
            Ok(())
        });
        if let Err(e) = res {
            eprintln!("could not write {name} into {dir}: {e}");
            return false;
        }
        true
    };

    if diff {
        let (a, b, la, lb) = if files.len() >= 2 {
            let a = match load_pages(files[0]) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let b = match load_pages(files[1]) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            (a, b, files[0].clone(), files[1].clone())
        } else {
            // One file: split arms by the page spans' detail labels.
            let pages = match load_pages(files[0]) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let labels: BTreeSet<String> = pages.iter().map(|t| t.page.detail.clone()).collect();
            if labels.len() != 2 {
                eprintln!(
                    "--diff with one file needs exactly two arm labels, found {:?}",
                    labels
                );
                return ExitCode::FAILURE;
            }
            let mut it = labels.into_iter();
            let (la, lb) = (it.next().unwrap(), it.next().unwrap());
            let (a, b): (Vec<_>, Vec<_>) = pages.into_iter().partition(|t| t.page.detail == la);
            (a, b, la, lb)
        };
        if mm_path::paired_loads(&a, &b) == 0 {
            eprintln!(
                "--diff: no pairs matched: {la} ({} load(s)) and {lb} ({} load(s)) \
                 share no root URLs",
                a.len(),
                b.len()
            );
            return ExitCode::FAILURE;
        }
        let table = render_diff(&a, &b, &la, &lb);
        print!("{table}");
        if !write_out("diff.txt", &table) {
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    let pages = match load_pages(files[0]) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if pages.is_empty() {
        eprintln!("{}: no page spans found", files[0]);
        return ExitCode::FAILURE;
    }
    let mut ok = true;
    let mut report = String::new();
    for tree in &pages {
        for err in mm_path::validate(tree) {
            eprintln!("load {}: malformed tree: {err}", tree.page.load);
            ok = false;
        }
        let path = critical_path(tree);
        let sum: u64 = path.iter().map(|s| s.dur_ns()).sum();
        if sum != tree.plt_ns() {
            eprintln!(
                "load {}: critical path sums to {} ns, PLT is {} ns",
                tree.page.load,
                sum,
                tree.plt_ns()
            );
            ok = false;
        }
        let table = render_attribution(tree, &path);
        println!("{table}");
        report.push_str(&table);
        report.push('\n');
        if !write_out(
            &format!("waterfall-load{}.svg", tree.page.load),
            &waterfall_svg(tree),
        ) {
            ok = false;
        }
    }
    if !write_out("attribution.txt", &report) {
        ok = false;
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
