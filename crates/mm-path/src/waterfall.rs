//! Waterfall rendering: one row per resource, phases as colored
//! segments, critical-path rows marked — the browser-devtools view of a
//! replayed load, drawn with `mm-graph`'s deterministic SVG writer so
//! the artifact is byte-stable and diffable in CI.

use std::collections::HashSet;

use mm_graph::svg::{fnum, Svg};
use mm_trace::SpanKind;

use crate::{critical_path, PageTree, PHASE_ORDER};

/// Fill color per phase kind (ColorBrewer-ish, print-safe).
pub fn phase_color(kind: SpanKind) -> &'static str {
    match kind {
        SpanKind::Queued => "#bdbdbd",
        SpanKind::ConnSetup => "#f28e2b",
        SpanKind::MuxWait => "#e15759",
        SpanKind::RequestTx => "#76b7b2",
        SpanKind::ServerThink => "#59a14f",
        SpanKind::Transfer => "#4e79a7",
        SpanKind::RenderQueue => "#edc948",
        SpanKind::Parse => "#b07aa1",
        SpanKind::Failed => "#d37295",
        SpanKind::HolWait => "#e03030",
        _ => "#888888",
    }
}

const LEFT: f64 = 170.0;
const TOP: f64 = 46.0;
const ROW_H: f64 = 14.0;
const ROW_GAP: f64 = 3.0;
const PLOT_W: f64 = 640.0;

/// Render one page's waterfall. Rows are resources in queue order;
/// a `●` prefix marks critical-path rows; transport `HolWait` windows
/// overlay as thin red strips on the rows sharing their connection.
pub fn waterfall_svg(tree: &PageTree) -> String {
    let rows: Vec<_> = {
        let mut rs: Vec<_> = tree.resources.iter().collect();
        rs.sort_by_key(|r| (r.t0_ns, r.res));
        rs
    };
    let critical: HashSet<u32> = critical_path(tree).iter().map(|s| s.res).collect();
    let t0 = tree.page.t0_ns;
    let span_ns = tree.page.dur_ns().max(1) as f64;
    let x = |t: u64| LEFT + (t.saturating_sub(t0) as f64 / span_ns) * PLOT_W;

    let height = (TOP + rows.len() as f64 * (ROW_H + ROW_GAP) + 40.0).ceil() as u32;
    let mut svg = Svg::new((LEFT + PLOT_W + 20.0).ceil() as u32, height);
    svg.text(
        8.0,
        16.0,
        12,
        "start",
        "#202020",
        &format!(
            "load {}  {}  PLT {} ms",
            tree.page.load,
            if tree.page.detail.is_empty() {
                "-"
            } else {
                &tree.page.detail
            },
            fnum(tree.page.dur_ns() as f64 / 1e6)
        ),
    );
    // Legend.
    let mut lx = 8.0;
    for kind in PHASE_ORDER.iter().chain([SpanKind::HolWait].iter()) {
        svg.rect(lx, 24.0, 9.0, 9.0, phase_color(*kind));
        svg.text(lx + 12.0, 32.0, 9, "start", "#404040", kind.as_str());
        lx += 13.0 + 6.5 * kind.as_str().len() as f64 + 10.0;
    }
    for (i, r) in rows.iter().enumerate() {
        let y = TOP + i as f64 * (ROW_H + ROW_GAP);
        let mark = if critical.contains(&r.res) {
            "\u{25cf} "
        } else {
            ""
        };
        let label = if r.url.len() > 24 {
            format!("{mark}{}", &r.url[r.url.len() - 24..])
        } else {
            format!("{mark}{}", r.url)
        };
        svg.text(LEFT - 6.0, y + ROW_H - 3.0, 9, "end", "#303030", &label);
        if let Some(phases) = tree.phases.get(&r.id) {
            for p in phases {
                svg.rect_titled(
                    x(p.t0_ns),
                    y,
                    x(p.t1_ns) - x(p.t0_ns),
                    ROW_H,
                    phase_color(p.kind),
                    &format!(
                        "res {} {}: {} ms",
                        r.res,
                        p.kind.as_str(),
                        fnum(p.dur_ns() as f64 / 1e6)
                    ),
                );
            }
        }
        // Transport reassembly waits on this row's connection.
        let conn = tree
            .phases
            .get(&r.id)
            .and_then(|ps| ps.iter().find(|p| p.conn != 0))
            .map(|p| p.conn)
            .unwrap_or(0);
        if conn != 0 {
            for h in tree.hol_waits.iter().filter(|h| h.conn == conn) {
                // Only strips overlapping this row's interval.
                if h.t1_ns > r.t0_ns && h.t0_ns < r.t1_ns {
                    svg.rect_titled(
                        x(h.t0_ns),
                        y + ROW_H - 3.0,
                        x(h.t1_ns) - x(h.t0_ns),
                        3.0,
                        phase_color(SpanKind::HolWait),
                        &format!("hol_wait: {} ms", fnum(h.dur_ns() as f64 / 1e6)),
                    );
                }
            }
        }
    }
    // Time axis: 0 and PLT.
    let base = TOP + rows.len() as f64 * (ROW_H + ROW_GAP) + 6.0;
    svg.line(LEFT, base, LEFT + PLOT_W, base, "#404040", 1.0);
    svg.text(LEFT, base + 14.0, 9, "middle", "#404040", "0");
    svg.text(
        LEFT + PLOT_W,
        base + 14.0,
        9,
        "middle",
        "#404040",
        &format!("{} ms", fnum(span_ns / 1e6)),
    );
    svg.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_trace::Span;

    #[test]
    fn waterfall_is_stable_svg() {
        let mk = |id, parent, kind, t0, t1, res| Span {
            load: 1,
            id,
            parent,
            kind,
            t0_ns: t0,
            t1_ns: t1,
            res,
            conn: 5,
            url: format!("http://h/{res}"),
            detail: String::new(),
        };
        let spans = vec![
            mk(1, 0, SpanKind::Page, 0, 100, mm_trace::NO_RESOURCE),
            mk(2, 1, SpanKind::Resource, 0, 100, 0),
            mk(3, 2, SpanKind::Queued, 0, 40, 0),
            mk(4, 2, SpanKind::Transfer, 40, 90, 0),
            mk(5, 2, SpanKind::Parse, 90, 100, 0),
            mk(6, 0, SpanKind::HolWait, 50, 60, mm_trace::NO_RESOURCE),
        ];
        let pages = crate::build_pages(&spans);
        let a = waterfall_svg(&pages[0]);
        let b = waterfall_svg(&pages[0]);
        assert_eq!(a, b, "rendering must be deterministic");
        assert!(a.starts_with("<svg"));
        assert!(a.contains("hol_wait"));
        assert!(a.contains("<title>res 0 transfer"));
    }
}
