//! Figure 2 as a criterion bench: one page load per arm (bare replay,
//! +DelayShell 0 ms, +LinkShell 1000 Mbit/s). Wall-clock here measures the
//! *toolkit's* speed; the virtual-time overheads are printed by the `fig2`
//! binary.

use criterion::{criterion_group, criterion_main, Criterion};
use mahimahi::harness::{run_page_load, LinkSpec, LoadSpec, NetSpec};
use mm_corpus::{materialize, plan_site, SiteParams};
use mm_sim::RngStream;
use mm_trace::constant_rate;

fn bench_fig2_arms(c: &mut Criterion) {
    let plan = plan_site(
        5,
        &SiteParams {
            servers: Some(15),
            median_objects: 40.0,
            ..Default::default()
        },
        &mut RngStream::from_seed(1),
    );
    let site = materialize(&plan);
    let trace = constant_rate(1000.0, 1000);
    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    g.bench_function("replayshell_bare", |b| {
        b.iter(|| run_page_load(&LoadSpec::new(&site)))
    });
    g.bench_function("delayshell_0ms", |b| {
        b.iter(|| {
            let mut spec = LoadSpec::new(&site);
            spec.net = NetSpec::delay_ms(0);
            run_page_load(&spec)
        })
    });
    g.bench_function("linkshell_1000mbps", |b| {
        b.iter(|| {
            let mut spec = LoadSpec::new(&site);
            spec.net = NetSpec {
                link: Some(LinkSpec::symmetric(trace.clone())),
                ..NetSpec::default()
            };
            run_page_load(&spec)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fig2_arms);
criterion_main!(benches);
