//! Micro-benchmarks of the toolkit's machinery: HTTP parsing, trace
//! handling, queue disciplines, request matching, and raw TCP transfer
//! through the simulated stack.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::rc::Rc;

use bytes::Bytes;
use mm_http::{write_request, write_response, Request, RequestParser, Response, ResponseParser};
use mm_net::{Host, IpAddr, Namespace, PacketIdGen, SocketAddr, TcpFlags, TcpSegment};
use mm_replay::{Matcher, StoreIndex};
use mm_shells::{DropTail, Qdisc};
use mm_sim::Timestamp;
use mm_trace::{constant_rate, Trace};

fn bench_http(c: &mut Criterion) {
    let mut g = c.benchmark_group("http");
    let req_wire = write_request(&Request::get("/a/b/c?x=1&y=2", "example.com"));
    g.throughput(Throughput::Bytes(req_wire.len() as u64));
    g.bench_function("parse_request", |b| {
        b.iter_batched(
            RequestParser::new,
            |mut p| p.feed(&req_wire).unwrap(),
            BatchSize::SmallInput,
        )
    });
    let resp = Response::ok(Bytes::from(vec![0u8; 64 * 1024]), "image/jpeg");
    let resp_wire = write_response(&resp);
    g.throughput(Throughput::Bytes(resp_wire.len() as u64));
    g.bench_function("parse_64k_response", |b| {
        b.iter_batched(
            || {
                let mut p = ResponseParser::new();
                p.expect_head(false);
                p
            },
            |mut p| p.feed(&resp_wire).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("serialize_response", |b| b.iter(|| write_response(&resp)));
    g.finish();
}

fn bench_trace(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace");
    let t = constant_rate(100.0, 10_000);
    let text = t.to_file_format();
    g.throughput(Throughput::Bytes(text.len() as u64));
    g.bench_function("parse_100mbps_10s", |b| {
        b.iter(|| Trace::parse(&text).unwrap())
    });
    g.bench_function("opportunity_search", |b| {
        let mut q = 0u64;
        b.iter(|| {
            q = (q + 7919) % 1_000_000;
            t.first_opportunity_at_or_after(q)
        })
    });
    g.finish();
}

fn bench_qdisc(c: &mut Criterion) {
    let mut g = c.benchmark_group("qdisc");
    let pkt = mm_net::Packet {
        id: 0,
        src: SocketAddr::new(IpAddr::new(1, 1, 1, 1), 1),
        dst: SocketAddr::new(IpAddr::new(2, 2, 2, 2), 2),
        segment: TcpSegment {
            flags: TcpFlags::ACK,
            seq: 0,
            ack: 0,
            window: 0,
            sack: Default::default(),
            payload: Bytes::from(vec![0u8; 1460]),
        },
        corrupted: false,
    };
    g.bench_function("droptail_enqueue_dequeue", |b| {
        let mut q = DropTail::infinite();
        b.iter(|| {
            q.enqueue(Timestamp::ZERO, pkt.clone());
            q.dequeue(Timestamp::from_millis(1))
        })
    });
    g.finish();
}

fn bench_matcher(c: &mut Criterion) {
    // A 200-pair store, matching exact and prefix queries.
    let origin = SocketAddr::new(IpAddr::new(1, 1, 1, 1), 80);
    let mut site = mm_record::StoredSite::new("s", "http://1.1.1.1:80/");
    for i in 0..200 {
        site.push(mm_record::RequestResponsePair {
            origin,
            scheme: mm_record::Scheme::Http,
            request: Request::get(format!("/asset/{i}?v={i}"), "s.example"),
            response: Response::ok(Bytes::from_static(b"x"), "text/plain"),
        });
    }
    let m = Matcher::new(StoreIndex::build(&site));
    let exact = Request::get("/asset/150?v=150", "s.example");
    let prefix = Request::get("/asset/150?v=999", "s.example");
    let mut g = c.benchmark_group("matcher");
    g.bench_function("exact_hit", |b| b.iter(|| m.lookup(&exact)));
    g.bench_function("prefix_hit", |b| b.iter(|| m.lookup(&prefix)));
    g.finish();
}

/// Shared harness for the TCP transfer benches: a 1 MB one-way
/// transfer through the simulated stack under `config`, with an
/// optional i.i.d. drop rate on the data path.
mod transfer {
    use super::*;
    use mm_net::fault::RandomDrop;
    use mm_net::{Listener, SocketApp, SocketEvent, TcpConfig, TcpHandle};
    use std::cell::RefCell;

    struct Echo;
    impl Listener for Echo {
        fn on_connection(&self, _s: &mut mm_sim::Simulator, _h: TcpHandle) -> Rc<dyn SocketApp> {
            struct Sink;
            impl SocketApp for Sink {
                fn on_event(&self, _s: &mut mm_sim::Simulator, _h: &TcpHandle, _e: SocketEvent) {}
            }
            Rc::new(Sink)
        }
    }

    struct SendOnce {
        data: RefCell<Option<Bytes>>,
    }
    impl SocketApp for SendOnce {
        fn on_event(&self, sim: &mut mm_sim::Simulator, h: &TcpHandle, ev: SocketEvent) {
            if matches!(ev, SocketEvent::Connected) {
                if let Some(d) = self.data.borrow_mut().take() {
                    h.send(sim, d);
                }
            }
        }
    }

    /// The shelled variant: the same transfer with a LinkShell between
    /// client and server, optionally with a live packet tap attached —
    /// the baseline and measurement arms of the capture-overhead gate.
    pub fn run_shelled(config: &TcpConfig, tap: Option<mm_capture::TapHandle>, payload: &Bytes) {
        let mut sim = mm_sim::Simulator::new();
        let root = Namespace::root("w");
        let ids = PacketIdGen::new();
        let server = Host::new_in(IpAddr::new(10, 0, 0, 2), ids.clone(), &root);
        server.set_tcp_config(config.clone());
        let mut stack = mm_shells::ShellStack::new(&root);
        if let Some(tap) = tap {
            stack = stack.with_tap(tap);
        }
        let stack = stack.link(constant_rate(50.0, 2000), &|| {
            Box::new(DropTail::infinite()) as Box<dyn Qdisc>
        });
        let client = Host::new_in(IpAddr::new(10, 0, 0, 1), ids, &stack.innermost());
        client.set_tcp_config(config.clone());
        server.listen(80, Rc::new(Echo));
        client.connect(
            &mut sim,
            SocketAddr::new(server.ip(), 80),
            Rc::new(SendOnce {
                data: RefCell::new(Some(payload.clone())),
            }),
        );
        sim.run();
    }

    pub fn run(config: &TcpConfig, loss: f64, payload: &Bytes) {
        let mut sim = mm_sim::Simulator::new();
        let ns = Namespace::root("w");
        let ids = PacketIdGen::new();
        let client = Host::new(IpAddr::new(10, 0, 0, 1), ids.clone());
        let server = Host::new_in(IpAddr::new(10, 0, 0, 2), ids, &ns);
        client.set_tcp_config(config.clone());
        server.set_tcp_config(config.clone());
        ns.add_host(client.ip(), client.sink());
        if loss > 0.0 {
            client.set_egress(RandomDrop::new(
                loss,
                mm_sim::RngStream::from_seed(7),
                ns.router(),
            ));
        } else {
            client.set_egress(ns.router());
        }
        server.listen(80, Rc::new(Echo));
        client.connect(
            &mut sim,
            SocketAddr::new(server.ip(), 80),
            Rc::new(SendOnce {
                data: RefCell::new(Some(payload.clone())),
            }),
        );
        sim.run();
    }
}

fn bench_tcp_transfer(c: &mut Criterion) {
    use mm_net::TcpConfig;
    let mut g = c.benchmark_group("tcp");
    let payload = Bytes::from(vec![7u8; 1 << 20]);
    g.throughput(Throughput::Bytes(payload.len() as u64));
    g.bench_function("transfer_1mb_simulated", |b| {
        b.iter(|| transfer::run(&TcpConfig::default(), 0.0, &payload))
    });
    g.finish();
}

fn bench_tcp_transfer_metrics(c: &mut Criterion) {
    use mm_metrics::{MetricsHandle, Registry, RegistrySink};
    use mm_net::TcpConfig;
    // The observability overhead gate: the same 1 MB transfer with a
    // live RegistrySink attached (counter bumps on every recovery
    // event, cwnd/srtt gauge samples on every retransmission-path
    // touch). Target: within 5% of `transfer_1mb_simulated` — the
    // sink is two Rc derefs and a Vec index per event, nothing that
    // should show up beside full-stack segment processing.
    let mut g = c.benchmark_group("tcp");
    let payload = Bytes::from(vec![7u8; 1 << 20]);
    g.throughput(Throughput::Bytes(payload.len() as u64));
    let registry = Registry::default();
    let cfg = TcpConfig::builder()
        .metrics(MetricsHandle::new(RegistrySink::new(registry.clone())))
        .build();
    g.bench_function("transfer_1mb_metrics_enabled", |b| {
        b.iter(|| transfer::run(&cfg, 0.0, &payload))
    });
    g.finish();
}

fn bench_tcp_transfer_capture(c: &mut Criterion) {
    use mm_capture::Capture;
    use mm_net::TcpConfig;
    // The packet-tap overhead gate: the same 1 MB transfer through a
    // LinkShell, bare and with a live Capture tapped in (enqueue/
    // dequeue events through the shadow queue, a Deliver record per
    // forwarded packet). Target: `transfer_1mb_capture_enabled` within
    // 10% of `transfer_1mb_shelled` — the tap is a branch, a VecDeque
    // push/pop and a Vec push per packet event. The capture is reused
    // across iterations (as a long-lived experiment reuses one store
    // across loads); rebuilding it per transfer would measure the
    // allocator faulting in a fresh event buffer, not the tap.
    let mut g = c.benchmark_group("tcp");
    let payload = Bytes::from(vec![7u8; 1 << 20]);
    g.throughput(Throughput::Bytes(payload.len() as u64));
    let cfg = TcpConfig::default();
    g.bench_function("transfer_1mb_shelled", |b| {
        b.iter(|| transfer::run_shelled(&cfg, None, &payload))
    });
    let capture = Capture::for_load(0);
    g.bench_function("transfer_1mb_capture_enabled", |b| {
        b.iter(|| {
            capture.clear();
            transfer::run_shelled(&cfg, Some(capture.handle()), &payload)
        })
    });
    g.finish();
}

fn bench_tcp_lossy_transfer(c: &mut Criterion) {
    use mm_net::{RecoveryTier, TcpConfig};
    // The lossy counterpart of `transfer_1mb_simulated`: 1 MB through an
    // i.i.d. 1% drop on the data path, across the loss-recovery tiers.
    let mut g = c.benchmark_group("tcp");
    let payload = Bytes::from(vec![7u8; 1 << 20]);
    g.throughput(Throughput::Bytes(payload.len() as u64));
    for (name, recovery) in [
        ("transfer_1mb_1pct_loss_newreno", RecoveryTier::Reno),
        ("transfer_1mb_1pct_loss_sack", RecoveryTier::Sack),
        ("transfer_1mb_1pct_loss_racktlp", RecoveryTier::RackTlp),
    ] {
        let cfg = TcpConfig::builder().recovery(recovery).build();
        g.bench_function(name, |b| b.iter(|| transfer::run(&cfg, 0.01, &payload)));
    }
    g.finish();
}

fn bench_tcp_paced_transfer(c: &mut Criterion) {
    use mm_net::{CcAlgorithm, RecoveryTier, TcpConfig};
    // The rate-control subsystem's host cost beside the clean/SACK/
    // RackTlp arms: the same 1 MB transfer with BBR driving the pacer
    // (rate samples on every ack, pacing timer churn), clean and at 1%
    // loss.
    let mut g = c.benchmark_group("tcp");
    let payload = Bytes::from(vec![7u8; 1 << 20]);
    g.throughput(Throughput::Bytes(payload.len() as u64));
    let cfg = TcpConfig::builder()
        .cc(CcAlgorithm::Bbr)
        .recovery(RecoveryTier::RackTlp)
        .build();
    for (name, loss) in [
        ("transfer_1mb_paced_bbr", 0.0f64),
        ("transfer_1mb_1pct_loss_paced_bbr", 0.01),
    ] {
        g.bench_function(name, |b| b.iter(|| transfer::run(&cfg, loss, &payload)));
    }
    g.finish();
}

fn bench_world_64_users(c: &mut Criterion) {
    use bench::{
        corpus_subset, FIGSHARE_ARRIVAL_WINDOW_MS, FIGSHARE_BULK_BYTES, FIGSHARE_DOWN_MBPS,
        FIGSHARE_UP_MBPS,
    };
    use mahimahi::fleet::{run_fleet, CcMix, FleetSpec};
    use mahimahi::harness::{LinkSpec, LoadSpec, NetSpec, QdiscKind};
    use mm_corpus::materialize;
    use mm_sim::SimDuration;
    use mm_trace::constant_rate;

    // The acceptance gate on the slab/timer-mux fabric: a full 64-user
    // contention world (page load + bulk transfer per user through one
    // shared bottleneck) must construct and run to completion in
    // seconds, not minutes.
    let plan = corpus_subset(1, 2014).remove(0);
    let mut g = c.benchmark_group("world");
    g.sample_size(10);
    g.bench_function("world_64_users", |b| {
        b.iter(|| {
            let site = materialize(&plan);
            let mut load = LoadSpec::new(&site);
            load.net = NetSpec {
                delay: Some(SimDuration::from_millis(40)),
                link: Some(LinkSpec {
                    uplink: constant_rate(FIGSHARE_UP_MBPS, 1000),
                    downlink: constant_rate(FIGSHARE_DOWN_MBPS, 1000),
                    qdisc: QdiscKind::DropTailPackets(256),
                }),
                ..NetSpec::default()
            };
            load.seed = 2014;
            run_fleet(&FleetSpec {
                load,
                n_users: 64,
                cc_mix: CcMix::BbrRenoSplit,
                bulk_bytes: FIGSHARE_BULK_BYTES,
                arrival_window: SimDuration::from_millis(FIGSHARE_ARRIVAL_WINDOW_MS),
            })
        })
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default().sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_http, bench_trace, bench_qdisc, bench_matcher, bench_tcp_transfer, bench_tcp_transfer_metrics, bench_tcp_transfer_capture, bench_tcp_lossy_transfer, bench_tcp_paced_transfer, bench_world_64_users
}
criterion_main!(benches);
