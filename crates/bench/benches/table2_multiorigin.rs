//! Table 2 as a criterion bench: multi-origin vs single-server page loads
//! under a 14 Mbit/s / 60 ms RTT path, plus qdisc ablations.

use criterion::{criterion_group, criterion_main, Criterion};
use mahimahi::harness::{run_page_load, LinkSpec, LoadSpec, NetSpec, QdiscKind};
use mm_corpus::{materialize, plan_site, SiteParams};
use mm_replay::ReplayMode;
use mm_sim::{RngStream, SimDuration};
use mm_trace::constant_rate;

fn bench_modes(c: &mut Criterion) {
    let plan = plan_site(
        6,
        &SiteParams {
            servers: Some(20),
            median_objects: 60.0,
            ..Default::default()
        },
        &mut RngStream::from_seed(2),
    );
    let site = materialize(&plan);
    let net = NetSpec {
        delay: Some(SimDuration::from_millis(30)),
        link: Some(LinkSpec::symmetric(constant_rate(14.0, 1000))),
        ..NetSpec::default()
    };
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    g.bench_function("multi_origin", |b| {
        b.iter(|| {
            let mut spec = LoadSpec::new(&site);
            spec.net = net.clone();
            run_page_load(&spec)
        })
    });
    g.bench_function("single_server", |b| {
        b.iter(|| {
            let mut spec = LoadSpec::new(&site);
            spec.net = net.clone();
            spec.replay.mode = ReplayMode::SingleServer;
            run_page_load(&spec)
        })
    });
    for (name, q) in [
        ("qdisc_codel", QdiscKind::Codel),
        ("qdisc_droptail_150", QdiscKind::DropTailPackets(150)),
        ("qdisc_pie", QdiscKind::Pie(14.0)),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut spec = LoadSpec::new(&site);
                spec.net = net.clone();
                if let Some(l) = spec.net.link.as_mut() {
                    l.qdisc = q;
                }
                run_page_load(&spec)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
